"""``repro bench``: seeded micro/macro performance regression harness.

The simulation is deterministic, so its *results* never need
benchmarking -- what regresses silently is wall clock: the engine hot
loop, the measurement traversal, artifact serialization.  This module
times a fixed suite of seeded workloads and emits a ``BENCH_<rev>.json``
artifact that CI archives per commit and diffs against the committed
gate baseline (``benchmarks/baseline/BENCH_gate.json``; the original
``BENCH_seed.json`` stays alongside for history).

Every bench reports a ``primary`` metric with a ``direction``
(``"lower"`` or ``"higher"`` = better); :func:`compare` flags any
primary metric that is more than ``threshold`` (default 20%) worse
than the baseline.  Wall-clock reads go through
:func:`repro.fleet.clock.perf_time` -- the one allowlisted wall-clock
source -- because bench numbers are telemetry, never simulation state.

Timing discipline: each workload is repeated and the **best** time is
kept (minimum over repeats estimates the noise floor of a shared CI
box far better than the mean); the full repeat series also yields
median + spread fields (:func:`timing_stats`) so an artifact records
how noisy the workload was on the box that produced it.  Quick mode
(``--quick``) shrinks the workloads for CI smoke use; quick artifacts
are only comparable to quick baselines, so the flag is recorded in
the artifact.

The CI gate is **blocking**: a regression fails the build.  To keep
that honest on noisy hosted runners, every bench declares a
``gate_threshold`` and :func:`compare` applies the *widest* of the
CLI threshold and the bench's own -- dimensionless ratio benches
(speedups, hit fractions) transfer across machines and gate tight;
absolute wall-clock throughput is machine-dependent and only fails
on a collapse.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.fleet.clock import perf_time, wall_time

BENCH_VERSION = 1
DEFAULT_THRESHOLD = 0.20

#: per-bench blocking-gate thresholds.  Absolute throughput numbers
#: (events/s, lookups/s, ...) depend on the machine that wrote the
#: baseline, so their gate only trips on a collapse (below ~1/2 of
#: baseline); dimensionless ratios compare like-for-like on any box
#: and trip below ~2/3 of baseline -- still far above the ~1.0x a
#: broken fast path produces, and clear of the quick-mode run-to-run
#: swing the committed artifacts record in their spread fields.
GATE_ABSOLUTE = 1.00
GATE_RATIO = 0.50


def _samples_of(fn: Callable[[], Any], repeats: int) -> List[float]:
    """Wall-clock seconds of each of ``repeats`` calls, in run order."""
    samples = []
    for _ in range(repeats):
        start = perf_time()
        fn()
        samples.append(perf_time() - start)
    return samples


def _best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Best (minimum) wall-clock seconds over ``repeats`` calls."""
    return min(_samples_of(fn, repeats))


def timing_stats(samples: List[float]) -> Dict[str, float]:
    """Noise fields for a repeat series: median + relative spread.

    ``spread_pct`` is ``(max - min) / median`` in percent -- the
    repeat-to-repeat noise of this workload on this machine, recorded
    in the artifact so a human (or a future gate) can judge whether a
    flagged regression is inside the noise band the baseline itself
    exhibited.
    """
    ordered = sorted(samples)
    count = len(ordered)
    mid = count // 2
    if count % 2:
        median = ordered[mid]
    else:
        median = (ordered[mid - 1] + ordered[mid]) / 2.0
    spread = (
        (ordered[-1] - ordered[0]) / median * 100.0 if median > 0 else 0.0
    )
    return {
        "repeats": count,
        "median_ms": median * 1e3,
        "spread_pct": spread,
    }


def git_revision() -> str:
    """Short git revision of the working tree, or ``"dev"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "dev"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "dev"


# ---------------------------------------------------------------------------
# Micro benches
# ---------------------------------------------------------------------------


def bench_block_hash(quick: bool) -> Dict[str, Dict[str, Any]]:
    """Per-algorithm audit-hash + HMAC throughput over benign blocks."""
    from repro.crypto.hmac import Hmac
    from repro.ra.report import audit_hash
    from repro.sim.memory import benign_fill

    block_size = 4096
    blocks = 64 if quick else 256
    contents = [benign_fill(i, block_size, seed=7) for i in range(blocks)]
    key = bytes(range(32))
    out: Dict[str, Dict[str, Any]] = {}
    for algorithm in ("sha256", "sha512", "blake2b", "blake2s"):
        def work() -> None:
            mac = Hmac(key, algorithm)
            for index, content in enumerate(contents):
                audit_hash(content)
                mac.update(content)
            mac.digest()

        samples = _samples_of(work, repeats=3 if quick else 5)
        out[f"block_hash.{algorithm}"] = {
            "us_per_block": min(samples) * 1e6 / blocks,
            "blocks": blocks,
            "block_size": block_size,
            "gate_threshold": GATE_ABSOLUTE,
            **timing_stats(samples),
            "primary": "us_per_block",
            "direction": "lower",
        }
    return out


def bench_engine_events(quick: bool) -> Dict[str, Dict[str, Any]]:
    """Raw event-loop throughput: schedule + fire no-op events."""
    from repro.sim.engine import Simulator

    count = 20_000 if quick else 100_000

    def work() -> None:
        sim = Simulator()
        for index in range(count):
            sim.schedule(index * 1e-6, _noop)
        sim.run()

    samples = _samples_of(work, repeats=3)
    return {
        "engine.events": {
            "events_per_sec": count / min(samples),
            "events": count,
            "gate_threshold": GATE_ABSOLUTE,
            **timing_stats(samples),
            "primary": "events_per_sec",
            "direction": "higher",
        }
    }


def _noop() -> None:
    return None


def bench_engine_dispatch(quick: bool) -> Dict[str, Dict[str, Any]]:
    """Dispatch-only throughput: drain a pre-scheduled event queue.

    ``engine.events`` times schedule *and* fire together; this bench
    isolates the dispatch inner loop -- the specialized no-obs path
    that :meth:`Simulator.run` takes when neither metrics nor a
    profiler are attached -- by building the full heap outside the
    timed region.
    """
    from repro.sim.engine import Simulator

    count = 20_000 if quick else 100_000
    samples = []
    for _ in range(3):
        sim = Simulator()
        for index in range(count):
            sim.schedule(index * 1e-6, _noop)
        start = perf_time()
        sim.run()
        samples.append(perf_time() - start)
    return {
        "engine.dispatch_noobs": {
            "events_per_sec": count / min(samples),
            "events": count,
            "gate_threshold": GATE_ABSOLUTE,
            **timing_stats(samples),
            "primary": "events_per_sec",
            "direction": "higher",
        }
    }


def bench_digest_cache(quick: bool) -> Dict[str, Dict[str, Any]]:
    """Hit-path lookup throughput on a warmed cache."""
    from repro.perf.digest_cache import DigestCache

    entries = 512
    lookups = 50_000 if quick else 200_000
    cache = DigestCache(capacity=entries)
    content = bytes(64)
    for index in range(entries):
        cache.store((index, 0, "blake2s", b"k" * 8), content, b"a" * 8)
    keys = [(i % entries, 0, "blake2s", b"k" * 8) for i in range(lookups)]

    def work() -> None:
        lookup = cache.lookup
        for key in keys:
            lookup(key)

    samples = _samples_of(work, repeats=3)
    return {
        "digest_cache.lookup": {
            "lookups_per_sec": lookups / min(samples),
            "lookups": lookups,
            "gate_threshold": GATE_ABSOLUTE,
            **timing_stats(samples),
            "primary": "lookups_per_sec",
            "direction": "higher",
        }
    }


def bench_memory_fill(quick: bool) -> Dict[str, Dict[str, Any]]:
    """Device memory construction through the interned ReferenceStore
    vs regenerating the benign image per device.

    The fleet steady state: N provers sharing one ``(seed,
    block_size)`` image.  Interned construction copies shared bytes
    into per-device bytearrays; the ``raw`` side is the per-byte PRNG
    loop every single device used to pay.  The speedup primary is the
    whole point of the store and is machine-independent.
    """
    from repro.perf.reference_store import raw_benign_fill
    from repro.sim.memory import Memory

    block_count = 64 if quick else 256
    block_size = 64
    seed = 7041  # dedicated seed: first repeat warms the store
    devices = 5 if quick else 20

    def interned() -> None:
        for _ in range(devices):
            Memory(block_count, block_size=block_size, seed=seed)

    def raw() -> None:
        for index in range(block_count):
            raw_benign_fill(index, block_size, seed)

    interned()  # warm the interned image outside the timed region
    repeats = 3 if quick else 5
    samples = _samples_of(interned, repeats)
    best = min(samples)
    best_raw = _best_of(raw, repeats)
    per_device = best / devices
    raw_per_device = best_raw  # one image generation == one cold device
    return {
        "memory.fill": {
            "speedup": raw_per_device / per_device if per_device else 0.0,
            "interned_us_per_device": per_device * 1e6,
            "raw_us_per_device": raw_per_device * 1e6,
            "devices": devices,
            "block_count": block_count,
            "gate_threshold": GATE_RATIO,
            **timing_stats(samples),
            "primary": "speedup",
            "direction": "higher",
        }
    }


def bench_trace_serialize(quick: bool, workdir: Path) -> Dict[str, Dict[str, Any]]:
    """JSONL export throughput of a populated trace (single buffered
    write; this bench guards the batching in :meth:`Trace.to_jsonl`)."""
    from repro.sim.trace import Trace

    records = 20_000 if quick else 100_000
    trace = Trace()
    for index in range(records):
        trace.record(index * 1e-3, "compute", "bench", duration=1e-3)
    target = workdir / "bench_trace.jsonl"

    def work() -> None:
        trace.to_jsonl(target)

    samples = _samples_of(work, repeats=3)
    target.unlink(missing_ok=True)
    return {
        "trace.serialize": {
            "records_per_sec": records / min(samples),
            "records": records,
            "gate_threshold": GATE_ABSOLUTE,
            **timing_stats(samples),
            "primary": "records_per_sec",
            "direction": "higher",
        }
    }


# ---------------------------------------------------------------------------
# Macro benches
# ---------------------------------------------------------------------------


def bench_erasmus_cache(quick: bool) -> Dict[str, Dict[str, Any]]:
    """The headline macro bench: ERASMUS self-measurement over unchanged
    memory, digest cache off vs on.

    50 periods (10 in quick mode) of a 256-block prover with no malware
    and no workload writes -- the steady state the cache is built for.
    Reports the off/on speedup and the achieved hit rate; the golden
    equality of the two runs' traces is pinned separately by the test
    suite, so this bench only times them.
    """
    from repro.core.tradeoff import ScenarioConfig
    from repro.scenario import Scenario

    periods = 10 if quick else 50
    block_count = 64 if quick else 256
    period = 2.0
    horizon = 2.0 + period * periods
    config = ScenarioConfig(
        block_count=block_count,
        erasmus_period=period,
        erasmus_collect_at=horizon - 1.0,
        horizon=horizon,
    )

    def run(cache: bool) -> Any:
        scenario = Scenario.build(
            "erasmus", digest_cache=cache, config=config
        )
        start = perf_time()
        scenario.sim.run(until=horizon)
        return perf_time() - start, scenario

    repeats = 2 if quick else 3
    best_off = min(run(False)[0] for _ in range(repeats))
    best_on = float("inf")
    scenario_on = None
    for _ in range(repeats):
        elapsed, scenario = run(True)
        if elapsed < best_on:
            best_on, scenario_on = elapsed, scenario
    stats = scenario_on.device.digest_cache.stats()
    return {
        "erasmus.digest_cache": {
            "speedup": best_off / best_on,
            "off_ms": best_off * 1e3,
            "on_ms": best_on * 1e3,
            "hit_rate": stats["hit_rate"],
            "periods": periods,
            "block_count": block_count,
            "gate_threshold": GATE_RATIO,
            "primary": "speedup",
            "direction": "higher",
        }
    }


def bench_measurement_cold(quick: bool) -> Dict[str, Dict[str, Any]]:
    """Macro: one complete all-miss traversal of a fresh prover.

    The cold path every device pays on its first measurement (and a
    fleet pays per cohort member): every block misses the digest
    cache.  ``cache=True`` runs the batched miss path -- read, audit
    (interned reference audit for still-benign content), fill, advance
    inline; ``cache=False`` is the generic event-per-block traversal.
    A fresh ``Device`` + ``DigestCache`` per repeat keeps every run
    all-miss; the speedup primary is machine-independent, and
    ``cold_on_ms`` is the absolute number the acceptance table tracks.
    """
    from repro.perf.digest_cache import DigestCache
    from repro.ra.measurement import MeasurementConfig, MeasurementProcess
    from repro.sim.device import Device
    from repro.sim.engine import Simulator

    block_count = 256 if quick else 1024
    config = MeasurementConfig()

    def run(cache_on: bool) -> float:
        sim = Simulator()
        device = Device(
            sim, block_count=block_count, block_size=32,
            digest_cache=DigestCache() if cache_on else None,
        )
        mp = MeasurementProcess(
            device, config, nonce=b"bench", counter=1, mechanism="bench"
        )
        device.cpu.spawn("mp", mp.run, priority=config.priority)
        start = perf_time()
        sim.run()
        elapsed = perf_time() - start
        assert mp.record is not None
        return elapsed

    repeats = 3 if quick else 5
    run(True)  # warm the interned reference image + audits
    off_samples = [run(False) for _ in range(repeats)]
    on_samples = [run(True) for _ in range(repeats)]
    best_off, best_on = min(off_samples), min(on_samples)
    return {
        "measurement.cold": {
            "speedup": best_off / best_on if best_on else float("inf"),
            "cold_on_ms": best_on * 1e3,
            "cold_off_ms": best_off * 1e3,
            "block_count": block_count,
            "gate_threshold": GATE_RATIO,
            **timing_stats(on_samples),
            "primary": "speedup",
            "direction": "higher",
        }
    }


def bench_fleet_incremental(
    quick: bool, workdir: Path
) -> Dict[str, Dict[str, Any]]:
    """Full campaign run vs incremental re-run over unchanged code."""
    from repro import fleet

    campaign = fleet.canned_campaign("faults", seed_count=1)
    specs = campaign.plan()
    if quick:
        specs = specs[:3]
    out_dir = workdir / "bench-fleet"
    config = fleet.ExecutorConfig(mode="serial")
    fingerprint = fleet.source_fingerprint()

    start = perf_time()
    report = fleet.execute_campaign(specs, config)
    fleet.write_artifacts(
        out_dir, campaign, report.results, report,
        code_fingerprint=fingerprint,
    )
    full = perf_time() - start

    start = perf_time()
    store = fleet.RunResultStore(out_dir, campaign.name)
    hits, pending = store.cached(specs, fingerprint)
    report2 = fleet.execute_campaign(pending, config)
    fleet.write_artifacts(
        out_dir, campaign, hits + report2.results, report2,
        code_fingerprint=fingerprint,
    )
    incremental = perf_time() - start

    return {
        "fleet.incremental": {
            "speedup": full / incremental if incremental else float("inf"),
            "hit_fraction": len(hits) / len(specs) if specs else 0.0,
            "full_ms": full * 1e3,
            "incremental_ms": incremental * 1e3,
            "runs": len(specs),
            "gate_threshold": GATE_RATIO,
            "primary": "hit_fraction",
            "direction": "higher",
        }
    }


def bench_fleet_stream(
    quick: bool, workdir: Path
) -> Dict[str, Dict[str, Any]]:
    """Streaming reduce throughput: checkpointed shards through the
    pipeline's k-way merge and :class:`StreamingAggregator` fold.

    Synthetic results keep the bench about the reduce path (file
    reads, run_id merge, per-group folds, incremental JSONL write)
    rather than the simulator; peak traced memory rides along as the
    bounded-memory evidence the pipeline exists to provide.
    """
    import tracemalloc

    from repro import fleet
    from repro.fleet.pipeline import _merged_stream, _reduce_stream

    campaign = fleet.canned_campaign("qoa", seed_count=1)
    count = 2_000 if quick else 10_000
    shard_size = 256
    specs = [
        fleet.RunSpec(
            mechanism="smart", campaign=campaign.name, seed=index
        )
        for index in range(count)
    ]
    out_dir = workdir / "bench-stream"
    store = fleet.ShardCheckpointStore(
        out_dir, campaign.name, campaign.spec_hash, specs, shard_size,
        "bench",
    )
    store.open()
    shards = fleet.make_shards(specs, shard_size)
    for shard in shards:
        store.write_shard(
            shard.index,
            [
                fleet.RunResult(
                    run_id=spec.run_id,
                    spec=spec.to_dict(),
                    detected=spec.seed % 2 == 0,
                    detection_latency=(
                        float(spec.seed % 7) if spec.seed % 2 == 0
                        else None
                    ),
                    mp_duration=0.25,
                    measurements=1,
                    qoa={"miss_rate": (spec.seed % 5) / 10.0},
                )
                for spec in shard.specs
            ],
        )
    paths = fleet.artifact_paths(out_dir, campaign.name)
    paths.root.mkdir(parents=True, exist_ok=True)
    indices = [shard.index for shard in shards]

    def work() -> None:
        _reduce_stream(_merged_stream(store, indices), paths, campaign)

    samples = _samples_of(work, repeats=3)
    best = min(samples)
    tracemalloc.start()
    try:
        work()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return {
        "fleet.stream": {
            "results_per_sec": count / best,
            "ms_total": best * 1e3,
            "peak_kib": peak / 1024.0,
            "runs": count,
            "shards": len(shards),
            "gate_threshold": GATE_ABSOLUTE,
            **timing_stats(samples),
            "primary": "results_per_sec",
            "direction": "higher",
        }
    }


def bench_verifier_batch(quick: bool) -> Dict[str, Dict[str, Any]]:
    """Micro: :meth:`Verifier.verify_batch` vs a serial loop over one
    epoch's worth of overlapping reports.

    The workload mirrors what an epoch drain sees in a storm: a cohort
    of provers sharing one reference image, each shipping an
    ERASMUS-style history ring, so consecutive reports re-carry the
    same records.  Batch mode pays one keyed-digest pass per unique
    record signature; serial re-walks the reference for every copy.
    """
    from repro.ra.report import AttestationReport
    from repro.ra.verifier import Verifier
    from repro.sim.engine import Simulator
    from repro.vserver.loadgen import SimProver, cohort_image, prover_key

    provers = 16 if quick else 48
    blocks = 64 if quick else 128
    sim = Simulator()
    verifier = Verifier(sim, name="bench-verifier")
    image = cohort_image("bench", blocks, 64)
    entries = []
    for index in range(provers):
        name = f"bp{index:03d}"
        key = prover_key(name)
        prover = SimProver(
            sim, name, key=key, image=image, endpoint=None
        )
        prover.enroll(verifier, image)
        for _ in range(3):
            prover.measure()
            report = AttestationReport.authenticate(
                key, name, list(prover.history),
                sent_counter=prover.counter,
            )
            entries.append((report, {}))

    def serial() -> None:
        for report, kwargs in entries:
            verifier.verify_report(report, **kwargs)

    def batched() -> None:
        verifier.verify_batch(entries)

    repeats = 3 if quick else 5
    best_serial = _best_of(serial, repeats)
    best_batched = _best_of(batched, repeats)
    return {
        "verifier.batch": {
            "speedup": best_serial / best_batched,
            "serial_ms": best_serial * 1e3,
            "batched_ms": best_batched * 1e3,
            "reports": len(entries),
            "blocks": blocks,
            "gate_threshold": GATE_RATIO,
            "primary": "speedup",
            "direction": "higher",
        }
    }


def bench_verifier_storm(quick: bool) -> Dict[str, Dict[str, Any]]:
    """Macro: the storm1k thundering herd through the served verifier,
    epoch-batched vs serial drains.

    Both runs produce byte-identical ledgers (pinned by the golden
    test); the bench times only the verify stage through the injected
    wall clock, so queueing/network sim overhead does not drown the
    signal.  Queue latencies are sim-time service metrics, identical
    across modes, reported alongside for the acceptance table.
    """
    import dataclasses

    from repro.fleet.clock import perf_time as clock
    from repro.scenario import Scenario
    from repro.vserver.service import service_preset

    config = service_preset("storm1k")
    if quick:
        config = dataclasses.replace(config, blocks=48)

    def run(batch: bool) -> Any:
        scenario = Scenario.build(
            service=dataclasses.replace(config, batch=batch)
        )
        scenario.server.verify_wall_clock = clock
        stats = scenario.run()
        return scenario.server.verify_wall_time, stats

    repeats = 1 if quick else 2
    best_serial = min(run(False)[0] for _ in range(repeats))
    best_batched = float("inf")
    stats = None
    for _ in range(repeats):
        wall, run_stats = run(True)
        if wall < best_batched:
            best_batched, stats = wall, run_stats
    verified = stats["verified"]
    return {
        "verifier.storm1k": {
            "speedup": best_serial / best_batched,
            "batched_reports_per_sec": verified / best_batched,
            "serial_reports_per_sec": verified / best_serial,
            "queue_latency_p50": stats["queue_latency_p50"],
            "queue_latency_p99": stats["queue_latency_p99"],
            "provers": config.provers,
            "verified": verified,
            "gate_threshold": GATE_RATIO,
            "primary": "speedup",
            "direction": "higher",
        }
    }


def bench_lint_selfscan(
    quick: bool, workdir: Path
) -> Dict[str, Dict[str, Any]]:
    """Cold vs content-hash-cached whole-program self-scan.

    The workload is the analyzer's own package tree (the full
    ``repro`` package in full mode): parse, lexical rules, summary
    extraction, call-graph build and taint fixpoint.  A warm
    ``--cache`` run must skip all of that -- the ``speedup`` primary
    is the whole point of the cache, and
    ``tests/test_staticlint_interproc.py`` pins it at >= 3x.
    """
    from repro.staticlint.engine import analyze_project
    from repro.staticlint.registry import LintConfig

    package_root = Path(__file__).resolve().parents[1]
    target = package_root / "staticlint" if quick else package_root
    config = LintConfig()
    cache = workdir / "bench-lint-cache.json"

    def cold() -> None:
        if cache.exists():
            cache.unlink()
        analyze_project([str(target)], config, cache_path=str(cache))

    def warm() -> None:
        analyze_project([str(target)], config, cache_path=str(cache))

    repeats = 2 if quick else 3
    best_cold = _best_of(cold, repeats)
    # cold() leaves a fully warm cache behind for the warm runs
    best_warm = _best_of(warm, repeats)
    return {
        "lint.selfscan": {
            "speedup": (
                best_cold / best_warm if best_warm else float("inf")
            ),
            "cold_ms": best_cold * 1e3,
            "cached_ms": best_warm * 1e3,
            "target": str(target.relative_to(package_root.parent)),
            "gate_threshold": GATE_RATIO,
            "primary": "speedup",
            "direction": "higher",
        }
    }


#: advisory wall-clock budget for full tracing: the instrumented smoke
#: storm may cost at most this much over the NULL_OBS run
OBS_OVERHEAD_PIN_PCT = 15.0


def bench_obs_overhead(quick: bool) -> Dict[str, Dict[str, Any]]:
    """Macro: the smoke storm under NULL_OBS vs full causal tracing.

    Spans, trace contexts and exemplars are strictly opt-in, so their
    cost only exists on instrumented runs -- this bench is the number
    that keeps that cost honest.  ``overhead_pct`` is the primary
    (lower = better) and :data:`OBS_OVERHEAD_PIN_PCT` is the advisory
    pin recorded in the artifact; the CI baseline comparison flags a
    creeping regression even while it stays under the pin.
    """
    from repro.obs.core import NULL_OBS, Observability
    from repro.scenario import Scenario
    from repro.vserver.service import service_preset

    config = service_preset("smoke")

    def run(traced: bool) -> None:
        obs = Observability.enabled() if traced else NULL_OBS
        Scenario.build(service=config, obs=obs).run()

    # One smoke run is ~15ms -- scheduler noise swamps a single-run
    # delta -- so each sample batches ``loops`` runs of one mode and
    # the modes alternate batch-by-batch.  Both sides keep their
    # *best* batch (the module's noise-floor discipline): floors
    # converge to the steady-state cost of each mode, where a mean or
    # a single pairing would fold machine drift into the ratio.
    loops = 3 if quick else 10
    rounds = 3 if quick else 6
    run(False)
    run(True)

    def timed(traced: bool) -> float:
        start = perf_time()
        for _ in range(loops):
            run(traced)
        return perf_time() - start

    best_null = best_traced = float("inf")
    for _ in range(rounds):
        best_null = min(best_null, timed(False))
        best_traced = min(best_traced, timed(True))
    overhead_pct = (best_traced / best_null - 1.0) * 100.0
    return {
        "obs.overhead": {
            "overhead_pct": overhead_pct,
            "null_ms": best_null * 1e3 / loops,
            "traced_ms": best_traced * 1e3 / loops,
            "loops": loops,
            "rounds": rounds,
            "pin_pct": OBS_OVERHEAD_PIN_PCT,
            "within_pin": overhead_pct <= OBS_OVERHEAD_PIN_PCT,
            # percentage-point overheads hover near zero, where ratio
            # comparison amplifies noise; only a blow-up past the pin
            # region should block
            "gate_threshold": 3.0,
            "primary": "overhead_pct",
            "direction": "lower",
        }
    }


def bench_slo_eval(quick: bool) -> Dict[str, Dict[str, Any]]:
    """Micro: SLO engine evaluation ticks over a populated registry.

    One tick reads every objective's sources, maintains the rolling
    windows and evaluates both burn rates; at the default cadence
    (short-window/3) a long storm run takes thousands of them, so the
    per-tick cost bounds how cheap ``RunSpec.slo`` stays.
    """
    from repro.obs.core import Observability
    from repro.obs.slo import SLOEngine, parse_objectives

    obs = Observability.enabled()
    good = obs.metrics.counter("svc.good", "bench")
    total = obs.metrics.counter("svc.total", "bench")
    hist = obs.metrics.histogram("svc.latency", "bench")
    for i in range(512):
        total.inc()
        if i % 7:
            good.inc()
        hist.observe((i % 50) / 100.0)

    class _TickClock:
        """Stand-in sim: the engine only touches .now / .schedule."""

        def __init__(self) -> None:
            self.now = 0.0

        def schedule(self, delay: float, fn: Any, *args: Any) -> None:
            return None

    engine = SLOEngine(obs, parse_objectives(
        "ratio:svc.good/svc.total@0.9,"
        "latency:svc.latency<0.25@0.95,"
        "probe:deadline@0.99"
    ))
    engine.register_probe("deadline", lambda: (500.0, 512.0))
    clock = _TickClock()
    engine._sim = clock
    engine._until = float("inf")
    ticks = 2_000 if quick else 10_000

    def work() -> None:
        for _ in range(ticks):
            clock.now += engine.interval
            engine._tick()

    samples = _samples_of(work, repeats=3)
    best = min(samples)
    return {
        "slo.eval": {
            "ticks_per_sec": ticks / best,
            "us_per_tick": best * 1e6 / ticks,
            "objectives": len(engine.objectives),
            "gate_threshold": GATE_ABSOLUTE,
            **timing_stats(samples),
            "primary": "ticks_per_sec",
            "direction": "higher",
        }
    }


# ---------------------------------------------------------------------------
# Suite driver / comparison
# ---------------------------------------------------------------------------


def run_suite(quick: bool = False, workdir: Optional[Any] = None) -> Dict[str, Any]:
    """Execute every bench; returns the artifact dictionary."""
    import tempfile

    if workdir is None:
        workdir = tempfile.mkdtemp(prefix="repro-bench-")
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)

    benches: Dict[str, Dict[str, Any]] = {}
    benches.update(bench_block_hash(quick))
    benches.update(bench_engine_events(quick))
    benches.update(bench_engine_dispatch(quick))
    benches.update(bench_digest_cache(quick))
    benches.update(bench_memory_fill(quick))
    benches.update(bench_trace_serialize(quick, workdir))
    benches.update(bench_erasmus_cache(quick))
    benches.update(bench_measurement_cold(quick))
    benches.update(bench_fleet_incremental(quick, workdir))
    benches.update(bench_fleet_stream(quick, workdir))
    benches.update(bench_verifier_batch(quick))
    benches.update(bench_verifier_storm(quick))
    benches.update(bench_obs_overhead(quick))
    benches.update(bench_slo_eval(quick))
    benches.update(bench_lint_selfscan(quick, workdir))
    return {
        "version": BENCH_VERSION,
        "revision": git_revision(),
        "quick": quick,
        "created_at": wall_time(),
        "benches": benches,
    }


def compare(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[Dict[str, Any]]:
    """Primary-metric comparison; one row per bench present in both.

    A row is a regression when the current primary metric is worse
    than the baseline, in the bench's direction, by more than the
    row's *effective* threshold: the widest of the ``threshold``
    argument and the bench's declared ``gate_threshold`` (read from
    the current artifact, falling back to the baseline's).  Per-bench
    thresholds are what let the gate block: ratio benches stay tight
    while machine-dependent absolute throughput only fails on a
    collapse.  Benches missing from either side are skipped (the
    suite may grow).
    """
    rows: List[Dict[str, Any]] = []
    base_benches = baseline.get("benches", {})
    for name, bench in sorted(current.get("benches", {}).items()):
        base = base_benches.get(name)
        if base is None:
            continue
        metric = bench.get("primary")
        direction = bench.get("direction", "higher")
        if metric is None or metric not in bench or metric not in base:
            continue
        cur_value = float(bench[metric])
        base_value = float(base[metric])
        if base_value == 0:
            continue
        declared = bench.get("gate_threshold", base.get("gate_threshold"))
        effective = (
            max(threshold, float(declared))
            if declared is not None else threshold
        )
        ratio = cur_value / base_value
        if direction == "lower":
            regressed = ratio > 1.0 + effective
        else:
            regressed = ratio < 1.0 / (1.0 + effective)
        rows.append({
            "bench": name,
            "metric": metric,
            "direction": direction,
            "baseline": base_value,
            "current": cur_value,
            "ratio": ratio,
            "threshold": effective,
            "regressed": regressed,
        })
    return rows


def render_comparison(rows: List[Dict[str, Any]]) -> str:
    lines = [
        f"{'bench':<24} {'metric':<16} {'baseline':>12} "
        f"{'current':>12} {'ratio':>7} {'gate':>6}  status"
    ]
    for row in rows:
        status = "REGRESSED" if row["regressed"] else "ok"
        gate = row.get("threshold")
        gate_cell = f"{gate:.0%}" if gate is not None else "-"
        lines.append(
            f"{row['bench']:<24} {row['metric']:<16} "
            f"{row['baseline']:>12.4g} {row['current']:>12.4g} "
            f"{row['ratio']:>6.2f}x {gate_cell:>6}  {status}"
        )
    return "\n".join(lines)


def load_history(directory: Any) -> List[Dict[str, Any]]:
    """Every ``BENCH_*.json`` under ``directory`` (plus its
    ``baseline/`` subdirectory), oldest first by ``created_at``.

    Unreadable artifacts are skipped with a marker entry rather than
    aborting the view -- history must stay renderable even when one
    old artifact predates a format change.
    """
    root = Path(directory)
    paths = sorted(root.glob("BENCH_*.json"))
    paths += sorted((root / "baseline").glob("BENCH_*.json"))
    artifacts: List[Dict[str, Any]] = []
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                artifact = json.load(handle)
        except (OSError, json.JSONDecodeError):
            artifacts.append({"path": str(path), "unreadable": True})
            continue
        artifact["path"] = str(path)
        artifacts.append(artifact)
    artifacts.sort(key=lambda a: float(a.get("created_at", 0.0)))
    return artifacts


def render_history(artifacts: List[Dict[str, Any]]) -> str:
    """Primary metrics tabulated across revisions, one bench per row.

    Quick-mode artifacts are starred: their numbers are only
    comparable to other quick artifacts.
    """
    readable = [a for a in artifacts if not a.get("unreadable")]
    skipped = [a for a in artifacts if a.get("unreadable")]
    if not readable:
        return "no bench artifacts found"
    names = sorted({
        name for artifact in readable
        for name in artifact.get("benches", {})
    })
    labels = []
    for artifact in readable:
        label = str(artifact.get("revision", "?"))
        if artifact.get("quick"):
            label += "*"
        labels.append(label)
    width = max(12, *(len(label) for label in labels))
    header = f"{'bench (primary metric)':<36}" + "".join(
        f" {label:>{width}}" for label in labels
    )
    lines = [header]
    for name in names:
        metric = ""
        cells = []
        for artifact in readable:
            bench = artifact.get("benches", {}).get(name)
            if bench is None:
                cells.append(f" {'-':>{width}}")
                continue
            metric = bench.get("primary", metric)
            value = bench.get(metric)
            cell = f"{value:.4g}" if isinstance(value, (int, float)) else "-"
            cells.append(f" {cell:>{width}}")
        lines.append(f"{name + ' (' + metric + ')':<36}" + "".join(cells))
    lines.append(
        f"{len(readable)} artifact(s); * = quick mode "
        "(only comparable to other quick runs)"
    )
    for artifact in skipped:
        lines.append(f"skipped unreadable artifact: {artifact['path']}")
    return "\n".join(lines)


def run_bench(args: Any) -> int:
    """CLI entry: run the suite, write the artifact, optionally compare.

    With the ``history`` action, tabulate the committed per-revision
    artifacts instead of running anything.

    Exit codes: 0 clean, 1 regression against ``--against``.
    """
    if getattr(args, "action", "run") == "history":
        print(render_history(load_history(args.dir)))
        return 0

    artifact = run_suite(quick=args.quick)
    out_path = Path(
        args.out if args.out else f"BENCH_{artifact['revision']}.json"
    )
    out_path.write_text(
        json.dumps(artifact, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    print(f"bench suite ({'quick' if args.quick else 'full'}) "
          f"rev {artifact['revision']} -> {out_path}")
    for name, bench in sorted(artifact["benches"].items()):
        metric = bench["primary"]
        print(f"  {name:<24} {metric} = {bench[metric]:.4g}")

    if args.against:
        with open(args.against, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        if bool(baseline.get("quick")) != args.quick:
            print(
                "note: quick/full mismatch against baseline; "
                "comparison is indicative only"
            )
        rows = compare(current=artifact, baseline=baseline,
                       threshold=args.threshold)
        print()
        print(render_comparison(rows))
        if any(row["regressed"] for row in rows):
            print("\nFAIL: regression beyond the per-bench gate "
                  "thresholds (see the gate column)")
            return 1
    return 0
