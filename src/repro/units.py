"""Size, time and rate units used throughout the reproduction.

The paper (Section 2.4) talks in mixed units: memory sizes from bytes to
gigabytes, latencies from microseconds to tens of seconds, and hashing
throughput implicitly in MB/s.  This module fixes the conventions:

* sizes are plain ``int`` **bytes**;
* simulated time is ``float`` **seconds**;
* rates are ``float`` **bytes per second**.

Helpers here convert to and from human-readable forms and keep the rest of
the code free of magic ``1024 ** 2`` constants.
"""

from __future__ import annotations

# -- size constants (binary, as used for RAM sizes in the paper) -----------

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

# -- time constants ---------------------------------------------------------

USEC = 1e-6
MSEC = 1e-3
SEC = 1.0
MINUTE = 60.0
HOUR = 3600.0

_SIZE_SUFFIXES = (
    (GiB, "GiB"),
    (MiB, "MiB"),
    (KiB, "KiB"),
)

_SIZE_ALIASES = {
    "b": 1,
    "kb": KiB,
    "kib": KiB,
    "mb": MiB,
    "mib": MiB,
    "gb": GiB,
    "gib": GiB,
}


def parse_size(text: str) -> int:
    """Parse a human-readable size like ``"100MB"`` or ``"2 GiB"`` to bytes.

    Decimal multipliers are treated as binary (the paper's "2GB" board has
    2 GiB of RAM), which is the convention for RAM sizes.

    >>> parse_size("4KB")
    4096
    >>> parse_size("2 GiB") == 2 * GiB
    True
    """
    cleaned = text.strip().lower().replace(" ", "")
    index = len(cleaned)
    while index > 0 and not cleaned[index - 1].isdigit():
        index -= 1
    number_part, suffix = cleaned[:index], cleaned[index:]
    if not number_part:
        raise ValueError(f"no numeric part in size {text!r}")
    if suffix and suffix not in _SIZE_ALIASES:
        raise ValueError(f"unknown size suffix {suffix!r} in {text!r}")
    multiplier = _SIZE_ALIASES.get(suffix, 1)
    return int(number_part) * multiplier


def format_size(num_bytes: int) -> str:
    """Render a byte count with the largest binary suffix that divides well.

    >>> format_size(2 * GiB)
    '2.0GiB'
    >>> format_size(512)
    '512B'
    """
    for factor, suffix in _SIZE_SUFFIXES:
        if num_bytes >= factor:
            return f"{num_bytes / factor:.1f}{suffix}"
    return f"{num_bytes}B"


def format_time(seconds: float) -> str:
    """Render a duration with an SI prefix suited to its magnitude.

    >>> format_time(0.0009)
    '900.0us'
    >>> format_time(14.2)
    '14.200s'
    """
    if seconds < 0:
        return "-" + format_time(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.3f}ms"
    return f"{seconds:.3f}s"


def format_rate(bytes_per_second: float) -> str:
    """Render a throughput, e.g. ``format_rate(110 * MiB)`` -> ``'110.0MiB/s'``."""
    return format_size(int(bytes_per_second)) + "/s"


def mb_per_s(megabytes: float) -> float:
    """Convert a throughput given in MiB/s to bytes/s (calibration helper)."""
    return megabytes * MiB
