"""Seeded load generation: storm cohorts and Poisson on-demand traffic.

A :class:`SimProver` is a protocol-level prover stub: it owns an
attestation key and a memory image (shared with its cohort), keeps a
SeED-style push counter and an ERASMUS-style history ring, and on
:meth:`~SimProver.emit` ships an authenticated report -- genuinely
computed over its own image, so a tampered prover produces honest
``compromised`` verdicts, not injected ones.  It deliberately skips
the CPU/scheduler model of :class:`~repro.sim.device.Device`: a
10 000-prover storm has to be cheap to *generate* so the thing under
test is the server.

The :class:`LoadGenerator` schedules traffic deterministically: a
*thundering herd* places one emit per prover uniformly inside a
window (a whole cohort's secure timers firing together -- the SeED
worst case), and Poisson traffic walks exponential gaps, picking a
prover per event.  All randomness comes from one
:class:`~repro.crypto.drbg.HmacDrbg`, consumed at schedule-build
time, so the same seed always yields the same event sequence.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.crypto.drbg import HmacDrbg
from repro.errors import ConfigurationError
from repro.obs.tracectx import TraceContext
from repro.ra.measurement import expected_digest
from repro.ra.report import AttestationReport, MeasurementRecord
from repro.ra.verifier import Verifier
from repro.sim.engine import Simulator
from repro.sim.network import Endpoint


def cohort_image(
    name: str, blocks: int, block_size: int, seed: bytes = b"vserver-img"
) -> Tuple[bytes, ...]:
    """The deterministic benign memory image a cohort shares."""
    drbg = HmacDrbg(seed + b"|" + name.encode())
    return tuple(drbg.generate(block_size) for _ in range(blocks))


def prover_key(name: str, seed: bytes = b"vserver-keys") -> bytes:
    """Per-prover attestation key, derived deterministically."""
    return HmacDrbg(seed + b"|" + name.encode()).generate(32)


class SimProver:
    """One enrolled prover: key, image, push counter, history ring."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        *,
        key: bytes,
        image: Sequence[bytes],
        endpoint: Endpoint,
        server: str = "vsrv",
        kind: str = "seed_report",
        history_size: int = 3,
        algorithm: str = "sha256",
        compromised: bool = False,
    ) -> None:
        if history_size < 1:
            raise ConfigurationError("history_size must be >= 1")
        self.sim = sim
        self.name = name
        self.key = key
        self.endpoint = endpoint
        self.server = server
        self.kind = kind
        self.history_size = history_size
        self.algorithm = algorithm
        self.compromised = compromised
        image = tuple(bytes(b) for b in image)
        if compromised:
            # honest compromise: the prover measures what it actually
            # holds, and what it holds diverges from the reference
            tampered = list(image)
            tampered[0] = bytes(
                byte ^ 0xFF for byte in tampered[0]
            )
            image = tuple(tampered)
        self.image = image
        self.counter = 0
        self.history: List[MeasurementRecord] = []
        self.sent = 0

    def enroll(self, verifier: Verifier,
               reference: Sequence[bytes]) -> None:
        """Register with the verifier under the cohort *reference*
        image (which a compromised prover's own image diverges from)."""
        verifier.enroll(self.name, key=self.key, reference=reference)

    def measure(self) -> MeasurementRecord:
        """One self-measurement over the prover's own image."""
        self.counter += 1
        nonce = b"push" + self.counter.to_bytes(8, "big")
        now = self.sim.now
        digest = expected_digest(
            self.key,
            self.image,
            self.algorithm,
            nonce,
            self.counter,
            list(range(len(self.image))),
            "sequential",
            b"",
        )
        record = MeasurementRecord(
            device=self.name,
            mechanism="vserver-load",
            algorithm=self.algorithm,
            nonce=nonce,
            counter=self.counter,
            digest=digest,
            t_start=now,
            t_end=now,
            block_count=len(self.image),
        )
        self.history.append(record)
        if len(self.history) > self.history_size:
            self.history.pop(0)
        return record

    def emit(self) -> AttestationReport:
        """Measure, wrap the history ring in a report, and send it."""
        self.measure()
        report = AttestationReport.authenticate(
            self.key, self.name, list(self.history),
            sent_counter=self.counter,
        )
        # The prover initiates the push, so it mints the exchange's
        # trace context (deterministic: name + push counter); gated on
        # obs so NULL_OBS storms allocate nothing.
        ctx = (
            TraceContext.mint("vserver", self.name, self.counter)
            if self.sim.obs.enabled else None
        )
        self.endpoint.send(self.server, self.kind, report, ctx=ctx)
        self.sent += 1
        return report


class LoadGenerator:
    """Deterministic storm + Poisson traffic over a prover population."""

    def __init__(
        self,
        sim: Simulator,
        provers: Sequence[SimProver],
        seed: bytes = b"vserver-load",
    ) -> None:
        if not provers:
            raise ConfigurationError("load generator needs provers")
        self.sim = sim
        self.provers = list(provers)
        self.drbg = HmacDrbg(seed + b"|loadgen")
        self.scheduled = 0

    def schedule_storm(
        self,
        at: float,
        window: float,
        provers: Optional[Sequence[SimProver]] = None,
    ) -> int:
        """Thundering herd: every prover emits once, uniformly inside
        ``[at, at + window]`` -- a whole cohort's secure timers firing
        in the same window."""
        pool = self.provers if provers is None else list(provers)
        for prover in pool:
            self.sim.schedule_at(
                at + self.drbg.uniform() * window, prover.emit
            )
        self.scheduled += len(pool)
        return len(pool)

    def schedule_poisson(
        self,
        start: float,
        until: float,
        mean_gap: float,
        provers: Optional[Sequence[SimProver]] = None,
    ) -> int:
        """Poisson on-demand traffic: exponential inter-arrival gaps,
        one uniformly drawn prover per arrival."""
        if mean_gap <= 0:
            raise ConfigurationError("mean_gap must be positive")
        pool = self.provers if provers is None else list(provers)
        count = 0
        at = start + self.drbg.exponential(mean_gap)
        while at < until:
            prover = pool[self.drbg.randbelow(len(pool))]
            self.sim.schedule_at(at, prover.emit)
            count += 1
            at += self.drbg.exponential(mean_gap)
        self.scheduled += count
        return count
