"""The served verifier: bounded queue, admission control, epoch batching.

One :class:`VerifierServer` fronts one :class:`~repro.ra.verifier.
Verifier` for an arbitrary prover population.  Reports arrive either
over the network (a :class:`~repro.sim.network.MuxEndpoint` spanning
the cohort channels) or via direct :meth:`VerifierServer.submit`
calls, pass admission control (per-tenant token bucket, then bounded
queue), and wait for the next *epoch tick*, which drains the whole
queue and verifies it -- one-by-one or through
:meth:`~repro.ra.verifier.Verifier.verify_batch` depending on
``ServerConfig.batch``.

Every submitted report ends in exactly one verdict-ledger entry:
``verified``, ``rejected-rate-limit`` or ``rejected-queue-full`` --
nothing is dropped without a verdict, and the CI smoke job asserts
that invariant (``unaccounted 0``).

Determinism: admission, queue depth, drain times and verdicts depend
only on sim time and arrival order, and the batch path is a pure
recomputation-amortization of the serial path, so the canonical
ledger is byte-identical between ``batch`` on and off -- only the
wall clock differs.  The SLO taxonomy (``deferred-ok`` past the
queue-latency SLO, ``rejected`` at admission) lands in the shared
:class:`~repro.resilience.outcome.OutcomeReport`.
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.ra.report import AttestationReport
from repro.ra.service import listen
from repro.ra.verifier import Verifier, VerifyCostModel
from repro.resilience.outcome import (
    OUTCOME_DEFERRED_OK,
    OUTCOME_REJECTED,
    OutcomeReport,
)
from repro.sim.engine import Simulator
from repro.sim.network import Endpoint, Message

#: message kinds the server consumes, with the per-kind verify kwargs
#: (the same replay defenses SeedMonitor / CollectorVerifier apply)
KIND_VERIFY_KWARGS: Dict[str, Dict[str, Any]] = {
    "seed_report": {"enforce_counter": True, "counter_stream": "seed-push"},
    "collect_reply": {
        "enforce_counter": True, "counter_stream": "erasmus-collect",
    },
    "att_report": {},
}

SERVED_KINDS = frozenset(KIND_VERIFY_KWARGS)

#: admission rejection reasons (ledger ``status`` values)
REJECT_RATE_LIMIT = "rejected-rate-limit"
REJECT_QUEUE_FULL = "rejected-queue-full"
STATUS_VERIFIED = "verified"


@dataclass(frozen=True)
class ServerConfig:
    """Service knobs (docs/verifier_service.md lists the SLO math).

    ``epoch`` is the batching period: the queue drains every ``epoch``
    sim-seconds starting at ``start_at + epoch``.  ``batch`` selects
    epoch-batched vs one-by-one verification *inside* the drain; it
    never changes admission or drain timing, so ledgers stay
    byte-identical across the switch.  ``rate_limit`` is per-tenant
    tokens/second (0 disables the bucket), ``rate_burst`` the bucket
    capacity.  ``slo_queue_latency`` is the deferred-ok threshold.

    ``verify_cost`` / ``verify_cost_record`` arm a
    :class:`~repro.ra.verifier.VerifyCostModel`: each drained report's
    verdict is delivered ``per_report + records * per_record``
    sim-seconds after the drain start, cumulatively within the epoch
    (one verifier core working through the batch), so
    ``vserver.stage.verify`` observes real values.  Both default to 0:
    verdicts stay instantaneous, ledger fields keep their exact seed
    meaning (``queue_latency`` is always admission -> drain start) and
    golden ledgers stay byte-identical.  With costs that overrun the
    horizon, tail conclusions simply have not happened yet -- they
    show up in ``unaccounted`` exactly like still-queued reports.
    """

    queue_capacity: int = 256
    epoch: float = 0.5
    batch: bool = True
    slo_queue_latency: float = 1.0
    rate_limit: float = 0.0
    rate_burst: float = 8.0
    start_at: float = 0.0
    verify_cost: float = 0.0
    verify_cost_record: float = 0.0

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ConfigurationError("queue_capacity must be >= 1")
        if self.epoch <= 0:
            raise ConfigurationError("epoch must be positive")
        if self.rate_limit < 0 or self.rate_burst <= 0:
            raise ConfigurationError(
                "rate_limit must be >= 0 and rate_burst > 0"
            )
        if self.verify_cost < 0 or self.verify_cost_record < 0:
            raise ConfigurationError("verify costs must be >= 0")


class TokenBucket:
    """Per-tenant admission rate limit on the sim clock.

    Classic token bucket: ``rate`` tokens/second refill up to
    ``capacity``; each admitted report spends one token.  Refill is
    computed lazily from elapsed sim time, so the bucket never
    schedules events of its own (and cannot perturb the event
    sequence).
    """

    __slots__ = ("rate", "capacity", "tokens", "refilled_at")

    def __init__(self, rate: float, capacity: float,
                 now: float = 0.0) -> None:
        self.rate = rate
        self.capacity = capacity
        self.tokens = capacity
        self.refilled_at = now

    def try_take(self, now: float) -> bool:
        if self.rate <= 0:
            return True
        elapsed = now - self.refilled_at
        if elapsed > 0:
            self.tokens = min(
                self.capacity, self.tokens + elapsed * self.rate
            )
            self.refilled_at = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass
class LedgerEntry:
    """One report's fate, canonically serializable.

    Every field is sim-time- or arrival-order-derived, so the line is
    identical whether the epoch drain verified serially or batched --
    the golden ledger test pins exactly that.
    """

    seq: int
    tenant: str
    device: str
    kind: str
    enqueued_at: float
    epoch: int
    status: str
    verdict: str = ""
    detail: str = ""
    records: int = 0
    queue_latency: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "tenant": self.tenant,
            "device": self.device,
            "kind": self.kind,
            "enqueued_at": round(self.enqueued_at, 9),
            "epoch": self.epoch,
            "status": self.status,
            "verdict": self.verdict,
            "detail": self.detail,
            "records": self.records,
            "queue_latency": round(self.queue_latency, 9),
        }

    def canonical_line(self) -> str:
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )


@dataclass
class _Queued:
    """One admitted report waiting for the next epoch drain."""

    seq: int
    tenant: str
    device: str
    kind: str
    enqueued_at: float
    report: AttestationReport
    verify_kwargs: Dict[str, Any] = field(default_factory=dict)
    #: trace context carried from the prover's message (out-of-band)
    ctx: Optional[Any] = None


class VerifierServer:
    """The verifier service: admission -> queue -> epoch batch -> verdict."""

    def __init__(
        self,
        sim: Simulator,
        verifier: Verifier,
        config: Optional[ServerConfig] = None,
        *,
        name: str = "vsrv",
        endpoint: Optional[Endpoint] = None,
        outcomes: Optional[OutcomeReport] = None,
    ) -> None:
        self.sim = sim
        self.verifier = verifier
        self.config = config or ServerConfig()
        self.name = name
        self.endpoint = endpoint
        self.outcomes = outcomes if outcomes is not None else OutcomeReport()
        # maxlen is a backstop only: admission rejects before append,
        # so the deque can never silently evict an admitted report
        self.queue: Deque[_Queued] = deque(
            maxlen=self.config.queue_capacity
        )
        #: the run artifact itself, one entry per submitted report;
        #: growth sites carry allow[perf-unbounded-queue] suppressions
        self.ledger: List[LedgerEntry] = []
        #: exact per-report queue latencies for p50/p99 (one float per
        #: verified report; bounded by the traffic the caller generates)
        self.queue_latencies: List[float] = []
        self._buckets: Dict[str, TokenBucket] = {}
        self._tenants: Dict[str, str] = {}
        self._seq = 0
        self.epochs = 0
        self.submitted = 0
        self.rejected_rate = 0
        self.rejected_full = 0
        self.verified = 0
        self.max_queue_depth = 0
        self._running = False
        # lazily resolved instrument handles (same idiom as
        # repro.sim.network.Endpoint.deliver): the registry's
        # get-or-create lookup is paid once per instrument instead of
        # once per report, and because resolution still happens at the
        # first real observation, instrument creation order -- and so
        # snapshot content -- is unchanged
        self._admission_hist: Optional[Any] = None
        self._admitted_counter: Optional[Any] = None
        self._queue_depth_gauge: Optional[Any] = None
        self._rejected_counters: Dict[str, Any] = {}
        self._epochs_counter: Optional[Any] = None
        self._batch_size_hist: Optional[Any] = None
        self._verified_counter: Optional[Any] = None
        self._stage_queue_hist: Optional[Any] = None
        self._stage_verify_hist: Optional[Any] = None
        self._stage_total_hist: Optional[Any] = None
        #: optional *injected* wall clock (source it from
        #: :func:`repro.fleet.clock.perf_time`); when set, the server
        #: accumulates the wall time spent inside verification drains
        #: into :attr:`verify_wall_time`.  Pure observation: sim time,
        #: verdicts and the ledger are identical with it on or off.
        self.verify_wall_clock = None
        self.verify_wall_time = 0.0
        if (
            self.config.verify_cost > 0
            or self.config.verify_cost_record > 0
        ) and verifier.cost_model is None:
            verifier.cost_model = VerifyCostModel(
                per_report=self.config.verify_cost,
                per_record=self.config.verify_cost_record,
            )
        if endpoint is not None:
            listen(endpoint, self._on_message, kinds=SERVED_KINDS)

    # -- wiring ---------------------------------------------------------

    def register_tenant(self, device: str, tenant: str) -> None:
        """Map a prover to its rate-limit tenant (default: itself)."""
        self._tenants[device] = tenant

    def start(self) -> None:
        """Begin the epoch tick train (idempotent)."""
        if self._running:
            return
        self._running = True
        self.sim.schedule_at(
            self.config.start_at + self.config.epoch, self._tick
        )

    def stop(self) -> None:
        """Stop rescheduling ticks after the next drain."""
        self._running = False

    # -- admission ------------------------------------------------------

    def _on_message(self, message: Message) -> None:
        payload = message.payload
        report = (
            payload.get("report") if isinstance(payload, dict) else payload
        )
        if not isinstance(report, AttestationReport):
            return
        self.submit(
            report, kind=message.kind, sent_at=message.sent_at,
            ctx=message.ctx,
        )

    def submit(
        self,
        report: AttestationReport,
        *,
        kind: str = "seed_report",
        tenant: Optional[str] = None,
        sent_at: Optional[float] = None,
        ctx: Optional[Any] = None,
    ) -> Optional[LedgerEntry]:
        """Admission control for one report.

        Returns the rejection ledger entry when the report was turned
        away, or ``None`` when it was queued (its entry is written at
        verdict time).
        """
        verify_kwargs = KIND_VERIFY_KWARGS.get(kind)
        if verify_kwargs is None:
            raise ConfigurationError(f"unserved report kind {kind!r}")
        now = self.sim.now
        self.submitted += 1
        tenant = (
            tenant if tenant is not None
            else self._tenants.get(report.device, report.device)
        )
        seq = self._seq
        self._seq += 1
        obs = self.sim.obs
        if obs.enabled and sent_at is not None:
            hist = self._admission_hist
            if hist is None:
                hist = self._admission_hist = obs.metrics.histogram(
                    "vserver.stage.admission",
                    "send to admission decision (sim s)",
                )
            hist.observe(
                now - sent_at,
                exemplar=ctx.trace_id if ctx is not None else None,
            )
            if ctx is not None and obs.spans.enabled:
                obs.spans.add_span(
                    "vserver.stage.admission", sent_at, now,
                    category="ra.vserver", device=report.device,
                    kind=kind, trace_id=ctx.trace_id,
                )
        if self.config.rate_limit > 0:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    self.config.rate_limit, self.config.rate_burst, now
                )
            if not bucket.try_take(now):
                return self._reject(
                    seq, tenant, report, kind, now, REJECT_RATE_LIMIT,
                    "per-tenant rate limit exceeded",
                )
        if len(self.queue) >= self.config.queue_capacity:
            return self._reject(
                seq, tenant, report, kind, now, REJECT_QUEUE_FULL,
                f"queue at capacity {self.config.queue_capacity}",
            )
        self.queue.append(_Queued(
            seq=seq,
            tenant=tenant,
            device=report.device,
            kind=kind,
            enqueued_at=now,
            report=report,
            verify_kwargs=verify_kwargs,
            ctx=ctx,
        ))
        depth = len(self.queue)
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth
        if obs.enabled:
            counter = self._admitted_counter
            if counter is None:
                counter = self._admitted_counter = obs.metrics.counter(
                    "vserver.admitted", "reports admitted to the queue"
                )
            counter.inc()
            gauge = self._queue_depth_gauge
            if gauge is None:
                gauge = self._queue_depth_gauge = obs.metrics.gauge(
                    "vserver.queue.depth",
                    "reports waiting for an epoch drain",
                )
            gauge.set(depth)
        return None

    def _reject(
        self,
        seq: int,
        tenant: str,
        report: AttestationReport,
        kind: str,
        now: float,
        status: str,
        detail: str,
    ) -> LedgerEntry:
        if status == REJECT_RATE_LIMIT:
            self.rejected_rate += 1
        else:
            self.rejected_full += 1
        entry = LedgerEntry(
            seq=seq,
            tenant=tenant,
            device=report.device,
            kind=kind,
            enqueued_at=now,
            epoch=self.epochs,
            status=status,
            detail=detail,
            records=len(report.records),
        )
        # the ledger is the run artifact: one line per report, by design
        self.ledger.append(entry)  # repro: allow[perf-unbounded-queue]
        self.outcomes.record(
            device=report.device,
            nonce=report.auth_tag,
            requested_at=now,
            concluded_at=now,
            attempts=1,
            completed=False,
            classification=OUTCOME_REJECTED,
        )
        obs = self.sim.obs
        if obs.enabled:
            counter = self._rejected_counters.get(status)
            if counter is None:
                counter = self._rejected_counters[status] = (
                    obs.metrics.counter(
                        "vserver.rejected", "reports refused at admission",
                        reason=status,
                    )
                )
            counter.inc()
        return entry

    # -- epoch drain ----------------------------------------------------

    def _tick(self) -> None:
        self.epochs += 1
        now = self.sim.now
        drained = list(self.queue)
        self.queue.clear()
        obs = self.sim.obs
        if obs.enabled:
            counter = self._epochs_counter
            if counter is None:
                counter = self._epochs_counter = obs.metrics.counter(
                    "vserver.epochs", "epoch drains executed"
                )
            counter.inc()
            gauge = self._queue_depth_gauge
            if gauge is None:
                gauge = self._queue_depth_gauge = obs.metrics.gauge(
                    "vserver.queue.depth",
                    "reports waiting for an epoch drain",
                )
            gauge.set(0)
            hist = self._batch_size_hist
            if hist is None:
                hist = self._batch_size_hist = obs.metrics.histogram(
                    "vserver.epoch.batch_size", "reports drained per epoch",
                    buckets=(
                        0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024
                    ),
                )
            hist.observe(len(drained))
        if drained:
            clock = self.verify_wall_clock
            started = clock() if clock is not None else 0.0
            if self.config.batch:
                results = self.verifier.verify_batch(
                    [(item.report, item.verify_kwargs) for item in drained]
                )
            else:
                results = [
                    self.verifier.verify_report(
                        item.report, **item.verify_kwargs
                    )
                    for item in drained
                ]
            if clock is not None:
                self.verify_wall_time += clock() - started
            # Verdicts are computed at the drain instant (batch and
            # serial alike); the cost model only defers their
            # *delivery*, cumulatively -- one verifier core working
            # through the epoch's batch.  cost == 0 keeps the exact
            # seed behavior: conclude inline, no extra events.
            cumulative = 0.0
            epoch = self.epochs
            for item, result in zip(drained, results):
                cost = self.verifier.verify_cost(item.report)
                cumulative += cost
                if cumulative <= 0.0:
                    self._conclude(item, result, now)
                else:
                    self.sim.schedule(
                        cumulative, self._conclude, item, result, now,
                        cumulative, epoch,
                    )
        if self._running:
            self.sim.schedule(self.config.epoch, self._tick)

    def _conclude(
        self,
        item: _Queued,
        result,
        now: float,
        verify_time: float = 0.0,
        epoch: Optional[int] = None,
    ) -> None:
        # ``now`` is the drain start; with a cost model the verdict
        # lands ``verify_time`` later (the current sim instant), and
        # ``epoch`` pins the draining epoch even if later ticks have
        # already advanced the counter.
        latency = now - item.enqueued_at
        concluded_at = now + verify_time
        epoch = self.epochs if epoch is None else epoch
        self.verified += 1
        # deliberate accumulators: exact quantiles + the run artifact
        self.queue_latencies.append(latency)  # repro: allow[perf-unbounded-queue]
        entry = LedgerEntry(
            seq=item.seq,
            tenant=item.tenant,
            device=item.device,
            kind=item.kind,
            enqueued_at=item.enqueued_at,
            epoch=epoch,
            status=STATUS_VERIFIED,
            verdict=result.verdict.value,
            detail=result.detail,
            records=len(item.report.records),
            queue_latency=latency,
        )
        self.ledger.append(entry)  # repro: allow[perf-unbounded-queue]
        late = latency > self.config.slo_queue_latency
        self.outcomes.record(
            device=item.device,
            nonce=item.report.auth_tag,
            requested_at=item.enqueued_at,
            concluded_at=concluded_at,
            attempts=1,
            completed=True,
            verdict=result.verdict.value,
            classification=OUTCOME_DEFERRED_OK if late else None,
        )
        obs = self.sim.obs
        if obs.enabled:
            ctx = item.ctx
            exemplar = ctx.trace_id if ctx is not None else None
            counter = self._verified_counter
            if counter is None:
                counter = self._verified_counter = obs.metrics.counter(
                    "vserver.verified", "reports concluded with a verdict"
                )
            counter.inc()
            hist = self._stage_queue_hist
            if hist is None:
                hist = self._stage_queue_hist = obs.metrics.histogram(
                    "vserver.stage.queue",
                    "admission to epoch-drain start (sim s)",
                )
            hist.observe(latency, exemplar=exemplar)
            hist = self._stage_verify_hist
            if hist is None:
                hist = self._stage_verify_hist = obs.metrics.histogram(
                    "vserver.stage.verify",
                    "epoch-drain start to verdict (sim s; 0 until a "
                    "verify-cost model is charged)",
                )
            hist.observe(verify_time, exemplar=exemplar)
            hist = self._stage_total_hist
            if hist is None:
                hist = self._stage_total_hist = obs.metrics.histogram(
                    "vserver.stage.total",
                    "admission to verdict (sim s)",
                )
            hist.observe(latency + verify_time, exemplar=exemplar)
            if ctx is not None and obs.spans.enabled:
                obs.spans.add_span(
                    "vserver.stage.queue", item.enqueued_at, now,
                    category="ra.vserver", device=item.device,
                    trace_id=ctx.trace_id,
                )
                obs.spans.add_span(
                    "vserver.stage.verify", now, concluded_at,
                    category="ra.vserver", device=item.device,
                    trace_id=ctx.trace_id,
                )
                obs.spans.add_span(
                    "vserver.exchange", item.enqueued_at, concluded_at,
                    category="ra.vserver", device=item.device,
                    kind=item.kind, seq=item.seq,
                    verdict=result.verdict.value,
                    trace_id=ctx.trace_id,
                )

    # -- accounting ------------------------------------------------------

    @property
    def rejected(self) -> int:
        return self.rejected_rate + self.rejected_full

    @property
    def unaccounted(self) -> int:
        """Reports with neither a verdict, a rejection, nor a queue
        slot -- must be 0 (the CI smoke job greps for it)."""
        return (
            self.submitted - self.rejected - self.verified
            - len(self.queue)
        )

    def queue_latency_quantile(self, q: float) -> float:
        """Exact nearest-rank quantile over verified-report latencies."""
        if not self.queue_latencies:
            return 0.0
        ordered = sorted(self.queue_latencies)
        rank = max(1, math.ceil(q * len(ordered)))
        return ordered[min(len(ordered), rank) - 1]

    def ledger_lines(self) -> List[str]:
        return [entry.canonical_line() for entry in self.ledger]

    def stats(self) -> Dict[str, Any]:
        return {
            "submitted": self.submitted,
            "verified": self.verified,
            "rejected": self.rejected,
            "rejected_rate_limit": self.rejected_rate,
            "rejected_queue_full": self.rejected_full,
            "queued": len(self.queue),
            "unaccounted": self.unaccounted,
            "epochs": self.epochs,
            "max_queue_depth": self.max_queue_depth,
            "queue_latency_p50": self.queue_latency_quantile(0.50),
            "queue_latency_p99": self.queue_latency_quantile(0.99),
        }

    def summary(self) -> str:
        stats = self.stats()
        verdicts = self.verifier.verdict_counts()
        verdict_text = ", ".join(
            f"{name} {count}" for name, count in sorted(verdicts.items())
        ) or "none"
        mode = "batch" if self.config.batch else "serial"
        return "\n".join([
            (
                f"verifier service {self.name!r}: "
                f"{stats['submitted']} submitted, "
                f"{stats['verified']} verified, "
                f"{stats['rejected']} rejected "
                f"({stats['rejected_rate_limit']} rate-limit, "
                f"{stats['rejected_queue_full']} queue-full), "
                f"{stats['queued']} queued, "
                f"unaccounted {stats['unaccounted']}"
            ),
            (
                f"  epochs {stats['epochs']} ({mode}), "
                f"max queue depth {stats['max_queue_depth']}, "
                f"queue latency p50 {stats['queue_latency_p50']:.3f}s "
                f"p99 {stats['queue_latency_p99']:.3f}s"
            ),
            f"  verdicts: {verdict_text}",
        ])
