"""One-call wiring for a served-verifier scenario, plus presets/DSL.

:func:`build_service_scenario` is the ``Scenario.build`` counterpart
for the service stack, with the same fixed wiring-order discipline
(it pins event sequence numbers, which the golden ledger pins down):

    sim -> verifier -> server (+mux) -> cohort channels -> provers
        -> enrollment -> traffic schedule -> epoch ticks

Presets (:data:`SERVICE_PRESETS`) are named parameter bundles:
``smoke`` is the small CI storm whose canonical ledger is the golden
artifact; ``storm1k`` is the >=1000-prover thundering herd the
``verifier.*`` benches time.  :meth:`ServiceConfig.parse` accepts the
fleet DSL form (``"preset=smoke;provers=100;batch=off"``) so campaign
specs can sweep service knobs like they sweep fault plans.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from repro.crypto.drbg import HmacDrbg
from repro.errors import ConfigurationError
from repro.obs.core import Observability
from repro.obs.metrics import MetricsRegistry
from repro.ra.verifier import Verifier
from repro.resilience.outcome import OutcomeReport
from repro.sim.engine import Simulator
from repro.sim.network import Channel, MuxEndpoint
from repro.vserver.loadgen import (
    LoadGenerator,
    SimProver,
    cohort_image,
    prover_key,
)
from repro.vserver.server import ServerConfig, VerifierServer


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a served-verifier scenario needs, in one bundle."""

    # population
    provers: int = 40
    cohorts: int = 2
    blocks: int = 16
    block_size: int = 64
    history: int = 3
    algorithm: str = "sha256"
    compromised: float = 0.1
    # service
    epoch: float = 0.5
    queue_capacity: int = 256
    batch: bool = True
    slo: float = 1.0
    rate_limit: float = 0.0
    rate_burst: float = 8.0
    #: verify-cost model (sim s); 0 keeps verdicts instantaneous and
    #: the golden smoke ledger byte-identical
    verify_cost: float = 0.0
    verify_cost_record: float = 0.0
    # network
    latency: float = 0.002
    # traffic
    storms: int = 1
    storm_at: float = 1.0
    storm_window: float = 0.4
    storm_gap: float = 2.0
    poisson_gap: float = 0.0
    poisson_until: float = 0.0
    # run
    horizon: float = 10.0
    seed: str = "svc"

    def __post_init__(self) -> None:
        if self.provers < 1 or self.cohorts < 1:
            raise ConfigurationError("need >= 1 prover and >= 1 cohort")
        if self.cohorts > self.provers:
            raise ConfigurationError("more cohorts than provers")

    def server_config(self) -> ServerConfig:
        return ServerConfig(
            queue_capacity=self.queue_capacity,
            epoch=self.epoch,
            batch=self.batch,
            slo_queue_latency=self.slo,
            rate_limit=self.rate_limit,
            rate_burst=self.rate_burst,
            verify_cost=self.verify_cost,
            verify_cost_record=self.verify_cost_record,
        )

    @classmethod
    def parse(cls, text: str) -> "ServiceConfig":
        """Parse the fleet DSL: ``"preset=smoke;provers=100;batch=off"``.

        A bare preset name (``"smoke"``) is shorthand for
        ``preset=<name>``; remaining ``key=value`` pairs override the
        preset's fields.
        """
        base = cls()
        overrides: Dict[str, Any] = {}
        fields_by_name = {f.name: f for f in dataclasses.fields(cls)}
        for chunk in text.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            if "=" not in chunk:
                base = service_preset(chunk)
                continue
            key, _, raw = chunk.partition("=")
            key = key.strip()
            raw = raw.strip()
            if key == "preset":
                base = service_preset(raw)
                continue
            spec = fields_by_name.get(key)
            if spec is None:
                known = ", ".join(sorted(fields_by_name))
                raise ConfigurationError(
                    f"unknown service field {key!r}; known: "
                    f"preset, {known}"
                )
            overrides[key] = _coerce(key, raw, spec.type)
        return replace(base, **overrides) if overrides else base


def _coerce(key: str, raw: str, type_name: Any) -> Any:
    type_name = str(type_name)
    if "bool" in type_name:
        lowered = raw.lower()
        if lowered in ("1", "true", "on", "yes"):
            return True
        if lowered in ("0", "false", "off", "no"):
            return False
        raise ConfigurationError(
            f"service field {key!r} wants on/off, got {raw!r}"
        )
    if "int" in type_name:
        return int(raw)
    if "float" in type_name:
        return float(raw)
    return raw


#: named parameter bundles; ``smoke`` backs the golden ledger and the
#: CI load-test smoke job, ``storm1k`` backs the verifier.* benches
SERVICE_PRESETS: Dict[str, ServiceConfig] = {
    # small enough for CI, rich enough to exercise the whole taxonomy:
    # tight rate limit -> rate-limit rejections, tiny queue ->
    # queue-full rejections, slo < epoch -> deferred-ok verdicts,
    # compromised cohort members -> compromised verdicts
    "smoke": ServiceConfig(
        provers=24,
        cohorts=2,
        blocks=8,
        block_size=32,
        history=3,
        compromised=0.25,
        epoch=0.25,
        queue_capacity=6,
        slo=0.2,
        rate_limit=12.0,
        rate_burst=4.0,
        storms=1,
        storm_at=0.5,
        storm_window=0.6,
        poisson_gap=0.05,
        poisson_until=3.0,
        horizon=5.0,
        seed="smoke",
    ),
    # the acceptance-criteria storm: >= 1000 provers, three thundering
    # waves inside one epoch so ERASMUS-style history re-ships overlap
    # (that overlap is what epoch batching amortizes)
    "storm1k": ServiceConfig(
        provers=1000,
        cohorts=4,
        blocks=128,
        block_size=64,
        history=4,
        compromised=0.05,
        epoch=1.0,
        queue_capacity=4096,
        slo=1.5,
        storms=4,
        storm_at=1.05,
        storm_window=0.1,
        storm_gap=0.15,
        horizon=4.0,
        seed="storm1k",
    ),
}

# the smoke scenario with the verify-cost model armed: each verdict is
# charged per-report + per-record sim time, so vserver.stage.verify
# observes real values (ROADMAP section-2 gap).  Costs are small
# relative to the 0.25s epoch so conclusions land inside the horizon;
# the seed stays "smoke" on purpose -- identical traffic, so the cost
# model's pure-deferral property (same ledger lines, later delivery)
# is directly testable against the golden smoke ledger.
SERVICE_PRESETS["smoke-cost"] = replace(
    SERVICE_PRESETS["smoke"],
    verify_cost=0.002,
    verify_cost_record=0.0005,
)


def service_preset(name: str) -> ServiceConfig:
    preset = SERVICE_PRESETS.get(name)
    if preset is None:
        known = ", ".join(sorted(SERVICE_PRESETS))
        raise ConfigurationError(
            f"unknown service preset {name!r}; known: {known}"
        )
    return preset


@dataclass
class ServiceScenario:
    """Everything :func:`build_service_scenario` wired together."""

    config: ServiceConfig
    sim: Simulator
    verifier: Verifier
    server: VerifierServer
    channels: List[Channel]
    provers: List[SimProver]
    loadgen: LoadGenerator
    outcomes: OutcomeReport
    obs: Any = None
    extras: Dict[str, Any] = field(default_factory=dict)

    def run(self, until: Optional[float] = None) -> Dict[str, Any]:
        """Run to the horizon and return the server stats."""
        self.sim.run(
            until=self.config.horizon if until is None else until
        )
        return self.server.stats()

    def ledger_lines(self) -> List[str]:
        return self.server.ledger_lines()

    def write_ledger(self, path: Any) -> int:
        lines = self.ledger_lines()
        with open(path, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line)
                handle.write("\n")
        return len(lines)


def build_service_scenario(
    config: Optional[ServiceConfig] = None,
    *,
    obs: Optional[Any] = None,
) -> ServiceScenario:
    """Wire a complete served-verifier scenario (canonical order)."""
    config = config or service_preset("smoke")
    seed = config.seed.encode()
    if obs is None:
        # metrics on (queue gauges / stage histograms are part of the
        # deliverable), spans off (per-message spans at storm scale
        # would dominate the run)
        obs = Observability(metrics=MetricsRegistry())
    sim = Simulator(obs=obs)

    verifier = Verifier(sim, name="vsrv-core", nonce_seed=seed + b"|nonces")
    outcomes = OutcomeReport()
    mux = MuxEndpoint(sim, "vsrv")
    server = VerifierServer(
        sim, verifier, config.server_config(),
        name="vsrv", endpoint=mux, outcomes=outcomes,
    )

    # cohort channels: slightly heterogeneous latency per cohort so
    # arrival interleaving exercises the mux, deterministically
    channels: List[Channel] = []
    for index in range(config.cohorts):
        channel = Channel(
            sim, latency=config.latency * (1.0 + 0.25 * index)
        )
        mux.join(channel)
        channels.append(channel)

    compromise_drbg = HmacDrbg(seed + b"|compromise")
    provers: List[SimProver] = []
    images: Dict[int, Any] = {}
    for index in range(config.provers):
        cohort = index % config.cohorts
        image = images.get(cohort)
        if image is None:
            image = images[cohort] = cohort_image(
                f"{config.seed}-c{cohort}",
                config.blocks,
                config.block_size,
            )
        name = f"prv{index:04d}"
        channel = channels[cohort]
        endpoint = channel.make_endpoint(name)
        prover = SimProver(
            sim,
            name,
            key=prover_key(name, seed + b"|keys"),
            image=image,
            endpoint=endpoint,
            server="vsrv",
            history_size=config.history,
            algorithm=config.algorithm,
            compromised=compromise_drbg.uniform() < config.compromised,
        )
        prover.enroll(verifier, image)
        server.register_tenant(name, f"cohort{cohort}")
        provers.append(prover)

    loadgen = LoadGenerator(sim, provers, seed=seed + b"|traffic")
    for wave in range(config.storms):
        loadgen.schedule_storm(
            config.storm_at + wave * config.storm_gap,
            config.storm_window,
        )
    if config.poisson_gap > 0 and config.poisson_until > 0:
        loadgen.schedule_poisson(
            0.0, config.poisson_until, config.poisson_gap
        )
    server.start()

    return ServiceScenario(
        config=config,
        sim=sim,
        verifier=verifier,
        server=server,
        channels=channels,
        provers=provers,
        loadgen=loadgen,
        outcomes=outcomes,
        obs=obs,
    )
