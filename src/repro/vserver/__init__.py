"""Verifier-as-a-service: batched multi-prover verification under load.

The paper's verifier is a one-exchange peer; this package turns it
into a *server* -- thousands of enrolled provers on one shared sim
clock, a bounded request queue with admission control and per-tenant
token-bucket rate limits, epoch-batched verification that amortizes
expected-digest recomputation across same-epoch reports, and a seeded
load generator that replays thundering-herd storms plus Poisson
on-demand traffic (docs/verifier_service.md).

Entry points:

* :class:`~repro.vserver.server.VerifierServer` -- the service core;
* :class:`~repro.vserver.loadgen.LoadGenerator` /
  :class:`~repro.vserver.loadgen.SimProver` -- seeded traffic;
* :func:`~repro.vserver.service.build_service_scenario` /
  ``Scenario.build_service(...)`` -- one-call wiring;
* ``repro serve`` -- the load-test CLI (:mod:`repro.vserver.cli`).
"""

from repro.vserver.loadgen import LoadGenerator, SimProver
from repro.vserver.server import (
    LedgerEntry,
    ServerConfig,
    TokenBucket,
    VerifierServer,
)
from repro.vserver.service import (
    SERVICE_PRESETS,
    ServiceConfig,
    ServiceScenario,
    build_service_scenario,
)

__all__ = [
    "LedgerEntry",
    "LoadGenerator",
    "SERVICE_PRESETS",
    "ServerConfig",
    "ServiceConfig",
    "ServiceScenario",
    "SimProver",
    "TokenBucket",
    "VerifierServer",
    "build_service_scenario",
]
