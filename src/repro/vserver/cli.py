"""The ``repro serve`` entry point: run a served-verifier load test.

Kept separate from :mod:`repro.cli` (the pattern the lint and obs
subcommands follow) so the service harness stays importable and
scriptable -- ``run_serve`` is what the CI load-test smoke job and
the tests drive.
"""

from __future__ import annotations

import argparse
import dataclasses
from typing import List

from repro.vserver.service import (
    SERVICE_PRESETS,
    ServiceConfig,
    service_preset,
)


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the serve options to a (sub)parser."""
    parser.add_argument(
        "--preset", default="smoke", choices=sorted(SERVICE_PRESETS),
        help="named service configuration (default: smoke)",
    )
    parser.add_argument(
        "--service", default=None,
        help=(
            "DSL overrides on top of the preset, e.g. "
            "'provers=200;batch=off;epoch=0.5'"
        ),
    )
    parser.add_argument(
        "--provers", type=int, default=None,
        help="override the prover population size",
    )
    parser.add_argument(
        "--horizon", type=float, default=None,
        help="override the sim horizon (seconds)",
    )
    parser.add_argument(
        "--serial", action="store_true",
        help="verify drains one-by-one instead of epoch-batched "
             "(same ledger, different wall clock)",
    )
    parser.add_argument(
        "--ledger", default=None,
        help="write the canonical verdict ledger (JSONL) here",
    )
    parser.add_argument(
        "--outcomes", action="store_true",
        help="also render the exchange-outcome taxonomy table",
    )
    parser.add_argument(
        "--timing", action="store_true",
        help="report wall-clock verify-stage timing (non-deterministic; "
             "never part of the ledger)",
    )


def _config_from_args(args: argparse.Namespace) -> ServiceConfig:
    config = service_preset(args.preset)
    if args.service:
        # re-parse with the preset as base: "preset=<chosen>;<overrides>"
        config = ServiceConfig.parse(
            f"preset={args.preset};{args.service}"
        )
    overrides = {}
    if args.provers is not None:
        overrides["provers"] = args.provers
    if args.horizon is not None:
        overrides["horizon"] = args.horizon
    if args.serial:
        overrides["batch"] = False
    if overrides:
        config = dataclasses.replace(config, **overrides)
    return config


def run_serve(args: argparse.Namespace) -> str:
    """Build, run, and summarize one served-verifier scenario."""
    from repro.scenario import Scenario

    config = _config_from_args(args)
    scenario = Scenario.build(service=config)
    if args.timing:
        from repro.fleet.clock import perf_time

        scenario.server.verify_wall_time = 0.0
        scenario.server.verify_wall_clock = perf_time
    scenario.run()

    lines: List[str] = [
        (
            f"serve: preset {args.preset!r}, {config.provers} provers / "
            f"{config.cohorts} cohorts, epoch {config.epoch}s, "
            f"{'batched' if config.batch else 'serial'} drains"
        ),
        scenario.server.summary(),
    ]
    if args.outcomes:
        lines.append(scenario.outcomes.render("exchange outcomes:"))
    if args.timing:
        wall = scenario.server.verify_wall_time
        verified = scenario.server.verified
        rate = verified / wall if wall > 0 else 0.0
        lines.append(
            f"  verify stage: {wall:.4f}s wall for {verified} reports "
            f"({rate:,.0f} reports/s)"
        )
    if args.ledger:
        count = scenario.write_ledger(args.ledger)
        lines.append(f"  ledger: {count} entries -> {args.ledger}")
    return "\n".join(lines)
