"""SEC32 -- SMARM escape probabilities (Section 3.2).

The paper: the optimal roving malware escapes one shuffled measurement
with probability ~ e^-1 ~ 0.37, and "after 13 checks that probability
is below 10^-6".  Regenerated three ways: closed form, abstract
Monte-Carlo, and the full device simulation.
"""

import math

import pytest

from benchmarks.conftest import banner, once
from repro.analysis.smarm_math import multi_round_escape
from repro.experiments import sec32_smarm


def test_sec32_smarm_escape(benchmark):
    result = once(benchmark, sec32_smarm, n_blocks=64, trials=4000)
    print(banner("Section 3.2: SMARM escape probabilities"))
    print(result.render())

    assert result.mc_single == pytest.approx(result.exact_single,
                                             abs=0.03)
    assert result.exact_single == pytest.approx(math.exp(-1), abs=0.01)
    table = dict(result.rounds_table)
    assert table[13] < 1e-5  # the paper's "below 10^-6 after 13" regime
    assert table[14] < 1e-6
    assert result.rounds_needed in (13, 14)


def test_sec32_full_stack_escape_rate(benchmark):
    """Device-level SMARM vs uniform-relocating malware: the single
    round escape rate lands in the e^-1 band."""
    from repro.malware.relocating import SelfRelocatingMalware
    from repro.ra.report import Verdict
    from repro.ra.smarm import SmarmAttestation
    from tests.conftest import make_stack

    def run_trials(trials=80):
        escapes = 0
        for seed in range(trials):
            stack = make_stack(block_count=24)
            SmarmAttestation(stack.device, rounds=1).install()
            SelfRelocatingMalware(
                stack.device, target_block=20, infect_at=0.1,
                strategy="uniform", rng_seed=seed,
            )
            exchanges = []
            stack.sim.schedule_at(
                1.0,
                lambda s=stack, e=exchanges: e.append(
                    s.driver.request(s.device.name)
                ),
            )
            stack.sim.run(until=60)
            if exchanges[0].result.verdict is Verdict.HEALTHY:
                escapes += 1
        return escapes / trials

    rate = once(benchmark, run_trials)
    expected = multi_round_escape(24, 1)
    print(banner("full-stack SMARM single-round escape rate"))
    print(f"  observed {rate:.3f} vs closed form {expected:.3f}")
    # 80 Bernoulli trials at p~0.36: allow a 3-sigma band.
    sigma = math.sqrt(expected * (1 - expected) / 80)
    assert abs(rate - expected) < 3.5 * sigma
