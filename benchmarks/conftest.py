"""Benchmark-suite helpers.

Every benchmark regenerates one paper artifact: it runs the experiment
under ``pytest-benchmark`` timing, prints the same rows/series the
paper reports (run with ``-s`` to see them), and asserts the paper's
shape claims so a silent regression cannot slip through.
"""

from __future__ import annotations


def banner(title: str) -> str:
    rule = "=" * max(10, len(title))
    return f"\n{rule}\n{title}\n{rule}"


def once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under the timer."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
