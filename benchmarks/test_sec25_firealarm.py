"""SEC25 -- the fire-alarm scenario (Section 2.5).

1 GiB of attested memory, a 1-second sensor loop, fire igniting right
after MP starts.  The paper: atomic MP over 1 GB runs ~7 s, so "it
would take a very long time for the application to regain control,
sense the fire and sound the alarm"; interruptible mechanisms keep the
alarm latency at one sensor period.
"""

import pytest

from benchmarks.conftest import banner, once
from repro.experiments import sec25_firealarm
from repro.units import GiB


def test_sec25_firealarm(benchmark):
    result = once(
        benchmark,
        sec25_firealarm,
        memory_bytes=GiB,
        mechanisms=["none", "smart", "inc-lock", "smarm"],
    )
    print(banner("Section 2.5: fire-alarm latency under attestation"))
    print(result.render())

    rows = {row.mechanism: row for row in result.rows}
    # ~7 s atomic measurement (the paper's number for 1 GB).
    assert rows["smart"].mp_duration == pytest.approx(7.0, rel=0.1)
    # Alarm latency: who wins and by what factor.
    assert rows["none"].alarm_latency < 1.0
    assert rows["smart"].alarm_latency > 5.0
    assert rows["smart"].alarm_latency > 5 * rows["none"].alarm_latency
    for interruptible in ("inc-lock", "smarm"):
        assert rows[interruptible].alarm_latency < 1.1
    # Deadline damage follows the same split.
    assert rows["smart"].deadline_misses >= 5
    assert rows["inc-lock"].deadline_misses <= 1


def test_sec25_memory_size_sweep(benchmark):
    """Alarm latency under atomic MP grows linearly with attested size
    (the reason Section 2.4's measurements matter for safety)."""

    def sweep():
        sizes = [GiB // 4, GiB // 2, GiB]
        return [
            (
                size,
                sec25_firealarm(memory_bytes=size, mechanisms=["smart"])
                .rows[0],
            )
            for size in sizes
        ]

    rows = once(benchmark, sweep)
    print(banner("Section 2.5 sweep: attested size vs alarm latency"))
    for size, row in rows:
        print(
            f"  {size / GiB:5.2f} GiB  MP={row.mp_duration:6.3f}s  "
            f"alarm latency={row.alarm_latency:6.3f}s"
        )
    latencies = [row.alarm_latency for _, row in rows]
    assert latencies == sorted(latencies)
    # Doubling memory ~ doubles the damage.
    assert latencies[2] == pytest.approx(2 * latencies[1], rel=0.25)
