"""TAB1 -- the feature matrix (Table 1), empirically derived.

Runs every mechanism against the no-adversary / self-relocating /
reactive-transient scenarios on an identical device and workload, then
distills the Table 1 columns from the outcomes and compares each cell
with the paper's claim.
"""

from benchmarks.conftest import banner, once
from repro.core.tradeoff import ScenarioConfig
from repro.experiments import table1
from repro.units import MiB


def test_table1_features(benchmark):
    config = ScenarioConfig(
        block_count=32,
        sim_block_size=2 * MiB,
        horizon=40.0,
        erasmus_period=2.5,
        erasmus_collect_at=30.0,
    )
    result = once(benchmark, table1, config=config)
    print(banner("Table 1: claimed vs simulated feature matrix"))
    print(result.render())

    mismatches = [row for row in result.claims if not row[4]]
    assert mismatches == [], mismatches

    matrix = result.matrix
    # Spot-check the numeric story behind the marks.
    smart = matrix.outcome("smart", "none")
    smarm = matrix.outcome("smarm", "none")
    # Atomic baseline blocks the critical task for ~ a full measurement;
    # SMARM keeps worst-case response ~ the task's own compute time.
    assert smart.task_worst_response > 0.5 * smart.mp_duration
    assert smarm.task_worst_response < 0.05 * smarm.mp_duration
    # Locking overhead exists but is small ("Low" in Table 1): the MPU
    # ops add well under 10% to the measurement.
    all_lock = matrix.outcome("all-lock", "none")
    assert all_lock.mp_duration < smart.mp_duration * 1.1
    assert all_lock.lock_ops > 0
