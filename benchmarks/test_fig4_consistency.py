"""FIG4 -- temporal consistency per locking mechanism (Figure 4).

Runs one measurement per policy with controlled writes at the A/B/C/D
instants of Figure 4 and asserts each mechanism's claimed guarantee:
All-Lock consistent over [t_s, t_e] (and -Ext until t_r), Dec-Lock at
t_s only, Inc-Lock at t_e (and -Ext until t_r), No-Lock nowhere.
"""

from benchmarks.conftest import banner, once
from repro.experiments import fig4_consistency


def test_fig4_consistency(benchmark):
    result = once(benchmark, fig4_consistency)
    print(banner("Figure 4: consistency of F's computation vs writes"))
    print(result.render())

    by_policy = {case.policy: case for case in result.cases}
    tolerance = 1e-3

    no_lock = by_policy["no-lock"]
    assert not no_lock.profile.any_consistent

    all_lock = by_policy["all-lock"]
    assert all_lock.consistent_near(all_lock.t_s, tolerance)
    assert all_lock.consistent_near(all_lock.t_e, tolerance)

    all_ext = by_policy["all-lock-ext"]
    assert all_ext.t_r is not None
    assert all_ext.consistent_near(all_ext.t_r, tolerance * 10)

    dec = by_policy["dec-lock"]
    assert dec.consistent_near(dec.t_s, tolerance)
    assert not dec.consistent_near(dec.t_e, tolerance)

    inc = by_policy["inc-lock"]
    assert inc.consistent_near(inc.t_e, tolerance)
    assert not inc.consistent_near(inc.t_s, tolerance)

    inc_ext = by_policy["inc-lock-ext"]
    assert inc_ext.t_r is not None
    assert inc_ext.consistent_near(inc_ext.t_r, tolerance * 10)

    # Figure 4's caption: a change at A (before t_s) or D (after the
    # release) "has no effect"; B/C matter per mechanism.
    for case in result.cases:
        assert case.committed_writes["A"]
    assert by_policy["dec-lock"].committed_writes["B"]
    assert not by_policy["dec-lock"].committed_writes["C"]
    assert not by_policy["inc-lock"].committed_writes["B"]
    assert by_policy["inc-lock"].committed_writes["C"]
