"""Substrate performance: how fast the simulator itself runs.

Not a paper artifact -- a performance baseline for the library, so
regressions in the event loop, the scheduler or the measurement engine
show up in benchmark history.  pytest-benchmark runs these hot paths
repeatedly for real statistics.
"""

import pytest

from repro.ra.measurement import MeasurementConfig, MeasurementProcess
from repro.sim.device import Device
from repro.sim.engine import Simulator
from repro.sim.process import CPU, Compute, Sleep
from repro.sim.task import PeriodicTask


def test_event_queue_throughput(benchmark):
    """Schedule-and-drain 10k bare events."""

    def run():
        sim = Simulator()
        counter = [0]

        def bump():
            counter[0] += 1

        for index in range(10_000):
            sim.schedule(index * 1e-4, bump)
        sim.run()
        return counter[0]

    assert benchmark(run) == 10_000


def test_scheduler_throughput(benchmark):
    """A preemption-heavy task set: 5 tasks x 200 jobs each."""

    def run():
        sim = Simulator()
        cpu = CPU(sim)
        tasks = []
        device = Device(sim, block_count=4, block_size=16)
        for priority in range(1, 6):
            tasks.append(
                PeriodicTask(
                    device.cpu, f"t{priority}", period=0.01,
                    wcet=0.001, priority=priority, max_jobs=200,
                )
            )
        sim.run()
        return sum(task.stats().jobs_finished for task in tasks)

    assert benchmark(run) == 1000


def test_measurement_throughput(benchmark):
    """Full measurements (HMAC over 64 blocks) back to back."""

    def run():
        device = Device(Simulator(), block_count=64, block_size=64)
        config = MeasurementConfig()
        mp = MeasurementProcess(device, config, nonce=b"bench")
        device.cpu.spawn("mp", mp.run, priority=50)
        device.sim.run(until=1000)
        return mp.record is not None

    assert benchmark(run)


def test_full_protocol_throughput(benchmark):
    """One complete on-demand attestation round trip."""
    from repro.ra.service import OnDemandVerifier
    from repro.ra.smart import SmartAttestation
    from repro.ra.verifier import Verifier
    from repro.sim.network import Channel

    def run():
        sim = Simulator()
        device = Device(sim, block_count=32, block_size=32)
        channel = Channel(sim, latency=0.002)
        device.attach_network(channel)
        verifier = Verifier(sim)
        verifier.enroll(device)
        SmartAttestation(device).install()
        driver = OnDemandVerifier(verifier, channel)
        exchange = driver.request(device.name)
        sim.run(until=60)
        return exchange.result.healthy

    assert benchmark(run)
