"""SEC24 -- the in-text timing numbers of Section 2.4.

Anchors: 100 MB ~ 0.9 s, 2 GB ~ 14 s, 1 MB > 0.01 s, and the
MAC-vs-signature cost structure (outer hash negligible, signing cost
flat, "for small memory sizes, signature computation is the main cost
component").
"""

import pytest

from benchmarks.conftest import banner, once
from repro.crypto.timing import OdroidXU4Model
from repro.experiments import sec24_anchors
from repro.units import GiB, KiB, MiB, format_time


def test_sec24_anchor_points(benchmark):
    anchors = once(benchmark, sec24_anchors)
    print(banner("Section 2.4: in-text anchors vs the calibrated model"))
    for anchor in anchors:
        status = "OK " if anchor.holds else "OFF"
        print(
            f"  [{status}] {anchor.description}: "
            f"{format_time(anchor.observed)} "
            f"(paper ~{format_time(anchor.expected)})"
        )
    assert all(anchor.holds for anchor in anchors)


def test_sec24_cost_structure(benchmark):
    model = OdroidXU4Model()

    def build_rows():
        rows = []
        for size in (KiB, 64 * KiB, MiB, 16 * MiB, GiB):
            hash_time = model.hash_time("sha256", size)
            mac_time = model.mac_time("sha256", size)
            signed = model.hash_and_sign_time("rsa2048", size)
            rows.append((size, hash_time, mac_time, signed))
        return rows

    rows = once(benchmark, build_rows)
    print(banner("Section 2.4: cost decomposition (sha256 / rsa2048)"))
    print(f"{'size':>10} {'hash':>12} {'hmac':>12} {'hash+sign':>12}")
    for size, hash_time, mac_time, signed in rows:
        print(
            f"{size:>10} {format_time(hash_time):>12} "
            f"{format_time(mac_time):>12} {format_time(signed):>12}"
        )

    sign = model.sign_time("rsa2048")
    # Small sizes: signing dominates.  Large sizes: hashing dominates.
    small = rows[0]
    assert sign > small[1] * 10
    large = rows[-1]
    assert large[1] > sign * 10
    # The HMAC outer hash is negligible at every size.
    for size, hash_time, mac_time, _ in rows:
        assert (mac_time - hash_time) < 1e-4
