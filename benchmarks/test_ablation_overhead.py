"""ABL-OVERHEAD -- Table 1's "Run-Time Overhead" column, quantified.

The paper grades overhead qualitatively: baseline (SMART), "Low"
(locking: a few MPU syscalls), "High" (SMARM: k independent
measurements), "None" (self-measurement: amortized off the critical
path).  This bench measures all four on one device and checks the
ordering and the magnitudes behind the grades.
"""

import pytest

from benchmarks.conftest import banner, once
from repro.ra.erasmus import ErasmusService
from repro.ra.locking import make_policy
from repro.ra.measurement import MeasurementConfig, MeasurementProcess
from repro.ra.service import AttestationService, OnDemandVerifier
from repro.ra.smarm import SmarmAttestation
from repro.ra.smart import SmartAttestation
from repro.ra.verifier import Verifier
from repro.sim.device import Device
from repro.sim.engine import Simulator
from repro.sim.network import Channel
from repro.units import MiB


def fresh_stack():
    sim = Simulator()
    device = Device(sim, block_count=32, block_size=32,
                    sim_block_size=2 * MiB)
    device.standard_layout()
    channel = Channel(sim, latency=0.002)
    device.attach_network(channel)
    verifier = Verifier(sim)
    verifier.enroll(device)
    driver = OnDemandVerifier(verifier, channel)
    return sim, device, driver


def on_demand_total_time(service_factory, rounds=1):
    """Wall time the prover spends on one attestation request."""
    sim, device, driver = fresh_stack()
    service = service_factory(device)
    service.install()
    exchanges = []
    sim.schedule_at(
        1.0,
        lambda: exchanges.append(driver.request(device.name, rounds)),
    )
    sim.run(until=600)
    report = exchanges[0].report
    first = min(r.t_start for r in report.records)
    last = max(r.t_end for r in report.records)
    return last - first, device


def test_ablation_overhead_grades(benchmark):
    def run_all():
        rows = {}
        smart_time, _ = on_demand_total_time(
            lambda d: SmartAttestation(d)
        )
        rows["smart (baseline)"] = (smart_time, 0)
        for policy in ("all-lock", "dec-lock", "inc-lock"):
            duration, device = on_demand_total_time(
                lambda d, p=policy: AttestationService(
                    d,
                    MeasurementConfig(locking=make_policy(p),
                                      priority=50),
                    mechanism=p,
                )
            )
            rows[policy] = (
                duration, device.mpu.lock_ops + device.mpu.unlock_ops
            )
        smarm_time, _ = on_demand_total_time(
            lambda d: SmarmAttestation(d, rounds=13), rounds=13
        )
        rows["smarm x13"] = (smarm_time, 0)

        # Self-measurement: overhead *on the request path* is zero; the
        # verifier only collects precomputed results.
        sim = Simulator()
        device = Device(sim, block_count=32, block_size=32,
                        sim_block_size=2 * MiB)
        device.standard_layout()
        channel = Channel(sim, latency=0.002)
        device.attach_network(channel)
        verifier = Verifier(sim)
        verifier.enroll(device)
        from repro.ra.erasmus import CollectorVerifier

        service = ErasmusService(
            device, period=3.0,
            config=MeasurementConfig(atomic=True, priority=50),
        )
        service.start()
        collector = CollectorVerifier(verifier, channel)
        request_at = 10.0
        done_at = []
        sim.schedule_at(
            request_at,
            lambda: collector.collect(
                device.name,
                lambda c: done_at.append(c.collected_at),
            ),
        )
        sim.run(until=30)
        rows["erasmus collect"] = (done_at[0] - request_at, 0)
        return rows

    rows = once(benchmark, run_all)
    print(banner("ABL-OVERHEAD: Table 1's run-time overhead column"))
    print(f"{'mechanism':<18} {'prover time [s]':>16} {'MPU ops':>8}")
    for name, (duration, ops) in rows.items():
        print(f"{name:<18} {duration:>16.4f} {ops:>8}")

    baseline = rows["smart (baseline)"][0]
    # "Low": locking adds under 10% to the baseline measurement.
    for policy in ("all-lock", "dec-lock", "inc-lock"):
        duration, ops = rows[policy]
        assert duration < baseline * 1.10
        assert ops > 0
    # "High": 13 SMARM rounds cost an order of magnitude more.
    assert rows["smarm x13"][0] > 10 * baseline
    # "None": collection answers from storage, orders of magnitude
    # below a fresh measurement (network + MAC only).
    assert rows["erasmus collect"][0] < baseline / 10
