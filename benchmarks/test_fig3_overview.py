"""FIG3 -- the solution landscape overview (Figure 3).

Structural artifact: the taxonomy tree plus the transcription of
Table 1, checked for completeness against the mechanisms the library
actually implements.
"""

from benchmarks.conftest import banner, once
from repro.core.solution import SOLUTIONS
from repro.core.tradeoff import standard_mechanisms
from repro.experiments import fig3_overview


def test_fig3_overview(benchmark):
    result = once(benchmark, fig3_overview)
    print(banner("Figure 3: overview of potential solutions"))
    print(result.render())

    # Every taxonomy leaf family is implemented and evaluable.
    for token in ("All-Lock", "Dec-Lock", "Inc-Lock", "SMARM",
                  "ERASMUS", "SeED", "TyTAN"):
        assert token in result.tree
    # Every Table 1 row with a mechanism key is runnable by the
    # evaluation harness.
    runnable = set(standard_mechanisms())
    for solution in SOLUTIONS:
        if solution.mechanism_key:
            assert solution.mechanism_key in runnable
