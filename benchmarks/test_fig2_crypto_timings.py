"""FIG2 -- hash and signature timings (Figure 2).

Two halves:

* the *model* series -- the ten Figure 2 curves from the calibrated
  ODROID-XU4 cost model, with the paper's anchor numbers and the
  hash-vs-signature crossover asserted;
* *functional* micro-benchmarks -- the actual from-scratch HMAC, RSA
  and ECDSA implementations timed on this host with pytest-benchmark,
  demonstrating the same qualitative ordering (hashing linear in size,
  signatures flat, RSA sign growing steeply with key size).
"""

import pytest

from benchmarks.conftest import banner, once
from repro.crypto.ecdsa import ecdsa_generate, ecdsa_sign, ecdsa_verify
from repro.crypto.hmac import hmac_digest
from repro.crypto.rsa import rsa_generate, rsa_sign
from repro.experiments import fig2_report
from repro.units import GiB, MiB


def test_fig2_model_series(benchmark):
    result = once(benchmark, fig2_report, points_per_decade=1)
    print(banner("Figure 2: MP timings on the ODROID-XU4 model"))
    print(result.render())

    assert all(anchor.holds for anchor in result.anchors)
    # The crossover claim: above ~1 MB, most signatures are noise.
    sha_crossovers = [
        size
        for (hash_name, signature), size in result.crossovers.items()
        if hash_name == "sha256"
    ]
    assert sum(1 for size in sha_crossovers if size < 4 * MiB) >= 4
    # 2 GiB hashing in the 10-20 s band for every hash ("nearly 14 sec").
    for name in ("sha256", "sha512", "blake2b", "blake2s"):
        final = dict(result.series[name])[2 * GiB]
        assert 10.0 < final < 35.0


class TestFunctionalCrypto:
    """Real primitives, real bytes, host-machine time."""

    def test_hmac_sha256_1mib(self, benchmark):
        data = b"\xA5" * MiB
        digest = benchmark(hmac_digest, b"key", data, "sha256")
        assert len(digest) == 32

    def test_hmac_blake2s_1mib(self, benchmark):
        data = b"\xA5" * MiB
        digest = benchmark(hmac_digest, b"key", data, "blake2s")
        assert len(digest) == 32

    def test_rsa1024_sign(self, benchmark):
        key = rsa_generate(1024, seed=b"bench-1024")
        signature = benchmark(rsa_sign, key.private, b"report digest")
        assert len(signature) == 128

    def test_rsa2048_sign(self, benchmark):
        key = rsa_generate(2048, seed=b"bench-2048")
        signature = benchmark(rsa_sign, key.private, b"report digest")
        assert len(signature) == 256

    def test_ecdsa256_sign(self, benchmark):
        key = ecdsa_generate("secp256r1", seed=b"bench")
        signature = benchmark(ecdsa_sign, key, b"report digest")
        assert ecdsa_verify(key, b"report digest", signature)

    def test_ecdsa160_sign(self, benchmark):
        key = ecdsa_generate("secp160r1", seed=b"bench")
        signature = benchmark(ecdsa_sign, key, b"report digest")
        assert ecdsa_verify(key, b"report digest", signature)
