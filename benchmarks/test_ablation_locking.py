"""ABL-LOCK -- locking ablations (Section 3.1 design choices).

Two design choices the paper calls out, quantified:

1. lock granularity: coarser blocks mean fewer MPU syscalls but longer
   per-block lock holds -- availability damage vs overhead;
2. traversal order under Inc-Lock: "it is beneficial to end the
   computation of F with blocks that require high availability, since
   they are locked for the shortest time".
"""

import pytest

from benchmarks.conftest import banner, once
from repro.analysis.locking_math import lock_exposure
from repro.ra.locking import make_policy
from repro.ra.measurement import MeasurementConfig, MeasurementProcess
from repro.sim.device import Device
from repro.sim.engine import Simulator
from repro.sim.task import PeriodicTask, write_with_retry
from repro.units import MiB


def run_hot_block_delay(policy_name, hot_position, block_count=16):
    """Worst observed write delay to one 'hot' block under a policy.

    The hot block sits at traversal position ``hot_position``; a
    high-priority writer hammers it throughout the measurement.
    """
    sim = Simulator()
    device = Device(sim, block_count=block_count, block_size=32,
                    sim_block_size=2 * MiB)
    per_block = device.block_measure_time("blake2s")
    duration = per_block * block_count

    worst = [0.0]

    def job(proc, task, index):
        from repro.sim.process import Compute

        yield Compute(1e-6)
        released = sim.now
        yield from write_with_retry(
            proc, device.memory, hot_position, b"\x31" * 32, "hot",
            record=task.jobs[-1],
        )
        delay = sim.now - released
        if delay > worst[0]:
            worst[0] = delay

    PeriodicTask(device.cpu, "hot-writer", period=duration / 24,
                 wcet=1e-6, priority=100, job=job)
    config = MeasurementConfig(
        locking=make_policy(policy_name), priority=50,
    )
    mp = MeasurementProcess(device, config, nonce=b"n")
    sim.schedule_at(0.5, lambda: device.cpu.spawn("mp", mp.run,
                                                  priority=50))
    sim.run(until=0.5 + duration * 3)
    return worst[0], duration


def test_ablation_inc_lock_traversal_order(benchmark):
    """Inc-Lock: a hot block measured LAST is locked briefly; measured
    FIRST it stays locked for the whole tail of the measurement."""

    def run_both():
        early, duration = run_hot_block_delay("inc-lock", hot_position=0)
        late, _ = run_hot_block_delay("inc-lock", hot_position=15)
        return early, late, duration

    early, late, duration = once(benchmark, run_both)
    print(banner("ABL-LOCK: Inc-Lock hot-block placement"))
    print(f"  hot block measured first: worst write delay {early:.4f}s")
    print(f"  hot block measured last : worst write delay {late:.4f}s")
    print(f"  (measurement duration {duration:.4f}s)")
    assert late < early / 3
    # The closed form predicts the same ordering.
    assert lock_exposure("inc-lock", 16, 15, 1.0) < lock_exposure(
        "inc-lock", 16, 0, 1.0
    )


def test_ablation_dec_lock_mirror(benchmark):
    """Dec-Lock mirrors Inc-Lock: hot blocks should be measured FIRST
    (released soonest)."""

    def run_both():
        early, _ = run_hot_block_delay("dec-lock", hot_position=0)
        late, _ = run_hot_block_delay("dec-lock", hot_position=15)
        return early, late

    early, late = once(benchmark, run_both)
    print(banner("ABL-LOCK: Dec-Lock hot-block placement"))
    print(f"  hot block measured first: worst write delay {early:.4f}s")
    print(f"  hot block measured last : worst write delay {late:.4f}s")
    assert early < late / 3


def test_ablation_lock_granularity(benchmark):
    """Same memory, varying block size: lock-op overhead falls with
    coarser blocks while worst-case write delay rises."""

    def sweep():
        rows = []
        total_sim = 32 * MiB
        for block_count in (8, 16, 32, 64):
            sim = Simulator()
            device = Device(
                sim, block_count=block_count, block_size=32,
                sim_block_size=total_sim // block_count,
            )
            config = MeasurementConfig(
                locking=make_policy("dec-lock"), priority=50,
            )
            mp = MeasurementProcess(device, config, nonce=b"n")
            sim.schedule_at(
                0.1, lambda d=device, m=mp: d.cpu.spawn(
                    "mp", m.run, priority=50
                )
            )
            sim.run(until=30)
            min_hold = min(
                interval.duration for interval in device.mpu.lock_history
            )
            rows.append(
                (block_count, device.mpu.lock_ops + device.mpu.unlock_ops,
                 min_hold, mp.record.duration)
            )
        return rows

    rows = once(benchmark, sweep)
    print(banner("ABL-LOCK: granularity sweep (32 MiB, dec-lock)"))
    print(f"{'blocks':>7} {'mpu ops':>8} {'min hold[s]':>12} {'MP[s]':>8}")
    for block_count, ops, min_hold, duration in rows:
        print(f"{block_count:>7} {ops:>8} {min_hold:>12.4f} "
              f"{duration:>8.4f}")
    ops_list = [ops for _, ops, _, _ in rows]
    min_holds = [hold for _, _, hold, _ in rows]
    # Finer blocks cost more MPU syscalls...
    assert ops_list == sorted(ops_list)
    # ...but release the earliest data sooner: the first block's hold
    # is one block-measurement, T/n, shrinking with granularity.  (The
    # *last* block is pinned until t_e under Dec-Lock regardless -- the
    # mean exposure is granularity-invariant, which is itself worth
    # knowing and is covered by the closed forms.)
    assert min_holds == sorted(min_holds, reverse=True)
    assert min_holds[-1] < min_holds[0] / 4
