"""ABL-QOA -- self-measurement ablations (Section 3.3).

1. T_M sweep vs transient-malware detection probability (closed form
   against full ERASMUS simulation);
2. the scheduling compromise: fixed-period vs context-aware vs
   slack-fitting self-measurement against a critical task -- deadline
   misses traded against measurement-schedule drift.
"""

import pytest

from benchmarks.conftest import banner, once
from repro.analysis.qoa_math import detection_probability
from repro.core.scheduler_policy import ContextAwareSchedule, SlackSchedule
from repro.malware.transient import TransientMalware
from repro.ra.erasmus import CollectorVerifier, ErasmusService
from repro.ra.measurement import MeasurementConfig
from repro.ra.report import Verdict
from repro.ra.verifier import Verifier
from repro.sim.device import Device
from repro.sim.engine import Simulator
from repro.sim.network import Channel
from repro.sim.task import PeriodicTask
from repro.units import MiB


def run_erasmus_detection(t_m, dwell, phase, horizon=40.0):
    """One ERASMUS run with a transient infection of given dwell/phase;
    returns True if the final collection flags it."""
    sim = Simulator()
    device = Device(sim, block_count=8, block_size=32)
    device.standard_layout()
    channel = Channel(sim, latency=0.002)
    device.attach_network(channel)
    verifier = Verifier(sim)
    verifier.enroll(device)
    service = ErasmusService(
        device, period=t_m,
        config=MeasurementConfig(atomic=True, priority=50,
                                 normalize_mutable=True),
        history_size=256,
    )
    service.start()
    collector = CollectorVerifier(verifier, channel)
    infect_at = 5 * t_m + phase
    TransientMalware(device, target_block=2, infect_at=infect_at,
                     leave_at=infect_at + dwell)
    sim.schedule_at(horizon - 1.0, collector.collect, device.name)
    sim.run(until=horizon)
    collection = collector.collections[0]
    return collection.result.verdict is Verdict.COMPROMISED


def test_ablation_tm_sweep(benchmark):
    """Detection probability tracks dwell/T_M (Figure 5's knob)."""
    dwell = 2.0

    def sweep():
        rows = []
        for t_m in (1.0, 2.0, 4.0, 8.0):
            phases = [t_m * (k + 0.5) / 8 for k in range(8)]
            detected = sum(
                run_erasmus_detection(t_m, dwell, phase,
                                      horizon=12 * t_m + 10)
                for phase in phases
            )
            rows.append((t_m, detected / len(phases),
                         detection_probability(dwell, t_m)))
        return rows

    rows = once(benchmark, sweep)
    print(banner("ABL-QOA: T_M vs detection of a 2 s transient"))
    print(f"{'T_M':>6} {'simulated':>10} {'closed form':>12}")
    for t_m, simulated, closed in rows:
        print(f"{t_m:>6.1f} {simulated:>10.2f} {closed:>12.2f}")
    for t_m, simulated, closed in rows:
        assert simulated == pytest.approx(closed, abs=0.3)
    # Monotone: faster measurement, better detection.
    simulated_rates = [s for _, s, _ in rows]
    assert simulated_rates[0] >= simulated_rates[-1]
    assert simulated_rates[0] == 1.0  # dwell 2 s vs T_M 1 s: certain


def run_scheduler_ablation(policy_name, mp_seconds=0.22):
    sim = Simulator()
    device = Device(sim, block_count=8, block_size=32,
                    sim_block_size=4 * MiB)
    device.standard_layout()
    critical = PeriodicTask(device.cpu, "crit", period=0.5, wcet=0.01,
                            priority=100)
    if policy_name == "fixed":
        policy = None
    elif policy_name == "context-aware":
        policy = ContextAwareSchedule(critical, guard=mp_seconds)
    else:
        policy = SlackSchedule(critical, measurement_time=mp_seconds)
    service = ErasmusService(
        device, period=1.0,
        config=MeasurementConfig(atomic=True, priority=50),
        scheduler=policy,
    )
    service.start()
    sim.run(until=20.0)
    stats = critical.stats()
    drift = 0.0
    for index, record in enumerate(service.history):
        drift = max(drift, record.t_start - index * 1.0)
    return stats, drift, service.measurements_done


def test_ablation_scheduling_policies(benchmark):
    """The Section 3.3 compromise: context-aware scheduling eliminates
    the availability damage of atomic self-measurement at the price of
    bounded schedule drift."""

    def sweep():
        return {
            name: run_scheduler_ablation(name)
            for name in ("fixed", "context-aware", "slack")
        }

    results = once(benchmark, sweep)
    print(banner("ABL-QOA: self-measurement scheduling policies"))
    print(f"{'policy':<15} {'misses':>7} {'worst resp[ms]':>15} "
          f"{'drift[s]':>9} {'measurements':>13}")
    for name, (stats, drift, count) in results.items():
        print(
            f"{name:<15} {stats.deadline_misses:>7} "
            f"{stats.worst_response * 1e3:>15.1f} {drift:>9.3f} "
            f"{count:>13}"
        )
    fixed_stats, _, fixed_count = results["fixed"]
    for aware in ("context-aware", "slack"):
        aware_stats, drift, count = results[aware]
        assert aware_stats.worst_response < fixed_stats.worst_response
        assert aware_stats.deadline_misses == 0
        assert drift < 1.0  # bounded deferral
        assert count >= fixed_count - 2  # QoA essentially preserved
    # The fixed policy actually hurts the task.
    assert fixed_stats.worst_response > 0.1
