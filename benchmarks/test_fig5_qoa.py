"""FIG5 -- Quality of Attestation timeline (Figure 5).

Reproduces the figure's two-infection story -- a short residency
slipping between self-measurements (undetected) and a longer one
spanning a measurement (detected at the next collection) -- both
analytically and with a real ERASMUS prover run.
"""

import pytest

from benchmarks.conftest import banner, once
from repro.experiments import fig5_qoa


def test_fig5_qoa(benchmark):
    result = once(benchmark, fig5_qoa, t_m=4.0, t_c=16.0, horizon=36.0)
    print(banner("Figure 5: QoA -- measurements (T_M) vs collections (T_C)"))
    print(result.render())

    outcomes = {o.infection.label: o for o in result.timeline.outcomes}
    assert not outcomes["infection 1"].detected
    assert outcomes["infection 2"].detected
    # The full-stack ERASMUS run agrees with the analytic timeline.
    assert result.sim_detected == {
        "infection 1": False,
        "infection 2": True,
    }
    # Detection latency decomposes into measurement + collection waits.
    caught = outcomes["infection 2"]
    assert caught.detection_latency is not None
    assert caught.detection_latency <= (
        result.params.worst_detection_latency + result.params.t_m
    )


def test_fig5_on_demand_conflation(benchmark):
    """Figure 5's premise: on-demand RA conjoins the two QoA knobs;
    decoupling them lets T_M shrink without touching Vrf load."""
    from repro.core.qoa import QoAParameters, on_demand_equivalent

    def compare():
        on_demand = on_demand_equivalent(16.0)
        erasmus = QoAParameters(t_m=4.0, t_c=16.0)
        return on_demand, erasmus

    on_demand, erasmus = once(benchmark, compare)
    dwell = 6.0
    print(banner("QoA comparison for a 6 s transient residency"))
    print(
        f"  on-demand every 16 s : P(detect) = "
        f"{on_demand.detection_probability(dwell):.2f}"
    )
    print(
        f"  ERASMUS T_M=4, T_C=16: P(detect) = "
        f"{erasmus.detection_probability(dwell):.2f}"
    )
    assert on_demand.detection_probability(dwell) == pytest.approx(0.375)
    assert erasmus.detection_probability(dwell) == 1.0
