"""FIG1 -- the on-demand RA timeline (Figure 1).

Regenerates the event sequence of Figure 1 (request, deferred start,
t_s, t_e, report, verification) from a full protocol run and asserts
its ordering and the deferral the caption describes.
"""

import pytest

from benchmarks.conftest import banner, once
from repro.experiments import fig1_timeline


def test_fig1_timeline(benchmark):
    result = once(benchmark, fig1_timeline, memory_mib=64, deferral=0.05)
    print(banner("Figure 1: timeline for an on-demand RA scheme"))
    print(result.render())

    # Shape claims: strict event ordering, MP dominates the round trip.
    assert (
        result.request_sent
        < result.request_received
        <= result.t_s
        < result.t_e
        < result.report_received
        < result.verified
    )
    mp_time = result.t_e - result.t_s
    network_time = (result.request_received - result.request_sent) + (
        result.report_received - result.t_e
    )
    assert mp_time > network_time
    assert result.verdict == "healthy"


def test_fig1_deferral_sweep(benchmark):
    """The caption: MP 'may be deferred on Prv due to networking
    delays, Vrf's request authentication, or termination of the
    previously running task' -- t_s tracks the deferral linearly."""

    def sweep():
        return [
            (deferral, fig1_timeline(memory_mib=16, deferral=deferral))
            for deferral in (0.0, 0.05, 0.2)
        ]

    rows = once(benchmark, sweep)
    print(banner("Figure 1 sweep: request deferral vs t_s"))
    for deferral, result in rows:
        print(
            f"  deferral={deferral * 1e3:6.1f}ms  "
            f"t_s={result.t_s:.4f}s  round_trip="
            f"{result.verified - result.request_sent:.4f}s"
        )
    baseline = rows[0][1].t_s
    for deferral, result in rows[1:]:
        assert result.t_s - baseline == pytest.approx(deferral, abs=0.01)
