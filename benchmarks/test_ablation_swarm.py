"""ABL-SWARM -- collective attestation trades (Section 2.1 extension).

"it is beneficial to take advantage of interconnectivity and perform
collective attestation using a dedicated protocol": quantified against
the naive alternative (the verifier challenges every device
point-to-point through the mesh), plus the LISA-alpha vs aggregated
QoSA/traffic trade.
"""

import pytest

from benchmarks.conftest import banner, once
from repro.ra.service import OnDemandVerifier
from repro.ra.smart import SmartAttestation
from repro.ra.verifier import Verifier
from repro.sim.engine import Simulator
from repro.swarm import (
    LisaAlphaAttestation,
    SwarmAttestation,
    make_topology,
)


def hop_traffic(topology):
    """Total link crossings: each logged message weighted by its hop
    distance (the mesh's real radio/energy cost)."""
    total = 0
    for message in topology.channel.log:
        def index_of(name):
            try:
                return topology.device_index(name)
            except Exception:
                return 0  # external verifier sits at the root
        total += max(
            1, topology.hop_distance(index_of(message.src),
                                     index_of(message.dst))
        )
    return total


def run_collective(count, shape="tree"):
    sim = Simulator()
    topology = make_topology(sim, count=count, shape=shape)
    verifier = Verifier(sim)
    swarm = SwarmAttestation(topology, verifier)
    nonce = swarm.attest()
    sim.run(until=300)
    result = swarm.result_for(nonce)
    assert result is not None and result.all_healthy
    return result.completed_at, hop_traffic(topology), 1


def run_lisa(count, shape="tree"):
    sim = Simulator()
    topology = make_topology(sim, count=count, shape=shape)
    verifier = Verifier(sim)
    lisa = LisaAlphaAttestation(topology, verifier)
    nonce = lisa.attest()
    sim.run(until=300)
    result = lisa.result_for(nonce)
    assert result.complete
    return result.completed_at, hop_traffic(topology), count


def run_naive(count, shape="tree"):
    """Point-to-point: the verifier (attached at the root) challenges
    every device individually over the multi-hop channel."""
    sim = Simulator()
    topology = make_topology(sim, count=count, shape=shape)
    verifier = Verifier(sim)
    for device in topology.devices:
        verifier.enroll(device)
        SmartAttestation(device).install()
    driver = OnDemandVerifier(verifier, topology.channel,
                              endpoint_name="naive-vrf")
    exchanges = [driver.request(d.name) for d in topology.devices]
    sim.run(until=600)
    assert all(
        e.result is not None and e.result.healthy for e in exchanges
    )
    finished = max(e.result.verified_at for e in exchanges)
    return finished, hop_traffic(topology), count


def test_ablation_swarm_scaling(benchmark):
    def sweep():
        rows = []
        for count in (7, 15, 31):
            rows.append(
                (count, run_collective(count), run_lisa(count),
                 run_naive(count))
            )
        return rows

    rows = once(benchmark, sweep)
    print(banner("ABL-SWARM: protocol scaling on binary trees"))
    print(
        f"{'n':>4} | {'aggregated':^22} | {'lisa-alpha':^22} | "
        f"{'naive p2p':^22}"
    )
    print(
        f"{'':>4} | {'time':>7} {'hops':>6} {'vrfy':>5} |"
        f" {'time':>7} {'hops':>6} {'vrfy':>5} |"
        f" {'time':>7} {'hops':>6} {'vrfy':>5}"
    )
    for count, agg, lisa, naive in rows:
        cells = " | ".join(
            f"{t:>7.3f} {hops:>6} {verifs:>5}"
            for t, hops, verifs in (agg, lisa, naive)
        )
        print(f"{count:>4} | {cells}")

    for count, agg, lisa, naive in rows:
        # Hop-weighted traffic: aggregation crosses each tree edge
        # about twice; LISA-alpha additionally forwards every report
        # up; naive pays round trips from the sink to every device.
        assert agg[1] < lisa[1] <= naive[1] + count
        # Verifier-side load: 1 aggregate check vs n report checks.
        assert agg[2] == 1 and naive[2] == count
    # Aggregated traffic is ~linear in n; naive grows faster
    # (sum of depths), so the gap widens with scale.
    gap_small = rows[0][3][1] / rows[0][1][1]
    gap_large = rows[-1][3][1] / rows[-1][1][1]
    assert gap_large > gap_small


def test_ablation_swarm_topology_shapes(benchmark):
    def sweep():
        return {
            shape: run_collective(15, shape=shape)
            for shape in ("star", "tree", "line")
        }

    results = once(benchmark, sweep)
    print(banner("ABL-SWARM: topology shape, 15 nodes, aggregated"))
    for shape, (finish, hops, _verifs) in results.items():
        print(f"  {shape:<6} finished at {finish:7.3f}s, "
              f"{hops} link crossings")
    # Line: depth 14 -> slowest.  Star: depth 1 -> fastest.
    assert results["star"][0] < results["tree"][0] < results["line"][0]
