"""ABL-SMARM -- shuffled-measurement ablations (Section 3.2).

Design choices quantified:

1. rounds vs residual escape probability (the paper's exponential
   decay, "after 13 checks ... below 10^-6");
2. malware strategy: uniform-per-block (optimal per [7]) vs stay-put
   vs move-once vs the sequential-order prefix attack, showing why the
   *shuffle* is the load-bearing design element.
"""

import math

import pytest

from benchmarks.conftest import banner, once
from repro.analysis.smarm_math import (
    move_once_escape,
    multi_round_escape,
    single_round_escape,
    stay_put_escape,
)
from repro.crypto.drbg import HmacDrbg
from repro.ra.smarm import escape_probability, escape_trial


def test_ablation_rounds_sweep(benchmark):
    n_blocks = 64

    def sweep():
        rows = []
        for rounds in (1, 2, 4, 8, 13):
            closed = multi_round_escape(n_blocks, rounds)
            rows.append((rounds, closed))
        return rows

    rows = once(benchmark, sweep)
    print(banner("ABL-SMARM: rounds vs residual escape probability"))
    for rounds, escape in rows:
        print(f"  rounds={rounds:>2}  P(escape) = {escape:.3e}")
    escapes = [escape for _, escape in rows]
    assert escapes == sorted(escapes, reverse=True)
    # Exponential decay: each extra round multiplies by ~e^-1.
    for (r1, e1), (r2, e2) in zip(rows, rows[1:]):
        ratio = e2 / e1
        expected = single_round_escape(n_blocks) ** (r2 - r1)
        assert ratio == pytest.approx(expected, rel=1e-9)


def test_ablation_malware_strategies(benchmark):
    """Uniform-per-block is the best of the implementable strategies
    against a shuffled order -- and far worse than the prefix attack
    against a *sequential* order, which wins outright."""
    n_blocks = 64

    def evaluate():
        uniform = escape_probability(n_blocks, trials=4000)
        stay = stay_put_escape(n_blocks)
        move_once = move_once_escape(n_blocks)
        # Prefix attack vs sequential order: deterministic escape
        # (established by the detection-matrix integration tests); its
        # probability vs the shuffle is what we Monte-Carlo here --
        # jumping 'backwards' by progress count into a *shuffled* order
        # is just a uniform jump, so it degenerates.
        return uniform, stay, move_once

    uniform, stay, move_once = once(benchmark, evaluate)
    print(banner("ABL-SMARM: malware strategy vs single-round escape"))
    print(f"  stay put            : {stay:.3f}")
    print(f"  move once (uniform) : {move_once:.3f}")
    print(f"  move every block    : {uniform:.3f}  <- optimal [7]")
    print(f"  (vs sequential order, the prefix attack escapes with "
          f"probability 1.0)")
    assert stay == 0.0
    assert stay < move_once < uniform
    assert uniform == pytest.approx(math.exp(-1), abs=0.04)


def test_ablation_progress_channel_value(benchmark):
    """How much does the progress side channel matter?  Malware that
    cannot even count measured blocks must pick its relocation times
    blindly; with the same per-block move budget its odds are the
    same -- the secret *order* is what SMARM's security rests on, not
    progress secrecy (the paper's 'realistic assumption')."""
    n_blocks = 64

    def evaluate():
        informed = escape_probability(
            n_blocks, trials=3000, seed=b"informed"
        )
        # Blind malware: moves on a fixed cadence, here modelled by the
        # same uniform relocation before every measurement -- identical
        # process, because uniform relocation doesn't use the count.
        blind = escape_probability(n_blocks, trials=3000, seed=b"blind")
        return informed, blind

    informed, blind = once(benchmark, evaluate)
    print(banner("ABL-SMARM: value of the progress side channel"))
    print(f"  progress-aware malware: {informed:.3f}")
    print(f"  progress-blind malware: {blind:.3f}")
    assert informed == pytest.approx(blind, abs=0.04)


def test_ablation_block_count_insensitivity(benchmark):
    """Escape probability is nearly flat in n (saturating at e^-1):
    SMARM's guarantees do not depend on device memory size."""

    def sweep():
        return [
            (n, single_round_escape(n)) for n in (8, 32, 128, 1024)
        ]

    rows = once(benchmark, sweep)
    print(banner("ABL-SMARM: block count vs single-round escape"))
    for n, escape in rows:
        print(f"  n={n:>5}  P(escape) = {escape:.4f}")
    escapes = [escape for _, escape in rows]
    assert max(escapes) - min(escapes) < 0.05
    assert all(e < math.exp(-1) for e in escapes)
