"""ReferenceStore + batched miss path: byte identity and sharing.

The cold-path layer is pure memoization: every byte and every audit
hash the store hands out must equal what the uncached generators
produce, the interned image must actually be *shared* (one copy per
process, not per device), and none of it may leak across ``seed`` /
``block_size`` or show up in simulated time.  The golden tests here
focus on the cache-miss fill specifically -- the hit path is pinned by
``tests/test_perf_cache.py``.
"""

import tracemalloc

import pytest

from repro.core.tradeoff import ScenarioConfig
from repro.errors import ConfigurationError
from repro.perf.digest_cache import DigestCache
from repro.perf.reference_store import (
    AUDIT_LEN,
    ReferenceStore,
    raw_benign_fill,
    set_reference_store,
)
from repro.ra.measurement import MeasurementConfig, MeasurementProcess
from repro.scenario import Scenario
from repro.sim.device import Device
from repro.sim.engine import Simulator
from repro.sim.memory import (
    FINGERPRINT_LEN,
    Memory,
    benign_fill,
    content_fingerprint,
)


@pytest.fixture
def fresh_store():
    """Swap in an empty process store; restore the global afterwards."""
    store = ReferenceStore()
    previous = set_reference_store(store)
    try:
        yield store
    finally:
        set_reference_store(previous)


# -- interning is pure memoization ----------------------------------------


class TestByteIdentity:
    def test_block_matches_raw_generator(self, fresh_store):
        for index in (0, 1, 7):
            assert fresh_store.block(index, 64, seed=7) == \
                raw_benign_fill(index, 64, 7)

    def test_benign_fill_is_memoized_raw(self, fresh_store):
        first = benign_fill(3, 32, seed=9)
        assert first == raw_benign_fill(3, 32, 9)
        # second call returns the interned object itself
        assert benign_fill(3, 32, seed=9) is first

    def test_audit_matches_content_fingerprint(self, fresh_store):
        image = fresh_store.image(7, 64)
        for index in range(4):
            assert image.audit(index) == \
                content_fingerprint(image.block(index))

    def test_audit_len_matches_memory_fingerprint_len(self):
        # the import direction (sim.memory -> perf.reference_store)
        # forbids sharing the constant; pin the equality instead
        assert AUDIT_LEN == FINGERPRINT_LEN


# -- isolation and bounding -----------------------------------------------


class TestIsolation:
    def test_no_leak_across_seed(self, fresh_store):
        assert fresh_store.block(0, 64, seed=1) != \
            fresh_store.block(0, 64, seed=2)
        assert fresh_store.block(0, 64, seed=1) == raw_benign_fill(0, 64, 1)
        assert fresh_store.block(0, 64, seed=2) == raw_benign_fill(0, 64, 2)

    def test_no_leak_across_block_size(self, fresh_store):
        # interning at one block_size must not truncate/extend answers
        # for the other: each equals its own raw generation
        small = fresh_store.block(0, 32, seed=7)
        large = fresh_store.block(0, 64, seed=7)
        assert len(small) == 32 and len(large) == 64
        assert small == raw_benign_fill(0, 32, 7)
        assert large == raw_benign_fill(0, 64, 7)

    def test_images_keyed_per_seed_and_size(self, fresh_store):
        a = fresh_store.image(1, 32)
        b = fresh_store.image(2, 32)
        c = fresh_store.image(1, 64)
        assert a is not b and a is not c
        assert fresh_store.image(1, 32) is a

    def test_lru_eviction_at_image_granularity(self):
        store = ReferenceStore(capacity=2)
        store.image(1, 32)
        store.image(2, 32)
        store.image(1, 32)  # refresh; (2, 32) is now LRU
        store.image(3, 32)
        assert store.evictions == 1
        assert store.stats()["images"] == 2
        # the evicted image regenerates correctly on re-request
        assert store.block(0, 32, seed=2) == raw_benign_fill(0, 32, 2)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ReferenceStore(capacity=0)


# -- cross-device sharing -------------------------------------------------


class TestSharing:
    def make_memory(self, seed=7):
        return Memory(16, block_size=64, seed=seed)

    def test_devices_share_one_interned_tuple(self, fresh_store):
        first, second = self.make_memory(), self.make_memory()
        assert first.reference_blocks() is second.reference_blocks()
        for index in range(16):
            assert first.benign_block(index) is second.benign_block(index)
            # pristine reads alias the interned bytes: zero-copy and
            # identity-comparable against the reference
            assert first.read_block(index) is second.read_block(index)

    def test_write_unshares_only_the_written_block(self, fresh_store):
        memory = self.make_memory()
        other = self.make_memory()
        memory.write(3, b"\xaa" * 64, actor="test")
        assert memory.read_block(3) != other.read_block(3)
        assert memory.read_block(4) is other.read_block(4)
        # the interned reference is untouched by the device write
        assert other.read_block(3) == raw_benign_fill(3, 64, 7)

    def test_n_devices_one_reference_image_tracemalloc(self, fresh_store):
        image_bytes = 128 * 128
        self.warm = Memory(128, block_size=128, seed=11)  # warm the store
        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot()
            memories = [
                Memory(128, block_size=128, seed=11) for _ in range(8)
            ]
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        grown = sum(
            stat.size_diff
            for stat in after.compare_to(before, "filename")
            if stat.traceback[0].filename.endswith("reference_store.py")
        )
        # regenerating per device would allocate >= 8 images inside
        # reference_store.py; sharing allocates none of them
        assert grown < image_bytes // 2
        assert all(
            memory.reference_blocks() is memories[0].reference_blocks()
            for memory in memories
        )


# -- golden equality of the batched miss path -----------------------------


def run_measurement(device, config=None, until=100.0):
    config = config or MeasurementConfig()
    mp = MeasurementProcess(device, config, nonce=b"n", counter=1,
                            mechanism="test")
    device.cpu.spawn("mp", mp.run, priority=config.priority)
    device.sim.run(until=until)
    assert mp.record is not None
    return mp.record


def make_device(cache, block_count=24, **kw):
    sim = Simulator()
    return Device(sim, block_count=block_count, block_size=32,
                  digest_cache=DigestCache() if cache else None, **kw)


class TestMissPathGolden:
    """All-miss traversals take the batched miss path (cache on) vs the
    generic event-per-block path (cache off / seed path); everything
    observable must be byte-identical."""

    def test_cold_traversal_identical_to_seed_path(self):
        off = make_device(cache=False)
        on = make_device(cache=True)
        rec_off = run_measurement(off)
        rec_on = run_measurement(on)
        assert off.trace.render() == on.trace.render()
        assert rec_off.digest == rec_on.digest
        assert rec_off.audit_block_hashes == rec_on.audit_block_hashes
        assert rec_off.audit_block_times == rec_on.audit_block_times
        stats = on.digest_cache.stats()
        assert stats["misses"] == on.block_count and stats["hits"] == 0

    def test_dirty_blocks_do_not_reuse_benign_audit(self):
        results = {}
        for cache in (False, True):
            device = make_device(cache=cache)
            device.memory.write(5, b"\xee" * 32, actor="malware")
            results[cache] = (run_measurement(device), device)
        rec_off, rec_on = results[False][0], results[True][0]
        assert rec_off.audit_block_hashes == rec_on.audit_block_hashes
        assert rec_off.digest == rec_on.digest
        dirty = results[True][1].memory
        # the dirty block's audit is of the *measured* content, not the
        # interned reference
        assert rec_on.audit_block_hashes[5] == \
            content_fingerprint(dirty.read_block(5))
        assert rec_on.audit_block_hashes[5] != dirty.benign_audit(5)

    def test_shuffled_order_identical(self):
        config = MeasurementConfig(order="shuffled")
        off = make_device(cache=False)
        on = make_device(cache=True)
        rec_off = run_measurement(off, config)
        rec_on = run_measurement(on, config)
        assert off.trace.render() == on.trace.render()
        assert rec_off.digest == rec_on.digest

    def test_second_traversal_after_reset_refills(self):
        def run_twice(cache):
            device = make_device(cache=cache)
            first = run_measurement(device, until=100.0)
            device.reset()
            second = run_measurement(device, until=300.0)
            return device, first, second

        off_dev, off1, off2 = run_twice(False)
        on_dev, on1, on2 = run_twice(True)
        assert off_dev.trace.render() == on_dev.trace.render()
        assert (off1.digest, off2.digest) == (on1.digest, on2.digest)
        # reset orphaned every entry: the second traversal is all-miss
        stats = on_dev.digest_cache.stats()
        assert stats["misses"] == 2 * on_dev.block_count
        assert stats["invalidations"] == 1

    def test_store_state_never_leaks_into_sim_time(self):
        """A warm process store and a cold one produce byte-identical
        runs: interning is invisible in simulated time."""
        config = ScenarioConfig(block_count=24, horizon=25.0,
                                erasmus_collect_at=20.0)

        def run_smarm():
            scenario = Scenario.build("smarm", digest_cache=True,
                                      config=config)
            scenario.run()
            return scenario.device.trace.render(), [
                result.verdict for result in scenario.verifier.results
            ]

        warm = run_smarm()  # global store already warm from other tests
        previous = set_reference_store(ReferenceStore())
        try:
            cold = run_smarm()
        finally:
            set_reference_store(previous)
        assert warm == cold
