"""HMAC from scratch: RFC 4231 vectors and stdlib equivalence."""

import hmac as stdlib_hmac

import pytest
from hypothesis import given, strategies as st

from repro.crypto.hmac import (
    Hmac,
    constant_time_equal,
    hmac_chain,
    hmac_digest,
)

# RFC 4231 test cases (SHA-256 / SHA-512 expansions).
RFC4231 = [
    # (key, data, sha256 hex, sha512 hex prefix)
    (
        b"\x0b" * 20,
        b"Hi There",
        "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
        "87aa7cdea5ef619d4ff0b4241a1d6cb0",
    ),
    (
        b"Jefe",
        b"what do ya want for nothing?",
        "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
        "164b7a7bfcf819e2e395fbe73b56e0a3",
    ),
    (
        b"\xaa" * 20,
        b"\xdd" * 50,
        "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe",
        "fa73b0089d56a284efb0f0756c890be9",
    ),
    (
        # key longer than the block size
        b"\xaa" * 131,
        b"Test Using Larger Than Block-Size Key - Hash Key First",
        "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54",
        "80b24263c7c1a3ebb71493c1dd7be8b4",
    ),
]


class TestRfc4231:
    @pytest.mark.parametrize("key,data,sha256_hex,_", RFC4231)
    def test_sha256_vectors(self, key, data, sha256_hex, _):
        assert hmac_digest(key, data, "sha256").hex() == sha256_hex

    @pytest.mark.parametrize("key,data,_,sha512_prefix", RFC4231)
    def test_sha512_vectors_prefix(self, key, data, _, sha512_prefix):
        assert hmac_digest(key, data, "sha512").hex().startswith(
            sha512_prefix
        )


class TestStdlibEquivalence:
    @pytest.mark.parametrize(
        "algorithm", ["sha256", "sha512", "blake2b", "blake2s"]
    )
    def test_fixed_case(self, algorithm):
        key, data = b"secret-key", b"measured memory contents"
        assert hmac_digest(key, data, algorithm) == stdlib_hmac.new(
            key, data, algorithm
        ).digest()

    @given(st.binary(min_size=0, max_size=200), st.binary(max_size=500))
    def test_random_inputs_match_stdlib(self, key, data):
        assert hmac_digest(key, data, "sha256") == stdlib_hmac.new(
            key, data, "sha256"
        ).digest()


class TestStreaming:
    def test_incremental_equals_one_shot(self):
        mac = Hmac(b"key", "sha256")
        mac.update(b"block0")
        mac.update(b"block1")
        assert mac.digest() == hmac_digest(b"key", b"block0block1")

    def test_digest_is_non_destructive(self):
        mac = Hmac(b"key")
        mac.update(b"data")
        first = mac.digest()
        mac.update(b"more")
        assert mac.digest() != first
        assert mac.digest() == hmac_digest(b"key", b"datamore")

    def test_copy_forks_state(self):
        mac = Hmac(b"key")
        mac.update(b"common")
        fork = mac.copy()
        mac.update(b"left")
        fork.update(b"right")
        assert mac.digest() == hmac_digest(b"key", b"commonleft")
        assert fork.digest() == hmac_digest(b"key", b"commonright")

    def test_hmac_chain(self):
        chunks = [b"a", b"b", b"c"]
        assert hmac_chain(b"k", chunks) == hmac_digest(b"k", b"abc")

    def test_hexdigest(self):
        mac = Hmac(b"k")
        mac.update(b"x")
        assert mac.hexdigest() == mac.digest().hex()

    def test_digest_size(self):
        assert Hmac(b"k", "sha256").digest_size == 32
        assert Hmac(b"k", "sha512").digest_size == 64


class TestConstantTimeEqual:
    def test_equal(self):
        assert constant_time_equal(b"abc", b"abc")

    def test_unequal_same_length(self):
        assert not constant_time_equal(b"abc", b"abd")

    def test_unequal_length(self):
        assert not constant_time_equal(b"abc", b"abcd")

    @given(st.binary(max_size=64), st.binary(max_size=64))
    def test_matches_operator(self, a, b):
        assert constant_time_equal(a, b) == (a == b)


class TestKeyHandling:
    def test_long_key_hashed_down(self):
        long_key = b"\x55" * 300
        assert hmac_digest(long_key, b"m") == stdlib_hmac.new(
            long_key, b"m", "sha256"
        ).digest()

    def test_empty_key(self):
        assert hmac_digest(b"", b"m") == stdlib_hmac.new(
            b"", b"m", "sha256"
        ).digest()
