"""Signed attestation reports: the Section 2.4 non-repudiation option,
end to end."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.ra.report import Verdict
from repro.ra.signing import (
    PublicIdentity,
    make_signing_identity,
    sign_data,
    verify_data,
)
from repro.ra.smart import SmartAttestation

from tests.conftest import make_stack

SCHEMES = ["rsa1024", "ecdsa160", "ecdsa256"]


class TestSigningPrimitives:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_roundtrip(self, scheme):
        identity = make_signing_identity(scheme, seed=b"t" + scheme.encode())
        signature = sign_data(identity, b"report bytes")
        assert verify_data(identity.public(), b"report bytes", signature)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_tamper_rejected(self, scheme):
        identity = make_signing_identity(scheme, seed=b"t" + scheme.encode())
        signature = sign_data(identity, b"report bytes")
        assert not verify_data(
            identity.public(), b"other bytes", signature
        )

    def test_wrong_key_rejected(self):
        signer = make_signing_identity("ecdsa256", seed=b"a")
        other = make_signing_identity("ecdsa256", seed=b"b")
        signature = sign_data(signer, b"m")
        assert not verify_data(other.public(), b"m", signature)

    def test_truncated_ecdsa_signature_rejected(self):
        identity = make_signing_identity("ecdsa224", seed=b"t")
        signature = sign_data(identity, b"m")
        assert not verify_data(identity.public(), b"m", signature[:-1])

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            make_signing_identity("dilithium", seed=b"t")

    def test_public_identity_has_no_private_material(self):
        identity = make_signing_identity("ecdsa160", seed=b"t")
        public = identity.public()
        assert isinstance(public, PublicIdentity)
        assert not hasattr(public.material, "d")
        # ECDSA public material is (curve name, point).
        curve_name, point = public.material
        assert curve_name == "secp160r1"
        assert isinstance(point, tuple)


class TestSignedProtocol:
    def run_signed(self, scheme="ecdsa256", forge=False):
        stack = make_stack()
        service = SmartAttestation(stack.device, signature=scheme)
        service.install()
        stack.verifier.enroll(
            stack.device.name, signing=service.signing_identity.public()
        )
        if forge:
            # A MITM that re-signs with its own key: the MAC would
            # still pass (it only needs the symmetric key the real
            # device holds), but the signature check must fail.
            impostor = make_signing_identity(scheme, seed=b"impostor")

            def reseal(message):
                if message.kind != "att_report":
                    return 0.002
                report = message.payload
                forged = report.with_signature(
                    sign_data(impostor, report.signing_input()), scheme
                )
                return [(0.002, dataclasses.replace(
                    message, payload=forged
                ))]

            stack.channel.add_filter(reseal)
        exchange = stack.driver.request(stack.device.name)
        stack.sim.run(until=60)
        return exchange, service

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_signed_report_verifies(self, scheme):
        exchange, service = self.run_signed(scheme)
        assert exchange.result.verdict is Verdict.HEALTHY
        assert exchange.report.scheme == scheme
        assert exchange.report.signature

    def test_forged_signature_rejected(self):
        exchange, _ = self.run_signed(forge=True)
        assert exchange.result.verdict is Verdict.INVALID
        assert "signature" in exchange.result.detail

    def test_signature_without_registered_key_rejected(self):
        stack = make_stack()
        service = SmartAttestation(stack.device, signature="ecdsa160")
        service.install()
        # Verifier never learns the public key.
        exchange = stack.driver.request(stack.device.name)
        stack.sim.run(until=60)
        assert exchange.result.verdict is Verdict.INVALID

    def test_signing_time_charged_to_prover(self):
        """The reply is delayed by the scheme's Figure 2 signing cost."""
        plain_stack = make_stack()
        SmartAttestation(plain_stack.device).install()
        plain = plain_stack.driver.request(plain_stack.device.name)
        plain_stack.sim.run(until=60)

        signed_stack = make_stack()
        service = SmartAttestation(signed_stack.device,
                                   signature="rsa4096")
        service.install()
        signed_stack.verifier.enroll(
            signed_stack.device.name, signing=service.signing_identity.public()
        )
        signed = signed_stack.driver.request(signed_stack.device.name)
        signed_stack.sim.run(until=60)

        sign_cost = signed_stack.device.timing.sign_time("rsa4096")
        extra = signed.round_trip - plain.round_trip
        assert extra == pytest.approx(sign_cost, rel=0.05)

    def test_mac_only_reports_unaffected(self):
        stack = make_stack()
        SmartAttestation(stack.device).install()
        exchange = stack.driver.request(stack.device.name)
        stack.sim.run(until=60)
        assert exchange.report.scheme == ""
        assert exchange.result.verdict is Verdict.HEALTHY
