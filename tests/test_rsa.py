"""RSA key generation and PKCS#1 v1.5-style signatures.

Tests use small-but-valid moduli (512/768 bits) so the suite stays
fast; the 1024/2048/4096 sizes of Figure 2 differ only in prime size.
"""

import pytest

from repro.crypto.rsa import (
    _emsa_pkcs1_v15,
    rsa_generate,
    rsa_sign,
    rsa_verify,
)
from repro.errors import KeySizeError

KEY_512 = rsa_generate(512, seed=b"test-512")
KEY_768 = rsa_generate(768, seed=b"test-768")


class TestKeyGeneration:
    def test_modulus_bit_length(self):
        assert KEY_512.public.bits == 512
        assert KEY_768.public.bits == 768

    def test_deterministic_from_seed(self):
        again = rsa_generate(512, seed=b"test-512")
        assert again.public.n == KEY_512.public.n

    def test_different_seeds_differ(self):
        other = rsa_generate(512, seed=b"other")
        assert other.public.n != KEY_512.public.n

    def test_crt_components_consistent(self):
        key = KEY_512.private
        assert key.p * key.q == key.n
        assert (key.e * key.d) % ((key.p - 1) * (key.q - 1)) == 1
        assert key.d_p == key.d % (key.p - 1)
        assert (key.q_inv * key.q) % key.p == 1

    def test_tiny_modulus_rejected(self):
        with pytest.raises(KeySizeError):
            rsa_generate(128)

    def test_public_extraction(self):
        pub = KEY_512.private.public()
        assert pub.n == KEY_512.public.n
        assert pub.e == KEY_512.public.e


class TestSignVerify:
    def test_roundtrip(self):
        message = b"attestation report"
        signature = rsa_sign(KEY_512.private, message)
        assert rsa_verify(KEY_512.public, message, signature)

    def test_signature_length_is_modulus_length(self):
        signature = rsa_sign(KEY_512.private, b"m")
        assert len(signature) == KEY_512.public.byte_length == 64

    def test_tampered_message_rejected(self):
        signature = rsa_sign(KEY_512.private, b"good")
        assert not rsa_verify(KEY_512.public, b"evil", signature)

    def test_tampered_signature_rejected(self):
        signature = bytearray(rsa_sign(KEY_512.private, b"m"))
        signature[10] ^= 0x01
        assert not rsa_verify(KEY_512.public, b"m", bytes(signature))

    def test_wrong_key_rejected(self):
        signature = rsa_sign(KEY_512.private, b"m")
        assert not rsa_verify(KEY_768.public, b"m", signature)

    def test_deterministic_signature(self):
        assert rsa_sign(KEY_512.private, b"m") == rsa_sign(
            KEY_512.private, b"m"
        )

    def test_sha512_variant(self):
        signature = rsa_sign(KEY_768.private, b"m", hash_name="sha512")
        assert rsa_verify(KEY_768.public, b"m", signature,
                          hash_name="sha512")
        # Verifying under the wrong hash must fail.
        assert not rsa_verify(KEY_768.public, b"m", signature)

    def test_sha512_needs_room(self):
        # 512-bit modulus cannot hold a SHA-512 DigestInfo.
        with pytest.raises(KeySizeError):
            rsa_sign(KEY_512.private, b"m", hash_name="sha512")


class TestVerifyRobustness:
    def test_wrong_length_signature(self):
        assert not rsa_verify(KEY_512.public, b"m", b"\x00" * 63)

    def test_signature_value_ge_modulus(self):
        too_big = (KEY_512.public.n).to_bytes(64, "big")
        assert not rsa_verify(KEY_512.public, b"m", too_big)

    def test_empty_signature(self):
        assert not rsa_verify(KEY_512.public, b"m", b"")

    def test_all_zero_signature(self):
        assert not rsa_verify(KEY_512.public, b"m", b"\x00" * 64)


class TestEncoding:
    def test_emsa_structure(self):
        em = _emsa_pkcs1_v15(b"m", 64, "sha256")
        assert em[:2] == b"\x00\x01"
        assert b"\x00" in em[2:]
        assert len(em) == 64
        # Padding is all 0xFF.
        separator = em.index(b"\x00", 2)
        assert set(em[2:separator]) == {0xFF}

    def test_emsa_too_small(self):
        with pytest.raises(KeySizeError):
            _emsa_pkcs1_v15(b"m", 40, "sha256")
