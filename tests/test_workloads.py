"""Writer workloads and availability metrics."""

import pytest

from repro.apps.metrics import summarize_tasks
from repro.apps.workloads import (
    WriterWorkload,
    make_compute_task,
    make_writer_task,
)
from repro.errors import ConfigurationError
from repro.ra.locking import make_policy
from repro.ra.measurement import MeasurementConfig, MeasurementProcess
from repro.sim.device import Device
from repro.sim.engine import Simulator
from repro.units import MiB


def make_device(sim_block_size=None):
    sim = Simulator()
    device = Device(sim, block_count=16, block_size=32,
                    sim_block_size=sim_block_size)
    device.standard_layout()
    return sim, device


class TestWriterTask:
    def test_writes_land(self):
        sim, device = make_device()
        task = make_writer_task(device, "w", period=0.5, wcet=0.01,
                                blocks=[10, 11])
        sim.run(until=1.2)
        assert 10 not in device.memory.dirty_blocks() or True
        # Both blocks hold the task's stamp (payload_tag 0, some index).
        assert device.memory.read_block(10) != device.memory.benign_block(10)
        assert device.memory.read_block(11) != device.memory.benign_block(11)

    def test_no_blocks_rejected(self):
        _, device = make_device()
        with pytest.raises(ConfigurationError):
            make_writer_task(device, "w", period=1.0, wcet=0.01, blocks=[])

    def test_compute_task_touches_no_memory(self):
        sim, device = make_device()
        make_compute_task(device, "c", period=0.5, wcet=0.01)
        sim.run(until=2.0)
        assert device.memory.dirty_blocks() == []


class TestWriterWorkload:
    def test_build_partitions_data_region(self):
        sim, device = make_device()
        workload = WriterWorkload(device, task_count=3,
                                  blocks_per_task=2).build()
        assert len(workload.tasks) == 3
        blocks = set()
        for task in workload.tasks:
            pass
        sim.run(until=0.5)
        # Six distinct data blocks dirtied, no overlap.
        data = device.memory.regions["data"]
        dirty = [b for b in device.memory.dirty_blocks() if b in data]
        assert len(dirty) == 6

    def test_build_requires_layout(self):
        sim = Simulator()
        device = Device(sim, block_count=16, block_size=32)
        with pytest.raises(ConfigurationError):
            WriterWorkload(device).build()

    def test_build_rejects_oversubscription(self):
        _, device = make_device()
        with pytest.raises(ConfigurationError):
            WriterWorkload(device, task_count=10,
                           blocks_per_task=2).build()

    def test_all_lock_measurement_causes_faults(self):
        sim, device = make_device(sim_block_size=2 * MiB)
        workload = WriterWorkload(
            device, task_count=2, period=0.02, wcet=0.001,
            blocks_per_task=2,
        ).build()
        config = MeasurementConfig(
            locking=make_policy("all-lock"), priority=5,
        )
        mp = MeasurementProcess(device, config, nonce=b"n")
        sim.schedule_at(
            0.5, lambda: device.cpu.spawn("mp", mp.run, priority=5)
        )
        sim.run(until=3.0)
        assert workload.total_write_faults() > 0
        assert workload.worst_response() > 0.02

    def test_no_lock_measurement_causes_no_faults(self):
        sim, device = make_device(sim_block_size=2 * MiB)
        workload = WriterWorkload(
            device, task_count=2, period=0.02, wcet=0.001,
            blocks_per_task=2,
        ).build()
        config = MeasurementConfig(priority=5)
        mp = MeasurementProcess(device, config, nonce=b"n")
        sim.schedule_at(
            0.5, lambda: device.cpu.spawn("mp", mp.run, priority=5)
        )
        sim.run(until=3.0)
        assert workload.total_write_faults() == 0


class TestMetrics:
    def test_summarize_tasks(self):
        sim, device = make_device()
        workload = WriterWorkload(
            device, task_count=2, period=0.1, wcet=0.005,
            blocks_per_task=2,
        ).build()
        sim.run(until=2.0)
        report = summarize_tasks(device, workload.tasks)
        assert report.jobs_released > 0
        assert report.jobs_finished > 0
        assert report.miss_rate == 0.0
        assert set(report.per_task) == {"writer0", "writer1"}
        assert report.elapsed == pytest.approx(2.0)
        assert 0.0 <= report.cpu_idle_fraction <= 1.0

    def test_summary_line_renders(self):
        sim, device = make_device()
        workload = WriterWorkload(device, task_count=1).build()
        sim.run(until=1.0)
        line = summarize_tasks(device, workload.tasks).summary_line()
        assert "jobs=" in line and "misses=" in line

    def test_lock_accounting_in_report(self):
        sim, device = make_device()
        device.mpu.lock(0)
        sim.schedule(1.0, device.mpu.unlock, 0)
        workload = WriterWorkload(device, task_count=1).build()
        sim.run(until=2.0)
        report = summarize_tasks(device, workload.tasks)
        assert report.locked_block_seconds == pytest.approx(1.0)
        assert report.lock_ops == 2
