"""ERASMUS extensions: on-demand coupling and history-deletion audit."""

import pytest

from repro.malware.transient import TransientMalware
from repro.ra.erasmus import CollectorVerifier, ErasmusService
from repro.ra.measurement import MeasurementConfig
from repro.ra.report import Verdict
from repro.ra.service import OnDemandVerifier
from repro.ra.verifier import Verifier
from repro.sim.device import Device
from repro.sim.engine import Simulator
from repro.sim.network import Channel


def coupled_rig(period=2.0):
    sim = Simulator()
    device = Device(sim, block_count=12, block_size=32)
    device.standard_layout()
    channel = Channel(sim, latency=0.002)
    device.attach_network(channel)
    verifier = Verifier(sim)
    verifier.enroll(device)
    service = ErasmusService(
        device, period=period,
        config=MeasurementConfig(atomic=True, priority=50,
                                 normalize_mutable=True),
        on_demand=True,
    )
    service.start()
    driver = OnDemandVerifier(verifier, channel,
                              endpoint_name="vrf-od")
    collector = CollectorVerifier(verifier, channel,
                                  endpoint_name="vrf-collect")
    return sim, device, verifier, service, driver, collector


class TestOnDemandCoupling:
    def test_challenge_answered_with_fresh_measurement(self):
        sim, device, verifier, service, driver, _ = coupled_rig()
        exchanges = []
        sim.schedule_at(
            5.3, lambda: exchanges.append(driver.request(device.name))
        )
        sim.run(until=10.0)
        exchange = exchanges[0]
        assert exchange.result is not None
        assert exchange.result.verdict is Verdict.HEALTHY
        record = exchange.report.records[0]
        # Fresh: measured after the challenge, bound to its nonce.
        assert record.t_start >= 5.3
        assert record.nonce == exchange.nonce
        assert service.on_demand_served == 1

    def test_on_demand_record_lands_in_history(self):
        sim, device, verifier, service, driver, collector = coupled_rig()
        sim.schedule_at(5.3, driver.request, device.name)
        sim.schedule_at(9.0, collector.collect, device.name)
        sim.run(until=12.0)
        collection = collector.collections[0]
        mechanisms = {r.mechanism for r in collection.records}
        assert "erasmus" in mechanisms and "erasmus-od" in mechanisms

    def test_on_demand_detects_current_infection(self):
        sim, device, verifier, service, driver, _ = coupled_rig()
        TransientMalware(device, target_block=2, infect_at=4.0,
                         leave_at=7.0)
        exchanges = []
        sim.schedule_at(
            5.3, lambda: exchanges.append(driver.request(device.name))
        )
        sim.run(until=10.0)
        assert exchanges[0].result.verdict is Verdict.COMPROMISED

    def test_scheduled_measurements_unaffected(self):
        sim, device, verifier, service, driver, _ = coupled_rig(period=2.0)
        sim.schedule_at(5.3, driver.request, device.name)
        sim.run(until=11.0)
        scheduled = [
            r for r in service.history if r.mechanism == "erasmus"
        ]
        assert len(scheduled) == 6  # t = 0, 2, ..., 10

    def test_disabled_by_default(self):
        sim = Simulator()
        device = Device(sim, block_count=8, block_size=32)
        device.standard_layout()
        channel = Channel(sim, latency=0.002)
        device.attach_network(channel)
        verifier = Verifier(sim)
        verifier.enroll(device)
        service = ErasmusService(device, period=2.0)
        service.start()
        driver = OnDemandVerifier(verifier, channel,
                                  endpoint_name="vrf-od")
        exchange = driver.request(device.name)
        sim.run(until=10.0)
        assert exchange.result is None  # nobody answers challenges


class TestHistoryDeletionAudit:
    def run_with_deletion(self, delete_span=None):
        sim, device, verifier, service, driver, collector = coupled_rig(
            period=2.0
        )
        if delete_span is not None:
            lo, hi = delete_span

            def delete_records():
                service.history[:] = [
                    r for r in service.history
                    if not (lo <= r.t_start <= hi)
                ]

            sim.schedule_at(hi + 0.5, delete_records)
        results = []
        sim.schedule_at(
            15.0, collector.collect, device.name, results.append
        )
        sim.run(until=18.0)
        return results[0]

    def test_clean_history_has_no_gaps(self):
        collection = self.run_with_deletion(None)
        assert collection.result.verdict is Verdict.HEALTHY
        assert collection.cadence_gaps(period=2.0) == []

    def test_deleted_window_exposed_as_gap(self):
        """Malware deletes the records covering its residency; the
        verifier cannot recover them (fine: it couldn't forge either)
        but the hole in the T_M cadence is evidence by itself."""
        collection = self.run_with_deletion(delete_span=(5.0, 9.0))
        gaps = collection.cadence_gaps(period=2.0)
        assert len(gaps) == 1
        gap_start, gap_end = gaps[0]
        assert gap_start <= 5.0 <= gap_end
        assert gap_start <= 9.0 <= gap_end

    def test_trailing_gap_detected(self):
        """Deleting the newest records (or halting self-measurement)
        shows up as a stale newest record at collection time."""
        collection = self.run_with_deletion(delete_span=(9.0, 14.5))
        gaps = collection.cadence_gaps(period=2.0)
        assert gaps
        assert gaps[-1][1] == pytest.approx(collection.collected_at)

    def test_context_aware_jitter_not_flagged(self):
        """Deferrals within the tolerance band are normal operation."""
        collection = self.run_with_deletion(None)
        # Even a tight tolerance of 1.5 periods tolerates honest jitter.
        assert collection.cadence_gaps(period=2.0, tolerance=1.5) == []
