"""CPU scheduling: priorities, preemption, atomic sections."""

import pytest

from repro.errors import ProcessError
from repro.sim.engine import Signal, Simulator
from repro.sim.process import (
    CPU,
    Atomic,
    Compute,
    ProcState,
    Sleep,
    WaitSignal,
    Yield,
)


def make_cpu():
    sim = Simulator()
    return sim, CPU(sim)


class TestBasicExecution:
    def test_single_process_computes(self):
        sim, cpu = make_cpu()
        done = []

        def body(proc):
            yield Compute(2.5)
            done.append(sim.now)

        cpu.spawn("p", body)
        sim.run()
        assert done == [2.5]

    def test_process_result_and_done_signal(self):
        sim, cpu = make_cpu()

        def body(proc):
            yield Compute(1.0)
            return 42

        proc = cpu.spawn("p", body)
        results = []
        sim.schedule(0.0, lambda: proc.done_signal.wait(results.append))
        sim.run()
        assert proc.result == 42
        assert proc.state is ProcState.DONE
        assert results == [42]

    def test_sleep_releases_cpu(self):
        sim, cpu = make_cpu()
        log = []

        def sleeper(proc):
            yield Sleep(5.0)
            log.append(("sleeper", sim.now))

        def worker(proc):
            yield Compute(1.0)
            log.append(("worker", sim.now))

        cpu.spawn("sleeper", sleeper, priority=10)
        cpu.spawn("worker", worker, priority=1)
        sim.run()
        assert log == [("worker", 1.0), ("sleeper", 5.0)]

    def test_spawn_delay(self):
        sim, cpu = make_cpu()
        started = []

        def body(proc):
            started.append(sim.now)
            yield Compute(0.1)

        cpu.spawn("late", body, delay=3.0)
        sim.run()
        assert started == [3.0]

    def test_sequential_same_priority_fifo(self):
        sim, cpu = make_cpu()
        log = []

        def make(tag):
            def body(proc):
                yield Compute(1.0)
                log.append(tag)

            return body

        cpu.spawn("a", make("a"), priority=5)
        cpu.spawn("b", make("b"), priority=5)
        sim.run()
        assert log == ["a", "b"]


class TestPreemption:
    def test_higher_priority_preempts(self):
        sim, cpu = make_cpu()
        log = []

        def low(proc):
            yield Compute(10.0)
            log.append(("low", sim.now))

        def high(proc):
            yield Sleep(2.0)
            yield Compute(1.0)
            log.append(("high", sim.now))

        low_proc = cpu.spawn("low", low, priority=1)
        cpu.spawn("high", high, priority=9)
        sim.run()
        # low loses [2, 3] to high; finishes at 11.
        assert log == [("high", 3.0), ("low", 11.0)]
        assert low_proc.preemption_count >= 1

    def test_equal_priority_does_not_preempt(self):
        sim, cpu = make_cpu()
        log = []

        def first(proc):
            yield Compute(4.0)
            log.append(("first", sim.now))

        def second(proc):
            yield Sleep(1.0)
            yield Compute(1.0)
            log.append(("second", sim.now))

        cpu.spawn("first", first, priority=5)
        cpu.spawn("second", second, priority=5)
        sim.run()
        # "second" cannot even reach its Sleep until "first" finishes
        # (equal priority never preempts): start 4, sleep to 5, compute.
        assert log == [("first", 4.0), ("second", 6.0)]

    def test_preempted_work_is_conserved(self):
        sim, cpu = make_cpu()

        def low(proc):
            yield Compute(10.0)

        def high(proc):
            yield Sleep(3.0)
            yield Compute(2.0)

        low_proc = cpu.spawn("low", low, priority=1)
        high_proc = cpu.spawn("high", high, priority=9)
        sim.run()
        assert low_proc.finished_at == pytest.approx(12.0)
        assert low_proc.cpu_time == pytest.approx(10.0)
        assert high_proc.cpu_time == pytest.approx(2.0)

    def test_response_accounting(self):
        sim, cpu = make_cpu()

        def hog(proc):
            yield Atomic(True)
            yield Compute(5.0)
            yield Atomic(False)

        def victim(proc):
            yield Compute(0.5)

        cpu.spawn("hog", hog, priority=1)
        victim_proc = cpu.spawn("victim", victim, priority=9)
        sim.run()
        # victim became ready at 0 but waited out the atomic hog.
        assert victim_proc.response_max == pytest.approx(5.0)


class TestAtomic:
    def test_atomic_blocks_higher_priority(self):
        sim, cpu = make_cpu()
        log = []

        def mp(proc):
            yield Atomic(True)
            yield Compute(10.0)
            yield Atomic(False)
            log.append(("mp", sim.now))

        def critical(proc):
            yield Sleep(1.0)
            yield Compute(1.0)
            log.append(("critical", sim.now))

        cpu.spawn("mp", mp, priority=1)
        cpu.spawn("critical", critical, priority=100)
        sim.run()
        assert log[0] == ("mp", 10.0)
        # critical got the CPU only after the atomic section ended; it
        # still had to start (Sleep) and compute.
        assert log[1][1] > 10.0

    def test_atomic_flag_cleared_on_finish(self):
        sim, cpu = make_cpu()

        def mp(proc):
            yield Atomic(True)
            yield Compute(1.0)
            # ends without Atomic(False): CPU must clean up

        def later(proc):
            yield Compute(1.0)

        mp_proc = cpu.spawn("mp", mp, priority=5)
        later_proc = cpu.spawn("later", later, priority=1)
        sim.run()
        assert mp_proc.atomic is False
        assert later_proc.state is ProcState.DONE

    def test_sleep_inside_atomic_rejected(self):
        sim, cpu = make_cpu()

        def bad(proc):
            yield Atomic(True)
            yield Sleep(1.0)

        cpu.spawn("bad", bad)
        with pytest.raises(ProcessError):
            sim.run()

    def test_wait_inside_atomic_rejected(self):
        sim, cpu = make_cpu()
        signal = Signal(sim, "s")

        def bad(proc):
            yield Atomic(True)
            yield WaitSignal(signal)

        cpu.spawn("bad", bad)
        with pytest.raises(ProcessError):
            sim.run()


class TestSignalsAndYield:
    def test_wait_signal_delivers_value(self):
        sim, cpu = make_cpu()
        signal = Signal(sim, "data")
        got = []

        def waiter(proc):
            value = yield WaitSignal(signal)
            got.append((value, sim.now))

        cpu.spawn("waiter", waiter)
        sim.schedule(3.0, signal.fire, "hello")
        sim.run()
        assert got == [("hello", 3.0)]

    def test_yield_hands_off_round_robin(self):
        sim, cpu = make_cpu()
        log = []

        def chatty(tag):
            def body(proc):
                # The zero-length compute lets both processes start
                # before the hand-off dance begins.
                yield Compute(0.0)
                log.append(f"{tag}1")
                yield Yield()
                log.append(f"{tag}2")

            return body

        cpu.spawn("a", chatty("a"), priority=5)
        cpu.spawn("b", chatty("b"), priority=5)
        sim.run()
        assert log == ["a1", "b1", "a2", "b2"]

    def test_bad_yield_command_rejected(self):
        sim, cpu = make_cpu()

        def bad(proc):
            yield "not a command"

        cpu.spawn("bad", bad)
        with pytest.raises(ProcessError):
            sim.run()

    def test_negative_compute_rejected(self):
        with pytest.raises(ProcessError):
            Compute(-1.0)

    def test_negative_sleep_rejected(self):
        with pytest.raises(ProcessError):
            Sleep(-1.0)


class TestAccounting:
    def test_idle_fraction(self):
        sim, cpu = make_cpu()

        def body(proc):
            yield Compute(2.0)

        cpu.spawn("p", body)
        sim.run()
        sim.run(until=10.0)
        assert cpu.idle_fraction(10.0) == pytest.approx(0.8)

    def test_dispatch_count(self):
        sim, cpu = make_cpu()

        def body(proc):
            yield Compute(1.0)
            yield Sleep(1.0)
            yield Compute(1.0)

        proc = cpu.spawn("p", body)
        sim.run()
        assert proc.dispatch_count >= 2

    def test_started_and_finished_timestamps(self):
        sim, cpu = make_cpu()

        def body(proc):
            yield Compute(1.5)

        proc = cpu.spawn("p", body, delay=1.0)
        sim.run()
        assert proc.started_at == pytest.approx(1.0)
        assert proc.finished_at == pytest.approx(2.5)


class TestLifecycleEdgeCases:
    def test_double_start_rejected(self):
        sim, cpu = make_cpu()

        def body(proc):
            yield Compute(1.0)

        proc = cpu.spawn("p", body)
        sim.run()
        with pytest.raises(ProcessError):
            cpu._start(proc)

    def test_alive_property(self):
        sim, cpu = make_cpu()

        def body(proc):
            yield Compute(1.0)

        proc = cpu.spawn("p", body)
        assert not proc.alive  # NEW until its start event fires
        sim.run(until=0.5)
        assert proc.alive
        sim.run()
        assert not proc.alive

    def test_response_mean_no_samples(self):
        sim, cpu = make_cpu()

        def body(proc):
            yield Compute(1.0)

        proc = cpu.spawn("p", body, delay=5.0)
        assert proc.response_mean == 0.0

    def test_idle_fraction_zero_elapsed(self):
        _, cpu = make_cpu()
        assert cpu.idle_fraction(0.0) == 0.0

    def test_process_with_immediate_return(self):
        sim, cpu = make_cpu()

        def body(proc):
            return 7
            yield  # pragma: no cover - makes it a generator

        proc = cpu.spawn("p", body)
        sim.run()
        assert proc.result == 7
        assert proc.state is ProcState.DONE

    def test_atomic_survives_nested_spawn(self):
        """A process spawned from inside an atomic section stays READY
        until the section ends."""
        sim, cpu = make_cpu()
        log = []

        def child(proc):
            log.append(("child", sim.now))
            yield Compute(0.0)

        def parent(proc):
            yield Atomic(True)
            cpu.spawn("child", child, priority=100)
            yield Compute(3.0)
            yield Atomic(False)
            log.append(("parent", sim.now))

        cpu.spawn("parent", parent, priority=1)
        sim.run()
        child_events = [entry for entry in log if entry[0] == "child"]
        # The child only ran once the atomic section ended at t=3.
        assert child_events == [("child", 3.0)]
