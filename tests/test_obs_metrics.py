"""Metrics registry, snapshots and the exporters (incl. golden files)."""

import json
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    prom_name,
    to_prometheus_text,
)

GOLDEN = Path(__file__).parent / "golden"


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("sim.events", "help")
        b = reg.counter("sim.events")
        assert a is b

    def test_labels_distinguish_instruments(self):
        reg = MetricsRegistry()
        a = reg.counter("ra.blocks", mechanism="smart")
        b = reg.counter("ra.blocks", mechanism="smarm")
        assert a is not b
        a.inc(3)
        assert b.value == 0.0

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError):
            reg.gauge("x")

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.counter("c").inc(-1.0)

    def test_updates_stamp_the_bound_clock(self):
        clock = FakeClock()
        reg = MetricsRegistry(clock=clock)
        counter = reg.counter("c")
        clock.now = 4.25
        counter.inc()
        assert counter.updated_at == 4.25

    def test_gauge_set_and_add(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(3.0)
        gauge.add(-1.0)
        assert gauge.value == 2.0

    def test_instruments_order_deterministic(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a", mechanism="z")
        reg.counter("a", mechanism="m")
        names = [f"{i.name}{sorted(i.labels.items())}"
                 for i in reg.instruments()]
        assert names == sorted(names)
        assert len(reg) == 3


class TestHistogram:
    def test_bucketing_and_stats(self):
        hist = MetricsRegistry().histogram(
            "lat", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.count == 5
        assert hist.sum == pytest.approx(56.05)
        assert hist.min == 0.05 and hist.max == 50.0
        assert hist.mean == pytest.approx(56.05 / 5)
        # raw per-bucket counts: <=0.1, <=1.0, <=10.0, +Inf
        assert hist.bucket_counts == [1, 2, 1, 1]
        # sample() exposes cumulative counts, Prometheus-style
        assert hist.sample()["buckets"] == {
            "0.1": 1, "1.0": 3, "10.0": 4, "+Inf": 5,
        }

    def test_empty_buckets_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().histogram("h", buckets=())


class TestSnapshots:
    def build(self):
        reg = MetricsRegistry()
        reg.counter("sim.events.fired", "events executed").inc(10)
        reg.gauge("queue.depth").set(3)
        hist = reg.histogram("ra.mp.duration", buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(2.0)
        return reg

    def test_snapshot_flat_flattens_histograms(self):
        flat = self.build().snapshot_flat()
        assert flat == {
            "sim.events.fired": 10.0,
            "queue.depth": 3.0,
            "ra.mp.duration.count": 2.0,
            "ra.mp.duration.sum": 2.5,
        }

    def test_snapshot_includes_kind_and_labels(self):
        reg = MetricsRegistry()
        reg.counter("ra.blocks", mechanism="smarm").inc()
        snap = reg.snapshot()
        entry = snap["ra.blocks{mechanism=smarm}"]
        assert entry["kind"] == "counter"
        assert entry["labels"] == {"mechanism": "smarm"}
        assert entry["value"] == 1.0

    def test_to_jsonl_round_trips(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        assert self.build().to_jsonl(path) == 3
        rows = [json.loads(line)
                for line in path.read_text().splitlines()]
        assert [r["metric"] for r in rows] == sorted(
            r["metric"] for r in rows
        )
        by_name = {r["metric"]: r for r in rows}
        assert by_name["sim.events.fired"]["value"] == 10.0
        assert by_name["ra.mp.duration"]["count"] == 2


class TestPrometheusExport:
    def test_prom_name_sanitizes(self):
        assert prom_name("sim.events.fired") == "sim_events_fired"
        assert prom_name("9lives") == "_9lives"

    def test_golden_text(self):
        """Byte-exact exposition for a representative registry."""
        reg = MetricsRegistry()
        reg.counter(
            "sim.events.fired", "events popped and executed"
        ).inc(42)
        reg.counter("ra.blocks.measured", mechanism="smarm").inc(64)
        reg.counter("ra.blocks.measured", mechanism="smart").inc(16)
        reg.gauge("app.queue.depth").set(2.5)
        hist = reg.histogram(
            "ra.lock_hold.duration", "seconds the MPU lock is held",
            buckets=(0.01, 0.1, 1.0), policy="all-lock",
        )
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(4.0)
        text = to_prometheus_text(reg)
        golden = (GOLDEN / "metrics.prom").read_text(encoding="utf-8")
        assert text == golden

    def test_empty_registry_renders_empty(self):
        assert to_prometheus_text(MetricsRegistry()) == ""


class TestNullRegistry:
    def test_all_calls_are_noops(self, tmp_path):
        assert not NULL_REGISTRY.enabled
        counter = NULL_REGISTRY.counter("c", "help", k="v")
        counter.inc(5)
        NULL_REGISTRY.gauge("g").set(1.0)
        NULL_REGISTRY.histogram("h").observe(2.0)
        assert counter.value == 0.0
        assert NULL_REGISTRY.snapshot() == {}
        assert NULL_REGISTRY.snapshot_flat() == {}
        assert NULL_REGISTRY.instruments() == []
        assert len(NULL_REGISTRY) == 0
        assert NULL_REGISTRY.to_jsonl(tmp_path / "x.jsonl") == 0
