"""TyTAN per-process measurement vs single and colluding malware."""

import pytest

from repro.malware.colluding import ColludingMalware
from repro.malware.relocating import SelfRelocatingMalware
from repro.ra.report import Verdict
from repro.ra.tytan import (
    ProcessPartition,
    TytanAttestation,
    install_partitions,
)
from repro.ra.service import OnDemandVerifier
from repro.ra.verifier import Verifier
from repro.sim.device import Device
from repro.sim.engine import Simulator
from repro.sim.network import Channel


def tytan_rig(block_count=16):
    sim = Simulator()
    device = Device(sim, block_count=block_count, block_size=32)
    install_partitions(
        device,
        [
            ProcessPartition("procA", 0, block_count // 2),
            ProcessPartition("procB", block_count // 2,
                             block_count - block_count // 2),
        ],
    )
    channel = Channel(sim, latency=0.002)
    device.attach_network(channel)
    verifier = Verifier(sim)
    verifier.enroll(device)
    driver = OnDemandVerifier(verifier, channel)
    service = TytanAttestation(device, regions=["procA", "procB"])
    service.install()
    return sim, device, verifier, driver, service


def request_verdict(sim, driver, device_name, at=1.0, until=120.0):
    exchanges = []
    sim.schedule_at(
        at, lambda: exchanges.append(driver.request(device_name))
    )
    sim.run(until=until)
    assert exchanges and exchanges[0].result is not None
    return exchanges[0]


class TestPartitions:
    def test_install_creates_regions(self):
        _, device, _, _, _ = tytan_rig()
        assert set(device.memory.regions) == {"procA", "procB"}
        assert device.memory.regions["procA"].mutable

    def test_one_record_per_process(self):
        sim, device, verifier, driver, service = tytan_rig()
        exchange = request_verdict(sim, driver, device.name)
        regions = [record.region for record in exchange.report.records]
        assert regions == ["procA", "procB"]

    def test_clean_device_healthy(self):
        sim, device, verifier, driver, service = tytan_rig()
        exchange = request_verdict(sim, driver, device.name)
        assert exchange.result.verdict is Verdict.HEALTHY

    def test_region_required(self):
        sim = Simulator()
        device = Device(sim, block_count=8, block_size=32)
        channel = Channel(sim)
        device.attach_network(channel)
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            TytanAttestation(device, regions=[])


class TestSingleProcessMalware:
    def test_caught_in_own_region(self):
        """Single-process malware cannot run while its own pages are
        measured, so it is captured in place."""
        sim, device, verifier, driver, service = tytan_rig()
        malware = ColludingMalware(
            device, target_block=2, infect_at=0.1,
            isolation_violated=False,
        )
        exchange = request_verdict(sim, driver, device.name)
        assert exchange.result.verdict is Verdict.COMPROMISED

    def test_relocating_within_own_region_caught(self):
        sim, device, verifier, driver, service = tytan_rig()
        malware = SelfRelocatingMalware(
            device, target_block=2, infect_at=0.1,
            strategy="to-measured", home_region="procA",
        )
        malware.home_region = "procA"
        exchange = request_verdict(sim, driver, device.name)
        assert exchange.result.verdict is Verdict.COMPROMISED


class TestColludingMalware:
    def test_colluding_pair_escapes(self):
        """Malware spread over colluding processes defeats per-process
        measurement (Section 3.1) -- the partner moves the payload out
        of whichever region is being measured."""
        sim, device, verifier, driver, service = tytan_rig()
        malware = ColludingMalware(
            device, target_block=2, infect_at=0.1,
            isolation_violated=True,
        )
        exchange = request_verdict(sim, driver, device.name)
        assert exchange.result.verdict is Verdict.HEALTHY
        # ... yet the device is still infected:
        assert malware.resident

    def test_colluding_hops_between_regions(self):
        sim, device, verifier, driver, service = tytan_rig()
        malware = ColludingMalware(
            device, target_block=2, infect_at=0.1,
            isolation_violated=True,
        )
        request_verdict(sim, driver, device.name)
        moves = [r for r in malware.history if r.action == "relocate"]
        assert len(moves) >= 2  # out of procA, then out of procB
