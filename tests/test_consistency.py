"""Temporal-consistency analysis (Figure 4 semantics)."""

import pytest

from repro.core.consistency import (
    ConsistencyAnalyzer,
    ConsistencyVerdict,
    expected_consistency,
)
from repro.errors import ConfigurationError
from repro.ra.locking import make_policy
from repro.ra.measurement import MeasurementConfig, MeasurementProcess
from repro.sim.device import Device
from repro.sim.engine import Simulator
from repro.sim.memory import content_fingerprint
from repro.units import MiB


def run_measurement_with_writes(policy_name, writes, block_count=8,
                                release_delay=0.0):
    """Run one measurement under ``policy_name`` with scheduled writes.

    ``writes`` is a list of (time, block) pairs; each write is a
    try_write (it may fault against locks).
    """
    sim = Simulator()
    device = Device(sim, block_count=block_count, block_size=32,
                    sim_block_size=MiB)
    config = MeasurementConfig(
        locking=make_policy(policy_name), release_delay=release_delay,
        priority=50,
    )
    mp = MeasurementProcess(device, config, nonce=b"n")
    sim.schedule_at(1.0, lambda: device.cpu.spawn("mp", mp.run, priority=50))
    payload = b"\xDD" * 32
    for time, block in writes:
        sim.schedule_at(
            time,
            lambda b=block: device.memory.try_write(b, payload, "writer"),
        )
    sim.run(until=60)
    return device, mp.record


class TestFingerprintReconstruction:
    def test_no_writes_benign_everywhere(self):
        sim = Simulator()
        device = Device(sim, block_count=4, block_size=16)
        analyzer = ConsistencyAnalyzer(device.memory)
        expected = content_fingerprint(device.memory.benign_block(2))
        assert analyzer.fingerprint_at(2, 0.0) == expected
        assert analyzer.fingerprint_at(2, 100.0) == expected

    def test_write_changes_fingerprint_from_its_time(self):
        sim = Simulator()
        device = Device(sim, block_count=4, block_size=16)
        analyzer = ConsistencyAnalyzer(device.memory)
        sim.schedule_at(5.0, device.memory.write, 1, b"\xAA" * 16, "w")
        sim.run()
        benign = content_fingerprint(device.memory.benign_block(1))
        after = content_fingerprint(b"\xAA" * 16)
        assert analyzer.fingerprint_at(1, 4.9) == benign
        assert analyzer.fingerprint_at(1, 5.0) == after
        assert analyzer.fingerprint_at(1, 99.0) == after

    def test_multiple_writes_latest_wins(self):
        sim = Simulator()
        device = Device(sim, block_count=4, block_size=16)
        analyzer = ConsistencyAnalyzer(device.memory)
        sim.schedule_at(1.0, device.memory.write, 0, b"\x01" * 16, "w")
        sim.schedule_at(2.0, device.memory.write, 0, b"\x02" * 16, "w")
        sim.run()
        assert analyzer.fingerprint_at(0, 1.5) == content_fingerprint(
            b"\x01" * 16
        )
        assert analyzer.fingerprint_at(0, 2.5) == content_fingerprint(
            b"\x02" * 16
        )


class TestMechanismGuarantees:
    """Controlled B/C writes against each policy (the Figure 4 game)."""

    def profile_for(self, policy_name, release_delay=0.0):
        # Place write B after block 0 is measured but well before the
        # traversal ends, and write C before block 7 is reached.  The
        # per-block time comes from the same timing model MP uses.
        probe_device = Device(
            Simulator(), block_count=8, block_size=32, sim_block_size=MiB
        )
        per_block = probe_device.block_measure_time("blake2s")
        writes = [
            (1.0 + 2.5 * per_block, 0),  # B: early block, already done
            (1.0 + 4.5 * per_block, 7),  # C: late block, not yet done
        ]
        device, record = run_measurement_with_writes(
            policy_name, writes, release_delay=release_delay
        )
        assert record.audit_block_times[0] < writes[0][0]
        assert record.audit_block_times[7] > writes[1][0]
        analyzer = ConsistencyAnalyzer(device.memory)
        return record, analyzer.profile(record), analyzer

    def test_no_lock_inconsistent(self):
        record, profile, _ = self.profile_for("no-lock")
        assert profile.verdict is ConsistencyVerdict.NONE

    def test_all_lock_consistent_over_interval(self):
        record, profile, analyzer = self.profile_for("all-lock")
        assert analyzer.consistent_at(record, record.t_start)
        assert analyzer.consistent_at(
            record, (record.t_start + record.t_end) / 2
        )
        assert analyzer.consistent_at(record, record.t_end)

    def test_dec_lock_consistent_at_start_only(self):
        record, profile, analyzer = self.profile_for("dec-lock")
        assert analyzer.consistent_at(record, record.t_start)
        assert not analyzer.consistent_at(record, record.t_end)

    def test_inc_lock_consistent_at_end(self):
        record, profile, analyzer = self.profile_for("inc-lock")
        assert not analyzer.consistent_at(record, record.t_start)
        assert analyzer.consistent_at(record, record.t_end)

    def test_all_lock_ext_consistent_until_release(self):
        record, profile, analyzer = self.profile_for(
            "all-lock-ext", release_delay=0.5
        )
        assert record.t_release is not None
        assert analyzer.consistent_at(record, record.t_release - 1e-6)

    def test_profile_collects_probe_times(self):
        record, profile, _ = self.profile_for("all-lock")
        assert profile.probed_times
        assert profile.any_consistent


class TestAnalyzerValidation:
    def test_record_without_audit_rejected(self):
        import dataclasses

        device, record = run_measurement_with_writes("no-lock", [])
        bare = dataclasses.replace(
            record, audit_block_hashes=(), audit_block_times=()
        )
        analyzer = ConsistencyAnalyzer(device.memory)
        with pytest.raises(ConfigurationError):
            analyzer.consistent_at(bare, 0.0)

    def test_consistent_instants_filter(self):
        device, record = run_measurement_with_writes("all-lock", [])
        analyzer = ConsistencyAnalyzer(device.memory)
        probes = [record.t_start, record.t_end]
        assert analyzer.consistent_instants(record, probes) == probes


class TestClaims:
    def test_known_claims(self):
        assert expected_consistency("dec-lock") == "instant t_s"
        assert expected_consistency("inc-lock") == "instant t_e"
        assert "t_r" in expected_consistency("all-lock-ext")
        assert expected_consistency("no-lock") == "none"

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ConfigurationError):
            expected_consistency("quantum-lock")
