"""Bench harness: comparison logic, artifact shape and CLI exit codes.

The expensive macro benches never run in tier-1 -- ``run_bench`` is
exercised with a monkeypatched suite.  The two cheap micro benches run
for real to pin the artifact contract (primary metric present, sane
values), since that is what the comparison and CI lean on.
"""

import json

import pytest

from repro.perf import bench
from repro.perf.bench import (
    BENCH_VERSION,
    bench_digest_cache,
    bench_engine_dispatch,
    bench_memory_fill,
    bench_trace_serialize,
    compare,
    git_revision,
    load_history,
    render_comparison,
    render_history,
    run_bench,
    timing_stats,
)


def artifact(benches, quick=True, revision="r1"):
    return {
        "version": BENCH_VERSION,
        "revision": revision,
        "quick": quick,
        "created_at": 0.0,
        "benches": benches,
    }


def one_bench(value, direction="higher", metric="speed"):
    return {metric: value, "primary": metric, "direction": direction}


class TestCompare:
    def test_higher_is_better_regression(self):
        rows = compare(
            artifact({"b": one_bench(70.0)}),
            artifact({"b": one_bench(100.0)}),
            threshold=0.20,
        )
        assert rows[0]["regressed"]
        assert rows[0]["ratio"] == pytest.approx(0.7)

    def test_higher_within_threshold_ok(self):
        rows = compare(
            artifact({"b": one_bench(90.0)}),
            artifact({"b": one_bench(100.0)}),
            threshold=0.20,
        )
        # 0.9 >= 1/1.2: inside the allowed band
        assert not rows[0]["regressed"]

    def test_lower_is_better_regression(self):
        rows = compare(
            artifact({"b": one_bench(130.0, direction="lower")}),
            artifact({"b": one_bench(100.0, direction="lower")}),
            threshold=0.20,
        )
        assert rows[0]["regressed"]

    def test_lower_within_threshold_ok(self):
        rows = compare(
            artifact({"b": one_bench(115.0, direction="lower")}),
            artifact({"b": one_bench(100.0, direction="lower")}),
            threshold=0.20,
        )
        assert not rows[0]["regressed"]

    def test_improvement_never_regresses(self):
        rows = compare(
            artifact({"hi": one_bench(500.0),
                      "lo": one_bench(10.0, direction="lower")}),
            artifact({"hi": one_bench(100.0),
                      "lo": one_bench(100.0, direction="lower")}),
        )
        assert not any(row["regressed"] for row in rows)

    def test_missing_bench_skipped(self):
        rows = compare(
            artifact({"new": one_bench(1.0)}),
            artifact({"old": one_bench(1.0)}),
        )
        assert rows == []

    def test_zero_baseline_skipped(self):
        rows = compare(
            artifact({"b": one_bench(1.0)}),
            artifact({"b": one_bench(0.0)}),
        )
        assert rows == []

    def test_render_lists_every_row(self):
        rows = compare(
            artifact({"a": one_bench(50.0), "b": one_bench(100.0)}),
            artifact({"a": one_bench(100.0), "b": one_bench(100.0)}),
        )
        text = render_comparison(rows)
        assert "REGRESSED" in text and " ok" in text
        assert "a" in text and "b" in text


class TestGateThresholds:
    """Noise-aware per-bench thresholds: the effective threshold is
    the widest of the CLI value and the bench's declared gate."""

    def wide_bench(self, value, gate=1.0):
        payload = one_bench(value)
        payload["gate_threshold"] = gate
        return payload

    def test_declared_gate_widens_the_cli_threshold(self):
        # 0.6x would regress at the CLI's 20%, but the bench declares
        # an absolute-throughput gate that only fails on a collapse
        rows = compare(
            artifact({"b": self.wide_bench(60.0)}),
            artifact({"b": self.wide_bench(100.0)}),
            threshold=0.20,
        )
        assert rows[0]["threshold"] == 1.0
        assert not rows[0]["regressed"]

    def test_collapse_fails_even_the_wide_gate(self):
        rows = compare(
            artifact({"b": self.wide_bench(40.0)}),
            artifact({"b": self.wide_bench(100.0)}),
            threshold=0.20,
        )
        assert rows[0]["regressed"]

    def test_cli_threshold_wins_when_wider(self):
        rows = compare(
            artifact({"b": self.wide_bench(60.0, gate=0.1)}),
            artifact({"b": self.wide_bench(100.0, gate=0.1)}),
            threshold=0.20,
        )
        assert rows[0]["threshold"] == pytest.approx(0.20)
        assert rows[0]["regressed"]

    def test_gate_falls_back_to_baseline_declaration(self):
        # older current artifacts may predate a bench's gate; the
        # baseline's declaration still applies
        rows = compare(
            artifact({"b": one_bench(60.0)}),
            artifact({"b": self.wide_bench(100.0)}),
            threshold=0.20,
        )
        assert rows[0]["threshold"] == 1.0
        assert not rows[0]["regressed"]

    def test_render_shows_gate_column(self):
        rows = compare(
            artifact({"b": self.wide_bench(60.0)}),
            artifact({"b": self.wide_bench(100.0)}),
        )
        assert "100%" in render_comparison(rows)


class TestTimingStats:
    def test_median_odd(self):
        stats = timing_stats([0.003, 0.001, 0.002])
        assert stats["median_ms"] == pytest.approx(2.0)
        assert stats["repeats"] == 3

    def test_median_even_and_spread(self):
        stats = timing_stats([0.001, 0.002, 0.004, 0.003])
        assert stats["median_ms"] == pytest.approx(2.5)
        # (max - min) / median = 0.003 / 0.0025
        assert stats["spread_pct"] == pytest.approx(120.0)

    def test_single_sample(self):
        stats = timing_stats([0.005])
        assert stats["median_ms"] == pytest.approx(5.0)
        assert stats["spread_pct"] == 0.0


class TestMicroBenches:
    def test_digest_cache_bench_shape(self):
        result = bench_digest_cache(quick=True)
        (name, payload), = result.items()
        assert payload["primary"] in payload
        assert payload[payload["primary"]] > 0

    def test_trace_serialize_bench_shape(self, tmp_path):
        result = bench_trace_serialize(True, tmp_path)
        (name, payload), = result.items()
        assert payload["direction"] == "higher"
        assert payload[payload["primary"]] > 0

    def test_engine_dispatch_bench_shape(self):
        result = bench_engine_dispatch(quick=True)
        (name, payload), = result.items()
        assert name == "engine.dispatch_noobs"
        assert payload[payload["primary"]] > 0
        assert payload["spread_pct"] >= 0.0
        assert payload["gate_threshold"] == bench.GATE_ABSOLUTE

    def test_memory_fill_bench_shape(self):
        result = bench_memory_fill(quick=True)
        (name, payload), = result.items()
        assert name == "memory.fill"
        # interned construction must beat per-byte regeneration
        assert payload["speedup"] > 1.0
        assert payload["median_ms"] > 0.0
        assert payload["gate_threshold"] == bench.GATE_RATIO

    def test_git_revision_is_short_string(self):
        revision = git_revision()
        assert isinstance(revision, str) and revision
        assert len(revision) <= 16


class TestHistory:
    def write(self, path, benches, created_at, revision, quick=False):
        payload = artifact(benches, quick=quick, revision=revision)
        payload["created_at"] = created_at
        path.write_text(json.dumps(payload))

    def test_loads_oldest_first_including_baseline(self, tmp_path):
        (tmp_path / "baseline").mkdir()
        self.write(tmp_path / "baseline" / "BENCH_seed.json",
                   {"b": one_bench(1.0)}, 1.0, "seed")
        self.write(tmp_path / "BENCH_r2.json",
                   {"b": one_bench(2.0)}, 2.0, "r2")
        history = load_history(tmp_path)
        assert [a["revision"] for a in history] == ["seed", "r2"]

    def test_unreadable_artifact_becomes_marker(self, tmp_path):
        (tmp_path / "BENCH_bad.json").write_text("{not json")
        self.write(tmp_path / "BENCH_ok.json",
                   {"b": one_bench(1.0)}, 1.0, "ok")
        history = load_history(tmp_path)
        assert any(a.get("unreadable") for a in history)
        text = render_history(history)
        assert "skipped unreadable artifact" in text
        assert "ok" in text

    def test_render_tabulates_per_revision(self, tmp_path):
        self.write(tmp_path / "BENCH_r1.json",
                   {"old": one_bench(1.0)}, 1.0, "r1")
        self.write(tmp_path / "BENCH_r2.json",
                   {"old": one_bench(2.0), "new": one_bench(3.0)},
                   2.0, "r2", quick=True)
        text = render_history(load_history(tmp_path))
        # quick artifacts are starred; benches missing from an older
        # revision render as '-'
        assert "r2*" in text and "r1" in text
        assert "old (speed)" in text and "new (speed)" in text
        assert " -" in text
        assert "2 artifact(s)" in text

    def test_empty_directory(self, tmp_path):
        assert render_history(load_history(tmp_path)) == \
            "no bench artifacts found"

    def test_history_action_skips_suite(self, tmp_path, capsys,
                                        monkeypatch):
        def boom(**_kw):  # pragma: no cover - must not run
            raise AssertionError("suite ran under the history action")

        monkeypatch.setattr(bench, "run_suite", boom)
        self.write(tmp_path / "BENCH_r1.json",
                   {"b": one_bench(1.0)}, 1.0, "r1")
        assert run_bench(Args(action="history", dir=str(tmp_path))) == 0
        assert "r1" in capsys.readouterr().out


class Args:
    def __init__(self, **kw):
        self.quick = kw.get("quick", True)
        self.out = kw.get("out")
        self.against = kw.get("against")
        self.threshold = kw.get("threshold", 0.20)
        self.action = kw.get("action", "run")
        self.dir = kw.get("dir", "benchmarks")


class TestRunBenchCli:
    @pytest.fixture
    def fake_suite(self, monkeypatch):
        def suite(quick=False, workdir=None):
            return artifact({"b": one_bench(100.0)}, quick=quick)

        monkeypatch.setattr(bench, "run_suite", suite)

    def test_writes_artifact_and_exits_zero(self, fake_suite, tmp_path,
                                            capsys):
        out = tmp_path / "bench.json"
        assert run_bench(Args(out=str(out))) == 0
        payload = json.loads(out.read_text())
        assert payload["version"] == BENCH_VERSION
        assert payload["benches"]["b"]["speed"] == 100.0
        assert "bench suite" in capsys.readouterr().out

    def test_clean_comparison_exits_zero(self, fake_suite, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(artifact({"b": one_bench(99.0)})))
        code = run_bench(Args(out=str(tmp_path / "c.json"),
                              against=str(base)))
        assert code == 0

    def test_regression_exits_one(self, fake_suite, tmp_path, capsys):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(artifact({"b": one_bench(1000.0)})))
        code = run_bench(Args(out=str(tmp_path / "c.json"),
                              against=str(base)))
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_quick_full_mismatch_noted(self, fake_suite, tmp_path, capsys):
        base = tmp_path / "base.json"
        base.write_text(
            json.dumps(artifact({"b": one_bench(100.0)}, quick=False))
        )
        run_bench(Args(out=str(tmp_path / "c.json"), against=str(base)))
        assert "mismatch" in capsys.readouterr().out
