"""Swarm topologies and collective attestation."""

import pytest

from repro.errors import ConfigurationError
from repro.malware.transient import TransientMalware
from repro.ra.verifier import Verifier
from repro.sim.engine import Simulator
from repro.swarm import SwarmAttestation, make_topology


def swarm_rig(count=7, shape="tree"):
    sim = Simulator()
    topology = make_topology(sim, count=count, shape=shape)
    verifier = Verifier(sim)
    swarm = SwarmAttestation(topology, verifier)
    return sim, topology, verifier, swarm


class TestTopology:
    def test_star_edges(self):
        sim = Simulator()
        topology = make_topology(sim, count=5, shape="star")
        assert sorted(topology.edges) == [(0, 1), (0, 2), (0, 3), (0, 4)]

    def test_line_distances(self):
        sim = Simulator()
        topology = make_topology(sim, count=5, shape="line")
        assert topology.hop_distance(0, 4) == 4
        assert topology.hop_distance(2, 2) == 0

    def test_tree_spanning_children(self):
        sim = Simulator()
        topology = make_topology(sim, count=7, shape="tree")
        children = topology.spanning_tree_children(root=0)
        assert children[0] == [1, 2]
        assert children[1] == [3, 4]
        assert children[2] == [5, 6]

    def test_unknown_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            make_topology(Simulator(), count=4, shape="donut")

    def test_device_index(self):
        sim = Simulator()
        topology = make_topology(sim, count=3, shape="line")
        assert topology.device_index("node2") == 2
        with pytest.raises(ConfigurationError):
            topology.device_index("ghost")

    def test_random_topology_connected(self):
        pytest.importorskip("networkx")
        sim = Simulator()
        topology = make_topology(sim, count=10, shape="random")
        for node in range(10):
            topology.hop_distance(0, node)  # raises if disconnected

    def test_latency_scales_with_hops(self):
        sim = Simulator()
        topology = make_topology(sim, count=5, shape="line",
                                 per_hop_latency=0.01)
        arrivals = []
        endpoint = topology.devices[4].nic
        endpoint.rx_signal.wait(lambda m: arrivals.append(sim.now))
        topology.devices[0].nic.send("node4", "ping", None)
        sim.run()
        assert arrivals == [pytest.approx(0.04)]


class TestCollectiveAttestation:
    def test_all_healthy(self):
        sim, topology, verifier, swarm = swarm_rig()
        nonce = swarm.attest()
        sim.run(until=30)
        result = swarm.result_for(nonce)
        assert result is not None
        assert result.valid
        assert result.all_healthy
        assert result.total == 7
        assert result.dirty_nodes == []

    def test_single_infection_localized(self):
        sim, topology, verifier, swarm = swarm_rig()
        TransientMalware(topology.devices[5], target_block=3,
                         infect_at=0.0)
        nonce = swarm.attest()
        sim.run(until=30)
        result = swarm.result_for(nonce)
        assert result.healthy == 6
        assert result.dirty_nodes == ["node5"]
        assert not result.all_healthy

    def test_multiple_infections(self):
        sim, topology, verifier, swarm = swarm_rig()
        for index in (2, 4, 6):
            TransientMalware(topology.devices[index], target_block=3,
                             infect_at=0.0, name=f"m{index}")
        nonce = swarm.attest()
        sim.run(until=30)
        result = swarm.result_for(nonce)
        assert result.healthy == 4
        assert result.dirty_nodes == ["node2", "node4", "node6"]

    def test_star_and_line_shapes_work(self):
        for shape, count in (("star", 6), ("line", 5)):
            sim, topology, verifier, swarm = swarm_rig(count=count,
                                                       shape=shape)
            nonce = swarm.attest()
            sim.run(until=60)
            result = swarm.result_for(nonce)
            assert result is not None and result.all_healthy

    def test_successive_rounds(self):
        sim, topology, verifier, swarm = swarm_rig(count=4, shape="star")
        first = swarm.attest()
        sim.run(until=30)
        second = swarm.attest()
        sim.run(until=60)
        assert swarm.result_for(first).all_healthy
        assert swarm.result_for(second).all_healthy
        assert first != second

    def test_aggregate_macs_verified_hop_by_hop(self):
        """A forged child aggregate is flagged and its subtree counted
        dirty instead of silently trusted."""
        sim, topology, verifier, swarm = swarm_rig(count=3, shape="line")
        # Tamper: node2's key at the verifier differs from the device's,
        # so node1 (its parent) sees a bad MAC.
        verifier.devices["node2"].key = b"\x00" * 32
        nonce = swarm.attest()
        sim.run(until=30)
        result = swarm.result_for(nonce)
        assert result is not None
        assert not result.all_healthy
