"""Span tracker: nesting, ordering, retrospective spans, null object."""

from repro.obs.spans import NULL_TRACKER, NullSpanTracker, Span, SpanTracker


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def tracker():
    clock = FakeClock()
    return SpanTracker(clock=clock), clock


class TestNesting:
    def test_begin_nests_under_open_parent(self):
        spans, clock = tracker()
        outer = spans.begin_span("ra.round", category="ra")
        clock.now = 1.0
        inner = spans.begin_span("ra.measurement", category="ra")
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert spans.children_of(outer) == [inner]

    def test_sibling_after_end_is_not_nested(self):
        spans, clock = tracker()
        first = spans.begin_span("a")
        clock.now = 1.0
        spans.end_span(first)
        second = spans.begin_span("b")
        assert second.parent_id is None

    def test_ids_are_sequential_in_recording_order(self):
        spans, _ = tracker()
        a = spans.begin_span("a")
        b = spans.begin_span("b")
        c = spans.add_span("c", 0.0, 1.0)
        assert [a.span_id, b.span_id, c.span_id] == [1, 2, 3]

    def test_three_deep_hierarchy(self):
        spans, _ = tracker()
        round_ = spans.begin_span("round")
        mp = spans.begin_span("measurement")
        block = spans.begin_span("block")
        assert block.parent_id == mp.span_id
        assert mp.parent_id == round_.span_id


class TestEndSemantics:
    def test_end_stamps_clock_and_merges_args(self):
        spans, clock = tracker()
        span = spans.begin_span("mp", blocks=64)
        clock.now = 2.5
        spans.end_span(span, digest="abcd")
        assert span.end == 2.5
        assert span.duration == 2.5
        assert span.args == {"blocks": 64, "digest": "abcd"}
        assert span.finished

    def test_end_is_idempotent(self):
        spans, clock = tracker()
        span = spans.begin_span("mp")
        clock.now = 1.0
        spans.end_span(span)
        clock.now = 9.0
        spans.end_span(span)
        assert span.end == 1.0

    def test_out_of_order_end_tolerated(self):
        # an extended lock-hold outlives the measurement that took it
        spans, clock = tracker()
        outer = spans.begin_span("lock")
        inner = spans.begin_span("mp")
        clock.now = 1.0
        spans.end_span(outer)
        clock.now = 2.0
        spans.end_span(inner)
        assert outer.end == 1.0 and inner.end == 2.0
        assert spans.open_spans() == []

    def test_open_spans_outermost_first(self):
        spans, _ = tracker()
        a = spans.begin_span("a")
        b = spans.begin_span("b")
        assert spans.open_spans() == [a, b]

    def test_duration_zero_while_open(self):
        spans, clock = tracker()
        span = spans.begin_span("open")
        clock.now = 5.0
        assert span.duration == 0.0 and not span.finished


class TestRetrospective:
    def test_add_span_does_not_touch_stack(self):
        spans, _ = tracker()
        open_one = spans.begin_span("outer")
        added = spans.add_span("net.delivery", 1.0, 2.0, category="net",
                               kind="ra.request")
        assert spans.open_spans() == [open_one]
        assert added.finished and added.duration == 1.0
        assert added.parent_id is None

    def test_add_span_explicit_parent(self):
        spans, _ = tracker()
        parent = spans.begin_span("round")
        child = spans.add_span("rtt", 0.0, 1.0, parent=parent)
        assert child.parent_id == parent.span_id


class TestQueries:
    def test_find_by_name_and_category(self):
        spans, _ = tracker()
        spans.begin_span("a", category="ra")
        spans.begin_span("a", category="net")
        spans.begin_span("b", category="ra")
        assert len(spans.find(name="a")) == 2
        assert len(spans.find(category="ra")) == 2
        assert len(spans.find(name="a", category="ra")) == 1

    def test_len_and_iter_in_recording_order(self):
        spans, _ = tracker()
        spans.begin_span("a")
        spans.add_span("b", 0.0, 1.0)
        assert len(spans) == 2
        assert [s.name for s in spans] == ["a", "b"]

    def test_to_dict_sorts_args(self):
        span = Span(7, 3, "mp", "ra", 1.0, 2.0, {"z": 1, "a": 2})
        data = span.to_dict()
        assert list(data["args"]) == ["a", "z"]
        assert data["span_id"] == 7 and data["parent_id"] == 3


class TestNullTracker:
    def test_shared_singleton_records_nothing(self):
        assert isinstance(NULL_TRACKER, NullSpanTracker)
        assert not NULL_TRACKER.enabled
        span = NULL_TRACKER.begin_span("anything", category="ra", k=1)
        NULL_TRACKER.end_span(span, extra=2)
        NULL_TRACKER.add_span("more", 0.0, 1.0)
        assert len(NULL_TRACKER) == 0
        assert list(NULL_TRACKER) == []
        assert NULL_TRACKER.open_spans() == []
        assert NULL_TRACKER.find(name="anything") == []
        assert NULL_TRACKER.children_of(span) == []

    def test_null_span_is_shared_and_closed(self):
        a = NULL_TRACKER.begin_span("a")
        b = NULL_TRACKER.begin_span("b")
        assert a is b
        assert a.finished
