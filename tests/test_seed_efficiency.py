"""SeED's efficiency claims (Section 3.3).

"Lack of interaction makes SeED inherently resilient to DoS attacks,
which aim at exhausting Prv's resources ... Furthermore, SeED improves
the efficiency of RA due to its low communication overhead and low
network congestion."
"""

from repro.apps.firealarm import FireAlarmApp
from repro.ra.seed import SeedMonitor, SeedService
from repro.ra.service import OnDemandVerifier
from repro.ra.smart import SmartAttestation
from repro.ra.verifier import Verifier
from repro.sim.device import Device
from repro.sim.engine import Simulator
from repro.sim.network import Channel
from repro.units import MiB


class TestCommunicationOverhead:
    def test_one_message_per_verified_measurement(self):
        """SeED: N verified measurements cost N messages; on-demand
        costs 2N (request + report)."""
        measurements = 5

        # --- SeED ---------------------------------------------------
        sim = Simulator()
        device = Device(sim, block_count=8, block_size=32)
        device.standard_layout()
        channel = Channel(sim, latency=0.002)
        device.attach_network(channel)
        verifier = Verifier(sim)
        verifier.enroll(device)
        service = SeedService(device, b"seed", min_gap=2.0, max_gap=3.0,
                              trigger_count=measurements)
        SeedMonitor(verifier, channel, device.name, b"seed",
                    min_gap=2.0, max_gap=3.0,
                    trigger_count=measurements, grace=1.0)
        service.start()
        sim.run(until=60)
        seed_messages = len(channel.log)
        assert verifier.verdict_counts().get("healthy") == measurements

        # --- on-demand ------------------------------------------------
        sim2 = Simulator()
        device2 = Device(sim2, block_count=8, block_size=32)
        device2.standard_layout()
        channel2 = Channel(sim2, latency=0.002)
        device2.attach_network(channel2)
        verifier2 = Verifier(sim2)
        verifier2.enroll(device2)
        SmartAttestation(device2).install()
        driver = OnDemandVerifier(verifier2, channel2)
        for index in range(measurements):
            sim2.schedule_at(index * 3.0 + 0.1, driver.request,
                             device2.name)
        sim2.run(until=60)
        ondemand_messages = len(channel2.log)

        assert seed_messages == measurements
        assert ondemand_messages == 2 * measurements
        assert seed_messages * 2 == ondemand_messages


class TestDosResilience:
    def run_under_flood(self, install_smart, flood_rate=50,
                        horizon=20.0):
        """A request flood against the prover; returns the critical
        task's stats and the count of measurements the prover ran."""
        sim = Simulator()
        # One atomic measurement (~0.8 s over 128 MiB) exceeds the
        # critical task's 0.5 s period: a sustained request flood is
        # then a working denial of service against interactive RA.
        device = Device(sim, block_count=16, block_size=32,
                        sim_block_size=8 * MiB)
        device.standard_layout()
        channel = Channel(sim, latency=0.001)
        device.attach_network(channel)
        verifier = Verifier(sim)
        verifier.enroll(device)
        app = FireAlarmApp(device, period=0.5, sample_wcet=0.002,
                           priority=100)

        # Sink for the prover's outbound reports (the legitimate Vrf).
        channel.make_endpoint("vrf")
        measurements_run = [0]
        if install_smart:
            service = SmartAttestation(device)
            service.install()
        else:
            service = SeedService(device, b"dos-seed", min_gap=4.0,
                                  max_gap=6.0, trigger_count=3)
            service.start()

        attacker = channel.make_endpoint("attacker")
        interval = 1.0 / flood_rate
        count = int(horizon / interval)
        for index in range(count):
            sim.schedule_at(
                1.0 + index * interval,
                attacker.send, device.name, "att_request",
                {"nonce": b"junk%d" % index, "rounds": 1},
            )
        sim.run(until=horizon)
        if install_smart:
            measurements_run[0] = service.requests_handled
        else:
            measurements_run[0] = len(service.reports_sent)
        return app.task.stats(), measurements_run[0]

    def test_interactive_prover_exhausted_by_flood(self):
        """Under SMART, every bogus request triggers a full atomic
        measurement: the attacker owns the CPU and the critical task
        starves."""
        stats, handled = self.run_under_flood(install_smart=True)
        assert handled > 10  # the prover kept serving the attacker
        assert stats.deadline_misses > 5
        assert stats.worst_response > 0.5

    def test_seed_prover_ignores_the_flood(self):
        """SeED accepts no inbound requests at all: the flood changes
        nothing; the critical task never misses."""
        stats, pushed = self.run_under_flood(install_smart=False)
        assert pushed == 3  # only the secret-timer measurements ran
        assert stats.deadline_misses == 0
        assert stats.worst_response < 0.3
