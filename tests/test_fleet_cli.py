"""The `repro fleet` subcommand."""

import json

import pytest

from repro.cli import main


class TestPlan:
    def test_plan_lists_runs(self, capsys):
        assert main(["fleet", "plan", "--campaign", "matrix",
                     "--seeds", "1", "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "matrix-fleet" in out
        assert "smart-none-s0000-" in out
        lines = [l for l in out.splitlines() if "-s0000-" in l]
        assert len(lines) == 5

    def test_plan_from_spec_file(self, tmp_path, capsys):
        spec_file = tmp_path / "campaign.json"
        spec_file.write_text(json.dumps({
            "name": "from-file",
            "base": {"block_count": 8},
            "axes": {"mechanism": ["smart", "erasmus"]},
            "seeds": [0, 1],
        }))
        assert main(["fleet", "plan", "--spec", str(spec_file)]) == 0
        out = capsys.readouterr().out
        assert "from-file" in out and "4 runs" in out

    def test_missing_subcommand_exits(self):
        with pytest.raises(SystemExit):
            main(["fleet"])


class TestRunAndSummarize:
    def run_small(self, tmp_path, capsys, extra=()):
        code = main([
            "fleet", "run", "--campaign", "locking", "--seeds", "1",
            "--limit", "4", "--out", str(tmp_path), *extra,
        ])
        assert code == 0
        return capsys.readouterr().out

    def test_run_writes_artifacts_and_summary(self, tmp_path, capsys):
        out = self.run_small(tmp_path, capsys)
        assert "4 runs" in out
        assert "ok=4" in out
        assert "mechanism" in out  # the summary table
        root = tmp_path / "locking-availability"
        assert (root / "runs.jsonl").exists()
        assert (root / "manifest.json").exists()
        manifest = json.loads((root / "manifest.json").read_text())
        assert manifest["run_count"] == 4

    def test_resume_skips_finished_runs(self, tmp_path, capsys):
        self.run_small(tmp_path, capsys)
        out = self.run_small(tmp_path, capsys, extra=["--resume"])
        assert "0 runs" in out  # nothing left to execute
        manifest = json.loads(
            (tmp_path / "locking-availability" / "manifest.json").read_text()
        )
        assert manifest["run_count"] == 4  # artifacts keep all results

    def test_summarize_reads_artifacts(self, tmp_path, capsys):
        self.run_small(tmp_path, capsys)
        assert main(["fleet", "summarize", "--campaign",
                     "locking-availability", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "locking-availability" in out and "no-lock" in out

    def test_summarize_without_artifacts_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["fleet", "summarize", "--campaign", "ghost",
                  "--out", str(tmp_path)])
