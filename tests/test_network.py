"""Channels, endpoints, and the three in-path adversaries."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.network import (
    Channel,
    DelayAdversary,
    DropAdversary,
    Endpoint,
    ReplayAdversary,
)


def rig(latency=0.01):
    sim = Simulator()
    channel = Channel(sim, latency=latency)
    a = channel.make_endpoint("a")
    b = channel.make_endpoint("b")
    return sim, channel, a, b


class TestDelivery:
    def test_basic_latency(self):
        sim, channel, a, b = rig(latency=0.25)
        a.send("b", "ping", {"n": 1})
        sim.run()
        assert b.received_count == 1
        message = b.receive()
        assert message.kind == "ping"
        assert message.payload == {"n": 1}
        assert sim.now == pytest.approx(0.25)

    def test_rx_signal_fires_on_delivery(self):
        sim, channel, a, b = rig()
        got = []
        b.rx_signal.wait(lambda msg: got.append(msg.kind))
        a.send("b", "hello", None)
        sim.run()
        assert got == ["hello"]

    def test_receive_empty_returns_none(self):
        _, _, a, _ = rig()
        assert a.receive() is None

    def test_drain(self):
        sim, channel, a, b = rig()
        a.send("b", "x", 1)
        a.send("b", "y", 2)
        sim.run()
        assert [m.kind for m in b.drain()] == ["x", "y"]
        assert b.inbox == []

    def test_unknown_destination_rejected(self):
        _, channel, a, _ = rig()
        with pytest.raises(ConfigurationError):
            a.send("ghost", "x", None)

    def test_unattached_endpoint_rejected(self):
        sim = Simulator()
        lonely = Endpoint(sim, "lonely")
        with pytest.raises(ConfigurationError):
            lonely.send("a", "x", None)

    def test_duplicate_endpoint_name_rejected(self):
        sim = Simulator()
        channel = Channel(sim)
        channel.make_endpoint("a")
        with pytest.raises(ConfigurationError):
            channel.make_endpoint("a")

    def test_callable_latency(self):
        sim = Simulator()
        channel = Channel(sim, latency=lambda msg: 0.5 if msg.kind == "slow" else 0.1)
        a = channel.make_endpoint("a")
        b = channel.make_endpoint("b")
        arrivals = []
        b.rx_signal.wait(lambda m: arrivals.append((m.kind, sim.now)))
        a.send("b", "slow", None)
        sim.run()
        assert arrivals == [("slow", pytest.approx(0.5))]

    def test_log_records_all_sends(self):
        sim, channel, a, b = rig()
        a.send("b", "x", None)
        b.send("a", "y", None)
        assert [m.kind for m in channel.log] == ["x", "y"]


class TestDropAdversary:
    def test_drops_matching_kind(self):
        sim, channel, a, b = rig()
        adversary = DropAdversary(probability=1.0, kind="report")
        channel.add_filter(adversary)
        a.send("b", "report", None)
        a.send("b", "other", None)
        sim.run()
        assert [m.kind for m in b.drain()] == ["other"]
        assert adversary.dropped_count == 1
        assert len(channel.dropped) == 1

    def test_zero_probability_drops_nothing(self):
        sim, channel, a, b = rig()
        channel.add_filter(DropAdversary(probability=0.0))
        for _ in range(5):
            a.send("b", "x", None)
        sim.run()
        assert b.received_count == 5

    def test_invalid_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            DropAdversary(probability=1.5)


class TestDelayAdversary:
    def test_adds_delay_to_matching(self):
        sim, channel, a, b = rig(latency=0.01)
        channel.add_filter(
            DelayAdversary(0.5, kind="att_request", base_latency=0.01)
        )
        arrivals = []
        b.rx_signal.wait(lambda m: arrivals.append(sim.now))
        a.send("b", "att_request", None)
        sim.run()
        assert arrivals == [pytest.approx(0.51)]

    def test_other_kinds_unaffected(self):
        sim, channel, a, b = rig(latency=0.01)
        channel.add_filter(
            DelayAdversary(0.5, kind="att_request", base_latency=0.01)
        )
        arrivals = []
        b.rx_signal.wait(lambda m: arrivals.append(sim.now))
        a.send("b", "other", None)
        sim.run()
        assert arrivals == [pytest.approx(0.01)]

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            DelayAdversary(-0.1)


class TestReplayAdversary:
    def test_reinjects_copies(self):
        sim, channel, a, b = rig()
        adversary = ReplayAdversary(
            "report", replay_delay=1.0, copies=2, base_latency=0.01
        )
        channel.add_filter(adversary)
        a.send("b", "report", {"c": 9})
        sim.run()
        assert b.received_count == 3  # original + 2 replays
        assert len(adversary.captured) == 1

    def test_replay_timing(self):
        sim, channel, a, b = rig()
        channel.add_filter(
            ReplayAdversary("report", replay_delay=2.0, copies=1,
                            base_latency=0.01)
        )
        arrivals = []

        def on_rx(msg):
            b.rx_signal.wait(on_rx)
            arrivals.append(sim.now)

        b.rx_signal.wait(on_rx)
        a.send("b", "report", None)
        sim.run()
        assert arrivals == [pytest.approx(0.01), pytest.approx(2.01)]

    def test_non_matching_passes_once(self):
        sim, channel, a, b = rig()
        channel.add_filter(ReplayAdversary("report", copies=3))
        a.send("b", "other", None)
        sim.run()
        assert b.received_count == 1
