"""Periodic tasks: releases, deadlines, lock-blocked writers."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.device import Device
from repro.sim.engine import Simulator
from repro.sim.process import Atomic, Compute
from repro.sim.task import PeriodicTask, write_with_retry


def make_cpu_device():
    sim = Simulator()
    device = Device(sim, block_count=8, block_size=16)
    return sim, device


class TestReleases:
    def test_job_count_matches_horizon(self):
        sim, device = make_cpu_device()
        task = PeriodicTask(device.cpu, "t", period=1.0, wcet=0.1)
        sim.run(until=5.5)
        assert task.stats().jobs_released == 6  # releases at 0..5

    def test_max_jobs_limits(self):
        sim, device = make_cpu_device()
        task = PeriodicTask(device.cpu, "t", period=1.0, wcet=0.1,
                            max_jobs=3)
        sim.run(until=10.0)
        assert task.stats().jobs_released == 3

    def test_offset_shifts_first_release(self):
        sim, device = make_cpu_device()
        task = PeriodicTask(device.cpu, "t", period=1.0, wcet=0.1,
                            offset=0.5, max_jobs=1)
        sim.run(until=3.0)
        assert task.jobs[0].release == pytest.approx(0.5)
        assert task.jobs[0].start >= 0.5

    def test_response_time_unloaded(self):
        sim, device = make_cpu_device()
        task = PeriodicTask(device.cpu, "t", period=1.0, wcet=0.25,
                            max_jobs=4)
        sim.run(until=10.0)
        stats = task.stats()
        assert stats.jobs_finished == 4
        assert stats.worst_response == pytest.approx(0.25)
        assert stats.deadline_misses == 0

    def test_invalid_period_rejected(self):
        _, device = make_cpu_device()
        with pytest.raises(ConfigurationError):
            PeriodicTask(device.cpu, "t", period=0.0, wcet=0.1)

    def test_wcet_exceeding_period_rejected(self):
        _, device = make_cpu_device()
        with pytest.raises(ConfigurationError):
            PeriodicTask(device.cpu, "t", period=1.0, wcet=2.0)


class TestDeadlines:
    def test_atomic_hog_causes_misses(self):
        """An atomic 3-second measurement starves a 1s-period task."""
        sim, device = make_cpu_device()
        task = PeriodicTask(device.cpu, "t", period=1.0, wcet=0.01,
                            priority=100, max_jobs=6)

        def hog(proc):
            yield Atomic(True)
            yield Compute(3.0)
            yield Atomic(False)

        device.cpu.spawn("hog", hog, priority=1, delay=0.5)
        sim.run(until=10.0)
        stats = task.stats()
        assert stats.deadline_misses >= 2
        assert stats.worst_response > 1.0

    def test_explicit_deadline(self):
        sim, device = make_cpu_device()
        task = PeriodicTask(device.cpu, "t", period=1.0, wcet=0.2,
                            deadline=0.1, max_jobs=2)
        sim.run(until=5.0)
        # wcet 0.2 > deadline 0.1: every job misses.
        assert task.stats().deadline_misses == 2


class TestWriterJobs:
    def test_write_with_retry_immediate(self):
        sim, device = make_cpu_device()
        done = []

        def job(proc, task, index):
            yield Compute(0.001)
            yield from write_with_retry(
                proc, device.memory, 2, b"\x55" * 16, "writer",
                record=task.jobs[-1],
            )
            done.append(sim.now)

        PeriodicTask(device.cpu, "w", period=1.0, wcet=0.001,
                     job=job, max_jobs=1)
        sim.run(until=2.0)
        assert done and device.memory.read_block(2) == b"\x55" * 16

    def test_write_with_retry_waits_for_unlock(self):
        sim, device = make_cpu_device()
        device.mpu.lock(2)
        sim.schedule(2.5, device.mpu.unlock, 2)
        committed = []

        def job(proc, task, index):
            yield Compute(0.001)
            yield from write_with_retry(
                proc, device.memory, 2, b"\x55" * 16, "writer",
                record=task.jobs[-1],
            )
            committed.append(sim.now)

        task = PeriodicTask(device.cpu, "w", period=10.0, wcet=0.001,
                            job=job, max_jobs=1)
        sim.run(until=5.0)
        assert committed and committed[0] >= 2.5
        assert task.stats().write_faults == 1

    def test_unfinished_job_counts_as_miss(self):
        sim, device = make_cpu_device()
        device.mpu.lock(2)  # never released

        def job(proc, task, index):
            yield Compute(0.001)
            yield from write_with_retry(
                proc, device.memory, 2, b"\x00" * 16, "w",
                record=task.jobs[-1],
            )

        task = PeriodicTask(device.cpu, "w", period=1.0, wcet=0.001,
                            job=job, max_jobs=1)
        sim.run(until=5.0)
        stats = task.stats()
        assert stats.jobs_released == 1
        assert stats.jobs_finished == 0
        assert stats.deadline_misses == 1
