"""Section 2.3's two treatments of the high-entropy data region D.

"Prv can return the fixed-size measurement result produced by MP over
M, accompanied by a copy of D. ... Furthermore, if content of D is
irrelevant to Vrf, Prv can easily zero it out."
"""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.ra.measurement import MeasurementConfig, MeasurementProcess
from repro.ra.report import Verdict
from repro.ra.verifier import Verifier
from repro.sim.device import Device
from repro.sim.engine import Simulator


def measured(device, verifier, nonce=b"d", **config_kwargs):
    config = MeasurementConfig(**config_kwargs)
    mp = MeasurementProcess(device, config, nonce=nonce)
    device.cpu.spawn("mp", mp.run, priority=50)
    device.sim.run(until=device.sim.now + 100)
    return mp.record


def rig():
    sim = Simulator()
    device = Device(sim, block_count=8, block_size=32)
    device.standard_layout()
    verifier = Verifier(sim)
    verifier.enroll(device)
    return device, verifier


class TestAttachMutable:
    def test_dirty_data_verifies_with_copy(self):
        """App writes to D no longer read as compromise: the verifier
        reproduces the digest from the shipped copy."""
        device, verifier = rig()
        data_block = device.memory.regions["data"].start
        device.memory.write(data_block, b"\x21" * 32, "app")
        record = measured(device, verifier, attach_mutable=True)
        assert verifier.verify_record(record) is Verdict.HEALTHY
        attached = dict(record.data_copy)
        assert attached[data_block] == b"\x21" * 32

    def test_copy_covers_whole_data_region(self):
        device, verifier = rig()
        record = measured(device, verifier, attach_mutable=True)
        data = device.memory.regions["data"]
        assert sorted(i for i, _ in record.data_copy) == list(
            data.blocks()
        )

    def test_code_changes_still_detected(self):
        device, verifier = rig()
        device.memory.write(1, b"\x66" * 32, "malware")  # code block
        record = measured(device, verifier, attach_mutable=True)
        assert verifier.verify_record(record) is Verdict.COMPROMISED

    def test_copy_is_authenticated(self):
        """Tampering with the shipped D in flight breaks the report
        MAC -- the copy is inside the authenticated serialization."""
        from repro.ra.report import AttestationReport

        device, verifier = rig()
        record = measured(device, verifier, attach_mutable=True)
        report = AttestationReport.authenticate(
            device.attestation_key, device.name, [record]
        )
        assert report.verify_tag(device.attestation_key)
        tampered_record = dataclasses.replace(
            record,
            data_copy=tuple(
                (index, b"\x00" * 32) for index, _ in record.data_copy
            ),
        )
        forged = AttestationReport(
            report.device, (tampered_record,), report.auth_tag,
            report.sent_counter,
        )
        assert not forged.verify_tag(device.attestation_key)

    def test_code_block_in_copy_flagged(self):
        """A malicious prover cannot launder a code block as 'data'."""
        device, verifier = rig()
        device.memory.write(1, b"\x66" * 32, "malware")
        record = measured(device, verifier, attach_mutable=True)
        laundered = dataclasses.replace(
            record,
            data_copy=record.data_copy + ((1, b"\x66" * 32),),
        )
        assert verifier.verify_record(laundered) is Verdict.COMPROMISED

    def test_malware_in_shipped_d_is_visible_to_vrf(self):
        """The copy does not *hide* D from the verifier -- unlike
        zeroing, Vrf receives D's bytes and can analyze them (the
        paper's reason shipping makes sense when Vrf cares about D)."""
        device, verifier = rig()
        data_block = device.memory.regions["data"].start
        payload = b"EV1L".ljust(32, b"\x00")
        device.memory.write(data_block, payload, "malware")
        record = measured(device, verifier, attach_mutable=True)
        # Digest-wise the record is consistent...
        assert verifier.verify_record(record) is Verdict.HEALTHY
        # ...but the suspicious bytes are in the verifier's hands.
        assert dict(record.data_copy)[data_block] == payload


class TestMutualExclusion:
    def test_both_options_rejected(self):
        with pytest.raises(ConfigurationError):
            MeasurementConfig(normalize_mutable=True,
                              attach_mutable=True)

    def test_plain_measurement_has_no_copy(self):
        device, verifier = rig()
        record = measured(device, verifier)
        assert record.data_copy == ()

    def test_normalized_measurement_has_no_copy(self):
        device, verifier = rig()
        record = measured(device, verifier, normalize_mutable=True)
        assert record.data_copy == ()


class TestSizeTradeoff:
    def test_report_growth_is_d_sized(self):
        """'this only makes sense if |D| is small, i.e. |D| << L':
        the canonical record grows by exactly the data region."""
        device, verifier = rig()
        plain = measured(device, verifier, nonce=b"x")
        shipped = measured(device, verifier, nonce=b"x",
                           attach_mutable=True)
        growth = len(shipped.canonical_bytes()) - len(
            plain.canonical_bytes()
        )
        data = device.memory.regions["data"]
        expected = data.length * (device.memory.block_size + 4)
        assert growth == expected
