"""Units and formatting helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.units import (
    GiB,
    KiB,
    MiB,
    format_rate,
    format_size,
    format_time,
    mb_per_s,
    parse_size,
)


class TestParseSize:
    def test_plain_bytes(self):
        assert parse_size("512") == 512

    def test_explicit_byte_suffix(self):
        assert parse_size("512B") == 512

    def test_kb_is_binary(self):
        assert parse_size("4KB") == 4 * KiB

    def test_mixed_case_and_spaces(self):
        assert parse_size(" 2 GiB ") == 2 * GiB

    def test_mb_alias(self):
        assert parse_size("100MB") == 100 * MiB

    def test_unknown_suffix_rejected(self):
        with pytest.raises(ValueError):
            parse_size("5 parsecs")

    def test_missing_number_rejected(self):
        with pytest.raises(ValueError):
            parse_size("MiB")

    @given(st.integers(min_value=0, max_value=10**6))
    def test_roundtrip_plain(self, value):
        assert parse_size(str(value)) == value


class TestFormatting:
    def test_format_size_bytes(self):
        assert format_size(512) == "512B"

    def test_format_size_gib(self):
        assert format_size(2 * GiB) == "2.0GiB"

    def test_format_size_mib(self):
        assert format_size(3 * MiB) == "3.0MiB"

    def test_format_time_microseconds(self):
        assert format_time(0.0000005).endswith("us")

    def test_format_time_milliseconds(self):
        assert format_time(0.005).endswith("ms")

    def test_format_time_seconds(self):
        assert format_time(14.0) == "14.000s"

    def test_format_time_negative(self):
        assert format_time(-1.0).startswith("-")

    def test_format_rate(self):
        assert format_rate(110 * MiB) == "110.0MiB/s"

    def test_mb_per_s(self):
        assert mb_per_s(1.0) == MiB

    @given(st.floats(min_value=1e-9, max_value=1e5, allow_nan=False))
    def test_format_time_always_has_unit(self, seconds):
        text = format_time(seconds)
        assert text.endswith("s")  # us / ms / s all end in 's'
