"""Software-based attestation: the timing game and its fragility."""

import pytest

from repro.errors import ConfigurationError
from repro.malware.transient import TransientMalware
from repro.ra.software import (
    SoftwareAttestation,
    SoftwareVerifier,
    software_checksum,
)
from repro.sim.device import Device
from repro.sim.engine import Simulator
from repro.sim.network import Channel
from repro.units import MiB


def swatt_rig(redirect_penalty=0.0, forgery_speedup=1.0, infected=False):
    sim = Simulator()
    device = Device(sim, block_count=16, block_size=32,
                    sim_block_size=MiB)
    channel = Channel(sim, latency=0.005)
    device.attach_network(channel)
    service = SoftwareAttestation(
        device, redirect_penalty=redirect_penalty,
        forgery_speedup=forgery_speedup,
    )
    service.install()
    reads = device.block_count * service.iterations
    honest = device.timing.hash_time(
        "sha256", device.memory.sim_block_size * reads
    )
    verifier = SoftwareVerifier(
        channel,
        reference_blocks=list(device.memory.benign_image()),
        honest_time=honest,
    )
    if infected:
        TransientMalware(device, target_block=5, infect_at=0.0)
    return sim, device, verifier


class TestChecksum:
    def test_deterministic(self):
        blocks = [bytes([i]) * 32 for i in range(8)]
        assert software_checksum(blocks, b"c") == software_checksum(
            blocks, b"c"
        )

    def test_challenge_sensitivity(self):
        blocks = [bytes([i]) * 32 for i in range(8)]
        assert software_checksum(blocks, b"c1") != software_checksum(
            blocks, b"c2"
        )

    def test_content_sensitivity(self):
        blocks = [bytes([i]) * 32 for i in range(8)]
        tampered = list(blocks)
        tampered[3] = b"\xFF" * 32
        assert software_checksum(blocks, b"c") != software_checksum(
            tampered, b"c"
        )

    def test_order_sensitivity(self):
        """Swapping two equal-weight blocks changes the result: the
        checksum is strongly ordered, not a plain XOR."""
        blocks = [bytes([i]) * 32 for i in range(8)]
        swapped = list(blocks)
        swapped[0], swapped[1] = swapped[1], swapped[0]
        assert software_checksum(blocks, b"c") != software_checksum(
            swapped, b"c"
        )

    def test_64_bit_state(self):
        blocks = [b"\x00" * 32] * 4
        assert 0 <= software_checksum(blocks, b"c") < 2**64


class TestHonestDevice:
    def test_accepted(self):
        sim, device, verifier = swatt_rig()
        sim.schedule_at(0.5, verifier.challenge, device.name)
        sim.run(until=30)
        assert len(verifier.verdicts) == 1
        verdict = verifier.verdicts[0]
        assert verdict.correct and verdict.accepted

    def test_multiple_challenges_fresh_each_time(self):
        sim, device, verifier = swatt_rig()
        sim.schedule_at(0.5, verifier.challenge, device.name)
        sim.schedule_at(5.0, verifier.challenge, device.name)
        sim.run(until=30)
        assert len(verifier.verdicts) == 2
        assert all(v.accepted for v in verifier.verdicts)


class TestNaiveMalware:
    def test_caught_by_checksum(self):
        """Malware that stays resident without redirecting reads is
        caught by plain correctness."""
        sim, device, verifier = swatt_rig(infected=True)
        sim.schedule_at(0.5, verifier.challenge, device.name)
        sim.run(until=30)
        verdict = verifier.verdicts[0]
        assert not verdict.correct
        assert not verdict.accepted


class TestRedirectingMalware:
    def test_caught_by_timing(self):
        """Redirection makes the checksum correct but measurably late
        -- the Pioneer defense."""
        sim, device, verifier = swatt_rig(
            redirect_penalty=2e-3, infected=True
        )
        sim.schedule_at(0.5, verifier.challenge, device.name)
        sim.run(until=60)
        verdict = verifier.verdicts[0]
        assert verdict.correct
        assert not verdict.accepted
        assert "late" in verdict.detail
        assert verdict.elapsed > verdict.threshold


class TestForgeryAttack:
    def test_optimized_adversary_defeats_timing(self):
        """The [8] attack class: an adversary faster than the
        verifier's assumption hides the redirection penalty entirely --
        'security of this approach is uncertain'."""
        sim, device, verifier = swatt_rig(
            redirect_penalty=2e-3, forgery_speedup=0.5, infected=True
        )
        sim.schedule_at(0.5, verifier.challenge, device.name)
        sim.run(until=60)
        verdict = verifier.verdicts[0]
        assert verdict.correct
        assert verdict.accepted  # the scheme fails against this foe

    def test_invalid_speedup_rejected(self):
        sim = Simulator()
        device = Device(sim, block_count=4, block_size=16)
        device.attach_network(Channel(sim))
        with pytest.raises(ConfigurationError):
            SoftwareAttestation(device, forgery_speedup=0.0)


class TestVerifierRobustness:
    def test_unsolicited_response_ignored(self):
        sim, device, verifier = swatt_rig()
        from repro.ra.software import ChecksumResponse

        endpoint = verifier.channel.make_endpoint("stranger")
        endpoint.send(
            verifier.endpoint.name,
            "swatt_response",
            ChecksumResponse("ghost", b"unknown", 0, 0.0, 0.0),
        )
        sim.run(until=5)
        assert verifier.verdicts == []
