"""Unit tests for the resilience primitives: the FaultPlan DSL, the
RetryPolicy backoff math, the FaultInjector channel filter and the
OutcomeReport degradation ledger."""

import math

import pytest

from repro.apps.metrics import AvailabilityReport
from repro.errors import ConfigurationError
from repro.resilience import FaultPlan, OutcomeReport, RetryPolicy
from repro.resilience.faults import FaultInjector
from repro.resilience.outcome import (
    OUTCOME_OK,
    OUTCOME_RESET_ABORTED,
    OUTCOME_RETRIED_OK,
    OUTCOME_TIMED_OUT,
)
from repro.sim import Message, Simulator


class TestFaultPlanDsl:
    def test_full_grammar(self):
        plan = FaultPlan.parse(
            "loss=0.3@0:30;jitter=0.02@5:15;corrupt=0.1;"
            "reset@6;drift=0.01@10",
            seed=b"t",
        )
        kinds = [(w.kind, w.start, w.end, w.magnitude) for w in plan.windows]
        assert kinds == [
            ("loss", 0.0, 30.0, 0.3),
            ("jitter", 5.0, 15.0, 0.02),
            ("corrupt", 0.0, math.inf, 0.1),
        ]
        assert plan.resets == [6.0]
        assert plan.drifts == [(10.0, 0.01)]
        assert not plan.empty

    def test_open_ended_window(self):
        plan = FaultPlan.parse("loss=0.5@5")
        (window,) = plan.windows
        assert window.start == 5.0
        assert window.end == math.inf
        assert window.active(5.0) and window.active(1e9)
        assert not window.active(4.999)

    def test_empty_string_is_empty_plan(self):
        assert FaultPlan.parse("").empty
        assert FaultPlan.parse(" ; ; ").empty

    @pytest.mark.parametrize(
        "text",
        [
            "explode=1",          # unknown term
            "reset=3@4",          # reset takes no value
            "reset",              # reset needs a time
            "reset@6:10",         # reset is a point event, not a window
            "drift=0.01@5:10",    # drift onset is a point event too
            "loss=abc@0:1",       # bad number
            "loss@0:1",           # missing value
            "loss=0.5@5:5",       # window must end after it starts
            "loss=1.5",           # probability out of range
            "loss=0.5@-1:4",      # negative start
            "corrupt=2",          # probability out of range
            "jitter=-0.1",        # negative amplitude
        ],
    )
    def test_bad_terms_raise(self, text):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse(text)

    def test_builder_is_fluent_and_validates(self):
        plan = (
            FaultPlan(seed=b"b")
            .loss(0.2, start=1.0, end=2.0, match="att_report")
            .reset(at=3.0)
        )
        assert plan.windows[0].match == "att_report"
        assert plan.resets == [3.0]
        with pytest.raises(ConfigurationError):
            plan.corrupt(0.1, mode="gamma-rays")
        with pytest.raises(ConfigurationError):
            plan.reset(at=-1.0)
        with pytest.raises(ConfigurationError):
            plan.drift(0.01, at=-2.0)

    def test_window_kind_matching(self):
        plan = FaultPlan().loss(1.0, match="att_")
        window = plan.windows[0]
        att = Message(1, "vrf", "prv", "att_request", {}, 0.0)
        other = Message(2, "vrf", "prv", "collect_request", {}, 0.0)
        assert window.matches(att)
        assert not window.matches(other)


class TestRetryPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout": 0.0},
            {"max_retries": -1},
            {"backoff": 0.5},
            {"jitter": 1.0},
            {"jitter": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)

    def test_unjittered_backoff_curve_caps(self):
        policy = RetryPolicy(
            timeout=1.0, max_retries=5, backoff=2.0,
            max_timeout=5.0, jitter=0.0,
        )
        assert policy.max_attempts == 6
        waits = [policy.wait_before(a) for a in range(1, 7)]
        assert waits == [1.0, 2.0, 4.0, 5.0, 5.0, 5.0]
        with pytest.raises(ConfigurationError):
            policy.wait_before(0)

    def test_schedule_is_pure_function_of_policy_and_nonce(self):
        policy = RetryPolicy(seed=b"fixed")
        assert policy.schedule(b"nonce-1") == policy.schedule(b"nonce-1")
        # an equal policy (same seed) produces the same sequence
        twin = RetryPolicy(seed=b"fixed")
        assert twin.schedule(b"nonce-1") == policy.schedule(b"nonce-1")
        # a different nonce gets its own jitter stream
        assert policy.schedule(b"nonce-2") != policy.schedule(b"nonce-1")

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(
            timeout=1.0, max_retries=7, backoff=2.0,
            max_timeout=64.0, jitter=0.1,
        )
        for attempt, wait in enumerate(policy.schedule(b"n"), start=1):
            base = min(2.0 ** (attempt - 1), 64.0)
            assert base * 0.9 <= wait <= base * 1.1


def _message(kind="att_request", payload=None, msg_id=1):
    payload = {"nonce": b"\x01\x02\x03"} if payload is None else payload
    return Message(msg_id, "vrf", "prv", kind, payload, 0.0)


class TestFaultInjector:
    def test_same_seed_same_verdicts(self):
        def run():
            sim = Simulator()
            plan = FaultPlan(seed=b"det").loss(0.5).jitter(0.01)
            injector = FaultInjector(sim, plan)
            verdicts = [
                injector(_message(msg_id=i)).action for i in range(100)
            ]
            return verdicts, injector.lost_count

        assert run() == run()

    def test_loss_probability_extremes(self):
        sim = Simulator()
        never = FaultInjector(sim, FaultPlan(seed=b"a").loss(0.0))
        always = FaultInjector(sim, FaultPlan(seed=b"a").loss(1.0))
        assert never(_message()).action == "deliver"
        assert always(_message()).action == "drop"
        assert always.lost_count == 1

    def test_crc_corruption_discards_frame(self):
        sim = Simulator()
        injector = FaultInjector(sim, FaultPlan(seed=b"c").corrupt(1.0))
        assert injector(_message()).action == "drop"
        assert injector.corrupted_count == 1

    def test_tamper_flips_the_nonce(self):
        sim = Simulator()
        plan = FaultPlan(seed=b"c").corrupt(1.0, mode="tamper")
        injector = FaultInjector(sim, plan)
        verdict = injector(_message(payload={"nonce": b"\x00\xff"}))
        assert verdict.action == "deliver"
        assert verdict.mutate is not None
        assert verdict.mutate.payload["nonce"] == b"\xff\x00"

    def test_tamper_without_nonce_degrades_to_crc_discard(self):
        sim = Simulator()
        plan = FaultPlan(seed=b"c").corrupt(1.0, mode="tamper")
        injector = FaultInjector(sim, plan)
        assert injector(_message(payload="opaque")).action == "drop"
        assert injector(_message(payload={"data": 1})).action == "drop"

    def test_jitter_adds_extra_latency(self):
        sim = Simulator()
        injector = FaultInjector(sim, FaultPlan(seed=b"j").jitter(0.05))
        extras = [injector(_message(msg_id=i)).extra for i in range(20)]
        assert all(0.0 <= e <= 0.05 for e in extras)
        assert any(e > 0.0 for e in extras)

    def test_kind_filter_limits_the_blast_radius(self):
        sim = Simulator()
        plan = FaultPlan(seed=b"m").loss(1.0, match="att_report")
        injector = FaultInjector(sim, plan)
        assert injector(_message(kind="att_request")).action == "deliver"
        assert injector(_message(kind="att_report")).action == "drop"


class TestOutcomeReport:
    def _record(self, report, *, attempts, completed, start=0.0, end=1.0):
        return report.record(
            device="prv", nonce=b"\xaa\xbb", requested_at=start,
            concluded_at=end, attempts=attempts, completed=completed,
        )

    def test_taxonomy_classification(self):
        report = OutcomeReport()
        assert (
            self._record(report, attempts=1, completed=True).classification
            == OUTCOME_OK
        )
        assert (
            self._record(report, attempts=3, completed=True).classification
            == OUTCOME_RETRIED_OK
        )
        assert (
            self._record(report, attempts=7, completed=False).classification
            == OUTCOME_TIMED_OUT
        )
        report.note_reset(10.5)
        aborted = self._record(
            report, attempts=2, completed=False, start=10.0, end=11.0
        )
        assert aborted.classification == OUTCOME_RESET_ABORTED
        # a reset outside the exchange window does not steal the blame
        late = self._record(
            report, attempts=2, completed=False, start=20.0, end=21.0
        )
        assert late.classification == OUTCOME_TIMED_OUT

    def test_aggregates(self):
        report = OutcomeReport()
        self._record(report, attempts=1, completed=True)
        self._record(report, attempts=4, completed=True)
        self._record(report, attempts=7, completed=False)
        assert report.counts() == {
            OUTCOME_OK: 1, OUTCOME_RETRIED_OK: 1, OUTCOME_TIMED_OUT: 1,
        }
        assert report.total == 3
        assert report.completed == 2
        assert report.completion_rate == pytest.approx(2 / 3)
        assert report.retries_total() == 3 + 6
        data = report.to_dict()
        assert data["total"] == 3
        assert len(data["exchanges"]) == 3
        rendered = report.render(title="demo")
        assert "demo" in rendered and "completion 66.7%" in rendered

    def test_empty_report(self):
        report = OutcomeReport()
        assert report.completion_rate == 0.0
        assert report.counts() == {}
        assert "total" in report.render()

    def test_fold_into_availability(self):
        report = OutcomeReport()
        self._record(report, attempts=2, completed=True)
        availability = AvailabilityReport(elapsed=10.0)
        assert "exchange_outcomes" not in availability.to_dict()
        report.fold_into(availability)
        data = availability.to_dict()
        assert data["exchange_outcomes"] == {OUTCOME_RETRIED_OK: 1}
        # and the histogram survives the serialization round-trip
        back = AvailabilityReport.from_dict(data)
        assert back.exchange_outcomes == {OUTCOME_RETRIED_OK: 1}
