"""One verifier, many provers on a shared channel."""

from repro.malware.transient import TransientMalware
from repro.ra.report import Verdict
from repro.ra.service import OnDemandVerifier
from repro.ra.smart import SmartAttestation
from repro.ra.verifier import Verifier
from repro.sim.device import Device
from repro.sim.engine import Simulator
from repro.sim.network import Channel


def fleet(count=3):
    sim = Simulator()
    channel = Channel(sim, latency=0.003)
    verifier = Verifier(sim)
    devices = []
    for index in range(count):
        device = Device(sim, name=f"prv{index}", block_count=12,
                        block_size=32, seed=10 + index)
        device.standard_layout()
        device.attach_network(channel)
        verifier.enroll(device)
        SmartAttestation(device).install()
        devices.append(device)
    driver = OnDemandVerifier(verifier, channel)
    return sim, devices, verifier, driver


class TestFleetAttestation:
    def test_all_devices_answer_concurrently(self):
        sim, devices, verifier, driver = fleet(4)
        exchanges = [driver.request(d.name) for d in devices]
        sim.run(until=60)
        assert all(e.result is not None for e in exchanges)
        assert all(
            e.result.verdict is Verdict.HEALTHY for e in exchanges
        )

    def test_responses_matched_to_the_right_device(self):
        sim, devices, verifier, driver = fleet(3)
        exchanges = [driver.request(d.name) for d in devices]
        sim.run(until=60)
        for device, exchange in zip(devices, exchanges):
            assert exchange.device == device.name
            assert exchange.report.device == device.name

    def test_one_bad_apple_isolated(self):
        sim, devices, verifier, driver = fleet(3)
        TransientMalware(devices[1], target_block=2, infect_at=0.0)
        exchanges = [driver.request(d.name) for d in devices]
        sim.run(until=60)
        verdicts = [e.result.verdict for e in exchanges]
        assert verdicts == [
            Verdict.HEALTHY, Verdict.COMPROMISED, Verdict.HEALTHY,
        ]

    def test_keys_are_per_device(self):
        sim, devices, verifier, driver = fleet(3)
        keys = {device.attestation_key for device in devices}
        assert len(keys) == 3

    def test_cross_device_report_rejected(self):
        """A report MAC'd under device A's key cannot pass as B's."""
        from repro.ra.report import AttestationReport

        sim, devices, verifier, driver = fleet(2)
        exchanges = [driver.request(d.name) for d in devices]
        sim.run(until=60)
        report_a = exchanges[0].report
        forged = AttestationReport(
            device=devices[1].name,
            records=report_a.records,
            auth_tag=report_a.auth_tag,
            sent_counter=report_a.sent_counter,
        )
        result = verifier.verify_report(forged)
        assert result.verdict is Verdict.INVALID

    def test_distinct_benign_images_per_seed(self):
        sim, devices, verifier, driver = fleet(2)
        assert (
            devices[0].memory.benign_image()
            != devices[1].memory.benign_image()
        )
