"""DARPA-style absence detection: heartbeats vs physical removal."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.swarm import make_topology
from repro.swarm.darpa import (
    HeartbeatProtocol,
    pairwise_key,
)


def darpa_rig(count=7, shape="tree", period=1.0, miss_threshold=3):
    sim = Simulator()
    topology = make_topology(sim, count=count, shape=shape)
    protocol = HeartbeatProtocol(topology, period=period,
                                 miss_threshold=miss_threshold)
    protocol.start()
    return sim, topology, protocol


class TestPairwiseKeys:
    def test_order_independent(self):
        assert pairwise_key(b"a", b"b") == pairwise_key(b"b", b"a")

    def test_pair_specific(self):
        assert pairwise_key(b"a", b"b") != pairwise_key(b"a", b"c")


class TestSteadyState:
    def test_no_absences_when_everyone_alive(self):
        sim, topology, protocol = darpa_rig()
        sim.run(until=20.0)
        assert protocol.absences == []
        assert protocol.missing_devices() == []

    def test_heartbeats_flow(self):
        sim, topology, protocol = darpa_rig()
        sim.run(until=10.0)
        for node in protocol.nodes:
            assert node.heartbeats_sent >= 9 * len(node.neighbours)

    def test_validation(self):
        sim = Simulator()
        topology = make_topology(sim, count=3, shape="line")
        with pytest.raises(ConfigurationError):
            HeartbeatProtocol(topology, period=0.0)
        with pytest.raises(ConfigurationError):
            HeartbeatProtocol(topology, miss_threshold=0)


class TestRemovalDetection:
    def test_removed_device_detected_by_neighbours(self):
        sim, topology, protocol = darpa_rig()
        protocol.remove_device(3, at=5.0)
        sim.run(until=20.0)
        assert "node3" in protocol.missing_devices()
        detectors = {
            event.detected_by
            for event in protocol.absences
            if event.missing == "node3"
        }
        # node3's tree neighbours are node1 (parent) only in a binary
        # tree of 7?  3's parent is 1; children of 3 would be 7,8 (absent).
        assert "node1" in detectors

    def test_detection_latency_bounded(self):
        sim, topology, protocol = darpa_rig(period=1.0,
                                            miss_threshold=3)
        protocol.remove_device(2, at=5.0)
        sim.run(until=30.0)
        latency = protocol.detection_latency("node2")
        assert latency is not None
        # Silence must exceed 3 periods; detection happens at the next
        # half-period check after that.
        assert 3.0 < latency <= 5.0

    def test_all_neighbours_eventually_notice(self):
        sim, topology, protocol = darpa_rig(shape="star")
        protocol.remove_device(0, at=3.0)  # the hub disappears
        sim.run(until=20.0)
        detectors = {
            event.detected_by for event in protocol.absences
        }
        # Every leaf had exactly one neighbour: the hub.
        assert detectors == {f"node{i}" for i in range(1, 7)}

    def test_returned_device_rearms_detection(self):
        """Absence -> return -> absence again: both windows detected
        (the attacker cannot amortize one detection)."""
        sim, topology, protocol = darpa_rig(period=1.0,
                                            miss_threshold=2)
        protocol.remove_device(2, at=5.0)
        protocol.return_device(2, at=12.0)
        protocol.remove_device(2, at=20.0)
        sim.run(until=35.0)
        windows = [
            event for event in protocol.absences
            if event.missing == "node2"
            and event.detected_by == "node0"
        ]
        assert len(windows) == 2
        assert windows[0].detected_at < 12.0
        assert windows[1].detected_at > 20.0

    def test_short_blip_below_threshold_unnoticed(self):
        """DARPA's tuning knob: absences shorter than the threshold
        window stay invisible -- the defender sizes the period against
        the attacker's minimum extraction time."""
        sim, topology, protocol = darpa_rig(period=1.0,
                                            miss_threshold=4)
        protocol.remove_device(2, at=5.0)
        protocol.return_device(2, at=7.0)  # 2 s blip < 4 periods
        sim.run(until=20.0)
        assert protocol.detection_latency("node2") is None


class TestForgery:
    def test_forged_heartbeats_do_not_mask_absence(self):
        """An attacker spoofing the missing node's heartbeats without
        its key cannot suppress detection."""
        sim, topology, protocol = darpa_rig(count=3, shape="line")
        protocol.remove_device(1, at=3.0)

        # The attacker injects fake "node1" heartbeats toward node0.
        attacker = topology.channel.make_endpoint("attacker")

        def spoof():
            attacker.send(
                "node0", "heartbeat",
                {"from_index": 1, "tag": b"\x00" * 32,
                 "body": b"node1-forged"},
            )

        for k in range(40):
            sim.schedule_at(3.0 + 0.5 * k, spoof)
        sim.run(until=25.0)
        assert "node1" in protocol.missing_devices()
