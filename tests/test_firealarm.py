"""The fire alarm: detection latency with and without atomic MP."""

import pytest

from repro.apps.firealarm import FireAlarmApp
from repro.errors import ConfigurationError
from repro.ra.measurement import MeasurementConfig, MeasurementProcess
from repro.sim.device import Device
from repro.sim.engine import Simulator
from repro.units import MiB


def make_rig(sim_block_size=None):
    sim = Simulator()
    device = Device(sim, block_count=16, block_size=32,
                    sim_block_size=sim_block_size)
    device.standard_layout()
    return sim, device


class TestSensing:
    def test_samples_every_period(self):
        sim, device = make_rig()
        app = FireAlarmApp(device, period=1.0, sample_wcet=0.001)
        sim.run(until=5.5)
        assert app.samples == 6

    def test_ambient_readings_below_threshold(self):
        sim, device = make_rig()
        app = FireAlarmApp(device, period=1.0)
        sim.run(until=3.5)
        assert all(r == app.ambient for r in app.readings)
        assert app.alarm_at is None

    def test_temperature_steps_at_fire(self):
        sim, device = make_rig()
        app = FireAlarmApp(device, period=1.0)
        app.start_fire(2.5)
        sim.run(until=2.4)
        assert app.temperature() == app.ambient
        sim.run(until=2.6)
        assert app.temperature() == app.fire_temperature

    def test_invalid_temperatures_rejected(self):
        sim, device = make_rig()
        with pytest.raises(ConfigurationError):
            FireAlarmApp(device, threshold=100.0, fire_temperature=50.0)


class TestAlarmLatency:
    def test_unloaded_latency_under_one_period(self):
        sim, device = make_rig()
        app = FireAlarmApp(device, period=1.0, sample_wcet=0.001)
        app.start_fire(2.5)
        sim.run(until=10.0)
        outcome = app.outcome()
        assert outcome.alarm_sounded
        # Next sample after 2.5 is at t=3.
        assert outcome.alarm_latency == pytest.approx(0.501, abs=0.01)

    def test_atomic_mp_delays_alarm(self):
        """Section 2.5: the fire breaks out just after an atomic MP
        starts; the alarm waits for the measurement to finish."""
        sim, device = make_rig(sim_block_size=32 * MiB)  # ~3.5 s MP
        app = FireAlarmApp(device, period=1.0, sample_wcet=0.001,
                           priority=100)
        config = MeasurementConfig(atomic=True, algorithm="blake2s")
        mp = MeasurementProcess(device, config, nonce=b"n")
        sim.schedule_at(
            2.0, lambda: device.cpu.spawn("mp", mp.run, priority=50)
        )
        app.start_fire(2.1)
        sim.run(until=20.0)
        outcome = app.outcome()
        mp_duration = mp.record.duration
        assert mp_duration > 3.0
        assert outcome.alarm_latency > mp_duration * 0.8
        assert outcome.deadline_misses >= 2

    def test_interruptible_mp_preserves_alarm(self):
        sim, device = make_rig(sim_block_size=32 * MiB)
        app = FireAlarmApp(device, period=1.0, sample_wcet=0.001,
                           priority=100)
        config = MeasurementConfig(atomic=False, algorithm="blake2s",
                                   priority=50)
        mp = MeasurementProcess(device, config, nonce=b"n")
        sim.schedule_at(
            2.0, lambda: device.cpu.spawn("mp", mp.run, priority=50)
        )
        app.start_fire(2.1)
        sim.run(until=20.0)
        outcome = app.outcome()
        assert outcome.alarm_latency < 1.1
        assert mp.record.interruptions > 0


class TestDataWrites:
    def test_reading_stored_to_block(self):
        sim, device = make_rig()
        block = device.memory.regions["data"].start
        app = FireAlarmApp(device, period=1.0, data_block=block)
        sim.run(until=2.5)
        stored = device.memory.read_block(block)
        assert int.from_bytes(stored[:4], "big") == int(app.ambient * 100)

    def test_locked_data_block_counts_faults(self):
        sim, device = make_rig()
        block = device.memory.regions["data"].start
        app = FireAlarmApp(device, period=1.0, data_block=block)
        device.mpu.lock(block)
        sim.schedule_at(3.5, device.mpu.unlock, block)
        sim.run(until=6.0)
        assert app.task.stats().write_faults >= 1
        # After the unlock the app catches up and keeps sampling.
        assert app.samples >= 4
