"""Integration: every mechanism vs every evading adversary.

These are the Table 1 detection cells run as individual full-stack
scenarios -- verifier and prover over the network, malware reacting to
real measurement progress, MPU locks mechanically blocking its writes.
"""

import pytest

from repro.malware.relocating import SelfRelocatingMalware
from repro.malware.transient import TransientMalware
from repro.ra.measurement import MeasurementConfig
from repro.ra.report import Verdict
from repro.ra.locking import make_policy
from repro.ra.service import AttestationService
from repro.ra.smart import SmartAttestation

from tests.conftest import make_stack


def run_cell(mechanism, adversary, rounds=1):
    """One (mechanism, adversary) scenario; returns the verdict."""
    stack = make_stack(block_count=24)
    if mechanism == "smart":
        service = SmartAttestation(stack.device)
    else:
        service = AttestationService(
            stack.device,
            MeasurementConfig(
                order="sequential",
                atomic=False,
                locking=make_policy(mechanism),
                priority=50,
            ),
            mechanism=mechanism,
        )
    service.install()
    if adversary == "relocating":
        SelfRelocatingMalware(
            stack.device, target_block=15, infect_at=0.1,
            strategy="to-measured",
        )
    elif adversary == "transient":
        TransientMalware(
            stack.device, target_block=15, infect_at=0.1,
            reactive=True, reappear=True,
        )
    # Infection happens at t=0.1; the challenge arrives well after, so
    # the adversary is resident when MP starts (the Table 1 reading).
    exchanges = []
    stack.sim.schedule_at(
        1.0,
        lambda: exchanges.append(
            stack.driver.request(stack.device.name, rounds=rounds)
        ),
    )
    stack.sim.run(until=120)
    assert exchanges and exchanges[0].result is not None
    return exchanges[0].result.verdict


class TestRelocatingColumn:
    """Table 1, 'Self-relocating' detection column."""

    def test_smart_detects(self):
        assert run_cell("smart", "relocating") is Verdict.COMPROMISED

    def test_all_lock_detects(self):
        assert run_cell("all-lock", "relocating") is Verdict.COMPROMISED

    def test_dec_lock_detects(self):
        assert run_cell("dec-lock", "relocating") is Verdict.COMPROMISED

    def test_inc_lock_detects(self):
        assert run_cell("inc-lock", "relocating") is Verdict.COMPROMISED

    def test_no_lock_evaded(self):
        """The Section 3.1 attack: jump into already-measured memory."""
        assert run_cell("no-lock", "relocating") is Verdict.HEALTHY


class TestTransientColumn:
    """Table 1, 'Transient' detection column (resident at t_s, tries
    to erase itself during MP)."""

    def test_smart_detects(self):
        assert run_cell("smart", "transient") is Verdict.COMPROMISED

    def test_all_lock_detects(self):
        assert run_cell("all-lock", "transient") is Verdict.COMPROMISED

    def test_dec_lock_detects(self):
        """Dec-Lock's whole point: the state at t_s is captured, the
        erase faults against the still-locked block."""
        assert run_cell("dec-lock", "transient") is Verdict.COMPROMISED

    def test_inc_lock_evaded(self):
        """Inc-Lock's known gap: the block is unlocked until measured,
        so the malware erases itself in time."""
        assert run_cell("inc-lock", "transient") is Verdict.HEALTHY

    def test_no_lock_evaded(self):
        assert run_cell("no-lock", "transient") is Verdict.HEALTHY


class TestCleanBaseline:
    """No adversary: every mechanism reports healthy (no false
    positives)."""

    @pytest.mark.parametrize(
        "mechanism",
        ["smart", "all-lock", "dec-lock", "inc-lock", "no-lock"],
    )
    def test_clean(self, mechanism):
        assert run_cell(mechanism, "none") is Verdict.HEALTHY


class TestMechanicalExplanations:
    """The *why* behind the cells, asserted on the malware's own log."""

    def test_dec_lock_blocks_the_erase(self):
        stack = make_stack(block_count=24)
        service = AttestationService(
            stack.device,
            MeasurementConfig(locking=make_policy("dec-lock"), priority=50),
            mechanism="dec-lock",
        )
        service.install()
        malware = TransientMalware(
            stack.device, target_block=15, infect_at=0.1, reactive=True
        )
        stack.sim.schedule_at(
            1.0, stack.driver.request, stack.device.name
        )
        stack.sim.run(until=120)
        assert malware.blocked_actions > 0

    def test_no_lock_never_blocks_malware(self):
        stack = make_stack(block_count=24)
        service = AttestationService(
            stack.device,
            MeasurementConfig(locking=make_policy("no-lock"), priority=50),
            mechanism="no-lock",
        )
        service.install()
        malware = SelfRelocatingMalware(
            stack.device, target_block=15, infect_at=0.1,
            strategy="to-measured",
        )
        stack.sim.schedule_at(
            1.0, stack.driver.request, stack.device.name
        )
        stack.sim.run(until=120)
        assert malware.failed_moves == 0
        assert malware.moves >= 1

    def test_inc_lock_confines_malware_to_unmeasured_region(self):
        stack = make_stack(block_count=24)
        service = AttestationService(
            stack.device,
            MeasurementConfig(locking=make_policy("inc-lock"), priority=50),
            mechanism="inc-lock",
        )
        service.install()
        malware = SelfRelocatingMalware(
            stack.device, target_block=15, infect_at=0.1,
            strategy="to-measured",
        )
        stack.sim.schedule_at(
            1.0, stack.driver.request, stack.device.name
        )
        stack.sim.run(until=120)
        # Every jump into measured (locked) territory faulted.
        assert malware.failed_moves == malware.moves
