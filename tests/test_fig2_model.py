"""Figure 2 curve properties: anchors, crossovers, slopes, rendering."""

import pytest

from repro.analysis.fig2_model import (
    anchor_report,
    crossover_table,
    loglog_slope,
    render_series,
    sweep_series,
)
from repro.crypto.timing import HASH_NAMES, SIGNATURE_NAMES, figure2_sizes
from repro.units import GiB, KiB, MiB


class TestAnchors:
    def test_all_paper_anchors_hold(self):
        anchors = anchor_report()
        assert len(anchors) == 4
        for anchor in anchors:
            assert anchor.holds, anchor.description

    def test_anchor_descriptions_cover_the_claims(self):
        text = " ".join(a.description for a in anchor_report())
        assert "100 MB" in text
        assert "2 GB" in text
        assert "fire-alarm" in text


class TestCrossovers:
    def test_full_table(self):
        table = crossover_table()
        assert len(table) == len(HASH_NAMES) * len(SIGNATURE_NAMES)

    def test_every_signature_has_a_crossover(self):
        """'for any signature algorithm, there is a point at which the
        cost of hashing exceeds that of signing'."""
        table = crossover_table()
        for (hash_name, signature), size in table.items():
            assert 0 < size < 2 * GiB

    def test_most_signatures_cross_below_4mib(self):
        table = crossover_table()
        below = sum(
            1
            for (hash_name, signature), size in table.items()
            if hash_name == "sha256" and size < 4 * MiB
        )
        assert below >= 4

    def test_bigger_rsa_crosses_later(self):
        table = crossover_table()
        assert (
            table[("sha256", "rsa1024")]
            < table[("sha256", "rsa2048")]
            < table[("sha256", "rsa4096")]
        )


class TestSeries:
    def test_ten_curves(self):
        series = sweep_series()
        assert set(series) == set(HASH_NAMES) | set(SIGNATURE_NAMES)

    def test_hash_curves_loglog_linear_above_knee(self):
        """Slope 1 on log-log: pure throughput behaviour."""
        series = sweep_series(sizes=figure2_sizes(3))
        for name in HASH_NAMES:
            slope = loglog_slope(series[name], 10 * MiB, GiB)
            assert slope == pytest.approx(1.0, abs=0.05)

    def test_signature_curves_flat_at_small_sizes(self):
        """Below the crossover the fixed signing cost dominates."""
        series = sweep_series(sizes=[KiB, 4 * KiB, 16 * KiB])
        for name in ("rsa2048", "rsa4096"):
            times = [t for _, t in series[name]]
            assert max(times) / min(times) < 1.2

    def test_signature_curves_converge_to_hash_curve(self):
        """At 2 GiB, signing adds almost nothing."""
        series = sweep_series(sizes=[2 * GiB])
        hash_time = series["sha256"][0][1]
        for name in SIGNATURE_NAMES:
            assert series[name][0][1] == pytest.approx(hash_time, rel=0.01)

    def test_render_table(self):
        series = sweep_series(sizes=[KiB, MiB])
        text = render_series(series)
        assert "sha256" in text and "rsa4096" in text
        assert "1.0MiB" in text
