"""Campaign specs and the planner."""

import pytest

from repro.errors import ConfigurationError
from repro.fleet import (
    CANNED_CAMPAIGNS,
    DEVICE_CLASSES,
    CampaignSpec,
    Cohort,
    RunSpec,
    canned_campaign,
    hetero_fleet_campaign,
    qoa_fleet_campaign,
)


def small_campaign() -> CampaignSpec:
    return CampaignSpec(
        name="unit",
        base={"block_count": 8, "horizon": 10.0},
        axes={
            "mechanism": ["smart", "erasmus"],
            "adversary": ["none", "transient"],
        },
        seeds=range(3),
    )


class TestRunSpec:
    def test_round_trip(self):
        spec = RunSpec(mechanism="smarm", adversary="relocating", seed=42)
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_run_id_is_content_derived(self):
        a = RunSpec(mechanism="smart", seed=1)
        b = RunSpec(mechanism="smart", seed=1)
        assert a.run_id == b.run_id
        assert a.run_id != RunSpec(mechanism="smart", seed=2).run_id
        assert a.run_id != a.with_overrides(horizon=99.0).run_id

    def test_run_id_readable_prefix(self):
        spec = RunSpec(mechanism="erasmus", adversary="transient", seed=5)
        assert spec.run_id.startswith("erasmus-transient-s0005-")

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ConfigurationError):
            RunSpec(mechanism="quantum")

    def test_unknown_adversary_rejected(self):
        with pytest.raises(ConfigurationError):
            RunSpec(adversary="alien")

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError):
            RunSpec.from_dict({"mechanism": "smart", "bogus": 1})


class TestPlanner:
    def test_expansion_count(self):
        campaign = small_campaign()
        specs = campaign.plan()
        assert len(specs) == 2 * 2 * 3 == campaign.run_count

    def test_plan_is_deterministic(self):
        first = [spec.run_id for spec in small_campaign().plan()]
        second = [spec.run_id for spec in small_campaign().plan()]
        assert first == second

    def test_run_ids_unique(self):
        ids = [spec.run_id for spec in small_campaign().plan()]
        assert len(set(ids)) == len(ids)

    def test_base_fields_applied(self):
        for spec in small_campaign().plan():
            assert spec.block_count == 8
            assert spec.horizon == 10.0
            assert spec.campaign == "unit"

    def test_axis_order_independent(self):
        reordered = CampaignSpec(
            name="unit",
            base={"block_count": 8, "horizon": 10.0},
            axes={
                "adversary": ["none", "transient"],
                "mechanism": ["smart", "erasmus"],
            },
            seeds=range(3),
        )
        assert [s.run_id for s in reordered.plan()] == [
            s.run_id for s in small_campaign().plan()
        ]

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(name="bad", axes={"warp_factor": [9]})

    def test_overlapping_base_and_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(
                name="bad",
                base={"mechanism": "smart"},
                axes={"mechanism": ["smart"]},
            )

    def test_seed_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(name="bad", axes={"seed": [1, 2]})

    def test_campaign_round_trip(self):
        campaign = small_campaign()
        clone = CampaignSpec.from_dict(campaign.to_dict())
        assert clone.spec_hash == campaign.spec_hash
        assert [s.run_id for s in clone.plan()] == [
            s.run_id for s in campaign.plan()
        ]


def cohort_campaign() -> CampaignSpec:
    return CampaignSpec(
        name="hetero-unit",
        base={"adversary": "transient", "horizon": 10.0},
        cohorts=[
            Cohort(
                name="sensors",
                base={"device_class": "sensor", "mechanism": "erasmus"},
                axes={"firmware": ["fw-1.0", "fw-1.1"]},
            ),
            Cohort(
                name="gateways",
                base={"device_class": "gateway", "mechanism": "smart"},
                seeds=[3, 4],
            ),
        ],
        seeds=[7],
    )


class TestHeterogeneousPlanning:
    def test_device_class_presets_applied(self):
        specs = cohort_campaign().plan()
        sensors = [s for s in specs if s.cohort == "sensors"]
        gateways = [s for s in specs if s.cohort == "gateways"]
        assert sensors and gateways
        for spec in sensors:
            assert spec.block_count == DEVICE_CLASSES["sensor"]["block_count"]
        for spec in gateways:
            assert spec.block_count == DEVICE_CLASSES["gateway"]["block_count"]

    def test_cohort_axes_and_seeds(self):
        specs = cohort_campaign().plan()
        sensors = [s for s in specs if s.cohort == "sensors"]
        gateways = [s for s in specs if s.cohort == "gateways"]
        # sensors: 2 firmware values x campaign seed [7]
        assert sorted(s.firmware for s in sensors) == ["fw-1.0", "fw-1.1"]
        assert {s.seed for s in sensors} == {7}
        # gateways: cohort seeds override the campaign's
        assert {s.seed for s in gateways} == {3, 4}

    def test_cohort_round_trip_preserves_plan(self):
        campaign = cohort_campaign()
        clone = CampaignSpec.from_dict(campaign.to_dict())
        assert clone.spec_hash == campaign.spec_hash
        assert [s.run_id for s in clone.plan()] == [
            s.run_id for s in campaign.plan()
        ]

    def test_firmware_distinguishes_run_ids(self):
        a = RunSpec(mechanism="smart", seed=1, firmware="fw-1.0")
        b = RunSpec(mechanism="smart", seed=1, firmware="fw-1.1")
        assert a.run_id != b.run_id

    def test_unknown_device_class_rejected(self):
        with pytest.raises(ConfigurationError):
            RunSpec(mechanism="smart", device_class="toaster")

    def test_duplicate_cohort_names_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(
                name="bad",
                cohorts=[Cohort(name="a"), Cohort(name="a")],
            )

    def test_flat_spec_hash_unchanged_by_cohort_support(self):
        # to_dict only grows a "cohorts" key when cohorts exist, so
        # pre-cohort campaign hashes (and golden artifacts keyed on
        # them) are untouched
        campaign = small_campaign()
        assert "cohorts" not in campaign.to_dict()

    def test_hetero_canned_campaign_plans(self):
        campaign = hetero_fleet_campaign()
        specs = campaign.plan()
        assert campaign.run_count == len(specs) > 0
        assert {s.cohort for s in specs} == {
            "sensors", "actuators", "gateways"
        }


class TestCannedCampaigns:
    def test_qoa_is_fleet_scale(self):
        assert qoa_fleet_campaign().run_count >= 50

    def test_registry_names_resolve(self):
        for name in CANNED_CAMPAIGNS:
            campaign = canned_campaign(name)
            assert campaign.run_count > 0
            assert campaign.plan()

    def test_seed_count_override(self):
        assert canned_campaign("qoa", seed_count=2).run_count == 18

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            canned_campaign("nope")
