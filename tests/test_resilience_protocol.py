"""Protocol-level resilience: retransmission, prover-side dedup,
reset recovery, deterministic retry timelines, and the headline
acceptance property -- every on-demand mechanism rides out a lossy
channel plus a prover brownout."""

import dataclasses

import pytest

from repro.core.tradeoff import ScenarioConfig, standard_mechanisms
from repro.crypto import OdroidXU4Model
from repro.ra.report import Verdict
from repro.resilience import FaultPlan, RetryPolicy
from repro.resilience.outcome import (
    OUTCOME_OK,
    OUTCOME_RETRIED_OK,
    OUTCOME_TIMED_OUT,
)
from repro.scenario import Scenario
from repro.sim.network import Message
from repro.units import MiB


def small_config(**overrides) -> ScenarioConfig:
    fields = dict(block_count=8, sim_block_size=MiB, horizon=30.0)
    fields.update(overrides)
    return ScenarioConfig(**fields)


def measure_time(config: ScenarioConfig) -> float:
    """Simulated duration of one full measurement pass."""
    model = OdroidXU4Model()
    return config.block_count * model.hash_time(
        config.algorithm, config.sim_block_size
    )


class TestRetransmissionAndDedup:
    def test_lost_report_recovers_without_remeasuring(self):
        """Every report is eaten until t=3; the prover's dedup cache
        answers the retransmitted challenge from the settled report, so
        the exchange completes after retries with exactly one
        measurement run."""
        plan = FaultPlan(seed=b"t1").loss(
            1.0, start=0.0, end=3.0, match="att_report"
        )
        scenario = Scenario.build(
            mechanism="smart",
            faults=plan,
            config=small_config(),
            retry=RetryPolicy(timeout=1.0, max_retries=5, seed=b"t1-r"),
        )
        scenario.schedule_request(1.0)
        scenario.run()

        (exchange,) = scenario.driver.exchanges
        assert exchange.status == "verified"
        assert exchange.result.healthy
        assert exchange.attempts >= 2
        # one measurement, one authenticated report -- the resends came
        # from the dedup cache
        assert scenario.service.requests_handled == 1
        assert len(scenario.service.reports_sent) == 1
        dedup_hits = [
            r for r in scenario.device.trace.records if r.kind == "ra.dedup"
        ]
        assert dedup_hits and all(r.data["settled"] for r in dedup_hits)
        assert scenario.outcomes.counts() == {OUTCOME_RETRIED_OK: 1}

    def test_inflight_duplicate_challenge_never_double_measures(self):
        """The retry timeout is far below the measurement time, so
        retransmitted challenges land while the measurement is still
        running -- the prover drops them instead of spawning a second
        measurement."""
        config = small_config(sim_block_size=32 * MiB)
        slow = measure_time(config)
        scenario = Scenario.build(
            mechanism="smart",
            config=config,
            retry=RetryPolicy(
                timeout=slow / 4, max_retries=6, backoff=2.0, seed=b"t2-r"
            ),
        )
        scenario.schedule_request(1.0)
        scenario.run()

        (exchange,) = scenario.driver.exchanges
        assert exchange.status == "verified"
        assert exchange.attempts >= 2  # duplicates really were sent
        assert scenario.service.requests_handled == 1
        assert scenario.service._counter == 1  # one MeasurementProcess
        inflight = [
            r for r in scenario.device.trace.records
            if r.kind == "ra.dedup" and not r.data["settled"]
        ]
        assert inflight
        assert scenario.outcomes.counts() == {OUTCOME_RETRIED_OK: 1}


class TestUnverifiableConclusion:
    def test_damaged_reports_conclude_timed_out_not_verified(self):
        """Every report's MAC is shredded in flight (nonce intact, so
        it still matches its exchange), so each attempt comes back
        unverifiable: exhausting the retry budget on bad verdicts is a
        timed-out exchange, never ok/retried-ok."""
        scenario = Scenario.build(
            mechanism="smart",
            config=small_config(),
            retry=RetryPolicy(
                timeout=1.0, max_retries=2, max_timeout=2.0, seed=b"t12-r"
            ),
        )

        def shred_mac(message):
            if message.kind != "att_report":
                return 0.002
            report = message.payload
            forged = dataclasses.replace(
                report, auth_tag=bytes(len(report.auth_tag))
            )
            return [(0.002, dataclasses.replace(message, payload=forged))]

        scenario.channel.add_filter(shred_mac)
        scenario.schedule_request(1.0)
        scenario.run()
        (exchange,) = scenario.driver.exchanges
        assert exchange.result.verdict in (Verdict.INVALID, Verdict.REPLAY)
        assert exchange.status == "timed-out"
        assert scenario.outcomes.counts() == {OUTCOME_TIMED_OUT: 1}
        assert scenario.outcomes.completion_rate == 0.0


class TestDeterministicBackoff:
    def _run(self):
        scenario = Scenario.build(
            mechanism="smart",
            faults="loss=0.4@0:40",
            fault_seed=b"det-faults",
            config=small_config(horizon=45.0),
            retry=RetryPolicy(
                timeout=0.8, max_retries=6, backoff=1.5, seed=b"det-r"
            ),
        )
        for i in range(8):
            scenario.schedule_request(1.0 + 2.0 * i)
        scenario.run()
        retries = [
            (r.time, r.data["attempt"])
            for r in scenario.device.trace.records
            if r.kind == "ra.retry"
        ]
        return retries, scenario.outcomes.to_dict()

    def test_two_seeded_runs_retry_at_identical_times(self):
        first_retries, first_outcomes = self._run()
        second_retries, second_outcomes = self._run()
        assert first_retries  # the loss plan really forced retries
        assert first_retries == second_retries
        assert first_outcomes == second_outcomes


class TestResetRecovery:
    def test_reset_mid_measurement_clears_locks_and_dedup(self):
        """A brownout in the middle of a locking measurement: the MPU
        lock bits and the dedup cache are volatile (documented in
        Device.reset), so they vanish -- and the next retransmission
        legitimately re-measures and completes the exchange."""
        config = small_config(sim_block_size=32 * MiB, horizon=12.0)
        slow = measure_time(config)
        reset_at = 1.0 + 0.5 * slow
        scenario = Scenario.build(
            mechanism="inc-lock",
            faults=FaultPlan(seed=b"t4").reset(at=reset_at),
            config=config,
            retry=RetryPolicy(timeout=1.0, max_retries=6, seed=b"t4-r"),
        )
        scenario.schedule_request(1.0)

        probes = {}

        def probe(label):
            probes[label] = {
                "locked": scenario.device.mpu.locked_count(),
                "dedup": len(scenario.service._dedup),
            }

        scenario.sim.schedule_at(reset_at - 0.01, probe, "before")
        scenario.sim.schedule_at(reset_at + 0.01, probe, "after")
        scenario.run()

        assert probes["before"]["locked"] > 0
        assert probes["before"]["dedup"] == 1
        assert probes["after"]["locked"] == 0
        assert probes["after"]["dedup"] == 0
        # recovery: the post-reset retransmission re-measured
        (exchange,) = scenario.driver.exchanges
        assert exchange.status == "verified"
        assert exchange.result.healthy
        assert scenario.service.requests_handled == 1  # post-reset run
        assert scenario.outcomes.resets == [pytest.approx(reset_at)]
        assert scenario.outcomes.counts() == {OUTCOME_RETRIED_OK: 1}

    def test_erasmus_survives_a_brownout(self):
        """A brownout kills the self-measurement loop and wipes the
        collect_request listener; the reset hook reinstalls both, so
        post-reset collections still answer and the schedule resumes
        where it left off."""
        scenario = Scenario.build(
            mechanism="erasmus",
            faults=FaultPlan(seed=b"t10").reset(at=3.0),
            config=small_config(erasmus_period=2.0, horizon=20.0),
            retry=RetryPolicy(timeout=1.0, max_retries=3, seed=b"t10-r"),
        )
        scenario.schedule_collections(6.0, 2)  # both after the reset
        scenario.run()
        assert scenario.device.reset_count == 1
        assert scenario.collector.missed == 0
        assert len(scenario.collector.collections) == 2
        assert all(
            c.result.healthy for c in scenario.collector.collections
        )
        # the self-measurement schedule resumed after the brownout
        assert any(r.t_end > 3.0 for r in scenario.service.history)

    def test_seed_fetch_path_survives_a_brownout(self):
        """The seed_fetch listener is volatile; the reset hook re-arms
        it, so catch-up still recovers pushes lost after a reset."""
        plan = (
            FaultPlan(seed=b"t11")
            .loss(1.0, match="seed_report")
            .reset(at=1.0)
        )
        scenario = Scenario.build(
            mechanism="seed",
            faults=plan,
            config=small_config(horizon=40.0),
            seed_options={
                "shared": b"seed-shared-0123",
                "min_gap": 2.0,
                "max_gap": 4.0,
                "trigger_count": 3,
                "serve_fetch": True,
                "catch_up": True,
            },
        )
        scenario.run()
        assert scenario.device.reset_count == 1
        monitor = scenario.seed_monitor
        assert scenario.seed_service.fetches_served == 3
        assert all(slot.received for slot in monitor.expected)
        assert all(slot.result.healthy for slot in monitor.expected)


class TestErasmusResilience:
    def test_lost_replies_are_retried_until_the_burst_ends(self):
        plan = FaultPlan(seed=b"t5").loss(
            1.0, start=0.0, end=7.0, match="collect_reply"
        )
        scenario = Scenario.build(
            mechanism="erasmus",
            faults=plan,
            config=small_config(erasmus_period=2.5, horizon=20.0),
            retry=RetryPolicy(timeout=1.0, max_retries=5, seed=b"t5-r"),
        )
        scenario.schedule_collections(5.0, 2)
        scenario.run()
        assert scenario.collector.missed == 0
        assert len(scenario.collector.collections) == 2
        assert all(
            c.result.healthy for c in scenario.collector.collections
        )

    def test_collection_blackout_is_counted_as_missed(self):
        plan = FaultPlan(seed=b"t6").loss(1.0, match="collect_reply")
        scenario = Scenario.build(
            mechanism="erasmus",
            faults=plan,
            config=small_config(erasmus_period=2.5, horizon=20.0),
            retry=RetryPolicy(
                timeout=0.5, max_retries=2, max_timeout=1.0, seed=b"t6-r"
            ),
        )
        scenario.schedule_collections(5.0, 2)
        scenario.run()
        assert scenario.collector.missed == 2
        assert scenario.collector.collections == []


class TestSeedCatchUp:
    def test_fetch_recovers_every_lost_push(self):
        """Every seed_report push is eaten; with serve_fetch + catch_up
        armed, each missed slot is recovered over the fetch path."""
        plan = FaultPlan(seed=b"t7").loss(1.0, match="seed_report")
        scenario = Scenario.build(
            mechanism="seed",
            faults=plan,
            config=small_config(horizon=40.0),
            seed_options={
                "shared": b"seed-shared-0123",
                "min_gap": 2.0,
                "max_gap": 4.0,
                "trigger_count": 4,
                "serve_fetch": True,
                "catch_up": True,
            },
        )
        scenario.run()
        monitor = scenario.seed_monitor
        assert scenario.seed_service.fetches_served == 4
        assert monitor.fetched == 4
        assert all(slot.received for slot in monitor.expected)
        assert all(slot.result.healthy for slot in monitor.expected)

    def test_without_catch_up_the_slots_stay_missing(self):
        plan = FaultPlan(seed=b"t8").loss(1.0, match="seed_report")
        scenario = Scenario.build(
            mechanism="seed",
            faults=plan,
            config=small_config(horizon=40.0),
            seed_options={
                "shared": b"seed-shared-0123",
                "min_gap": 2.0,
                "max_gap": 4.0,
                "trigger_count": 4,
            },
        )
        scenario.run()
        assert scenario.seed_monitor.fetched == 0
        assert not any(s.received for s in scenario.seed_monitor.expected)

    def test_replayed_reply_cannot_fill_a_foreign_slot(self):
        """A forged seed_fetch_reply whose unauthenticated payload
        counter points at slot 3 but whose report was generated for
        slot 1 must never fill slot 3 -- the slot binding is the
        MAC-covered sent_counter, not the echoed counter."""
        plan = (
            FaultPlan(seed=b"t9")
            .loss(1.0, match="seed_report")
            .loss(1.0, match="seed_fetch_reply")
        )
        scenario = Scenario.build(
            mechanism="seed",
            faults=plan,
            config=small_config(horizon=40.0),
            seed_options={
                "shared": b"seed-shared-0123",
                "min_gap": 2.0,
                "max_gap": 4.0,
                "trigger_count": 3,
                "serve_fetch": True,
                "catch_up": True,
            },
        )
        scenario.run()
        monitor = scenario.seed_monitor
        # every push and every fetch reply was eaten
        assert not any(slot.received for slot in monitor.expected)
        genuine = scenario.seed_service.reports_sent[0]  # counter 1
        target = monitor.expected[2]  # slot counter 3
        monitor._on_fetch_reply(Message(
            999, scenario.device.name, "vrf", "seed_fetch_reply",
            {"counter": target.counter, "report": genuine},
            scenario.sim.now,
        ))
        assert not target.received  # the forged binding was ignored
        # the report can only land in the slot it was generated for
        assert monitor.expected[0].received
        assert monitor.expected[0].result.healthy


def on_demand_mechanisms():
    return [
        name for name, setup in standard_mechanisms().items()
        if setup.kind == "on-demand"
    ]


class TestAcceptance:
    """The issue's headline property: a seeded 30% loss burst plus one
    prover reset, and every on-demand mechanism still completes >= 95%
    of 100 exchanges with zero false ``compromised`` verdicts."""

    EXCHANGES = 100

    @pytest.mark.parametrize("mechanism", on_demand_mechanisms())
    def test_lossy_channel_with_brownout(self, mechanism):
        spacing = 2.0
        horizon = 1.0 + spacing * self.EXCHANGES + 30.0
        scenario = Scenario.build(
            mechanism=mechanism,
            faults=f"loss=0.3@0:{horizon};reset@6",
            fault_seed=f"accept-{mechanism}".encode(),
            config=small_config(horizon=horizon, smarm_rounds=3),
            retry=RetryPolicy(
                timeout=1.0, max_retries=6, backoff=1.5,
                max_timeout=6.0, seed=f"accept-{mechanism}-r".encode(),
            ),
        )
        rounds = 3 if mechanism == "smarm" else 1
        for i in range(self.EXCHANGES):
            scenario.schedule_request(1.0 + spacing * i, rounds=rounds)
        scenario.run()

        outcomes = scenario.outcomes
        assert outcomes.total == self.EXCHANGES
        assert outcomes.completion_rate >= 0.95
        assert len(outcomes.resets) == 1
        # the channel was genuinely hostile...
        assert scenario.injector.lost_count > 0
        assert outcomes.counts().get(OUTCOME_OK, 0) < self.EXCHANGES
        # ...yet nothing was ever misread as malware
        assert not any(
            r.verdict is Verdict.COMPROMISED
            for r in scenario.verifier.results
        )
        assert not any(
            o.verdict == Verdict.COMPROMISED.value
            for o in outcomes.exchanges
        )
