"""Multiple attestation services sharing one prover.

ERASMUS explicitly composes with on-demand attestation (Section 3.3:
"measurements can be made on Prv based on a schedule *as well as* when
receiving a query"), and a deployment may run SeED pushes alongside.
These tests pin down the interactions -- in particular that the
verifier keeps independent monotonic-counter streams per protocol
(regression: a shared counter made ERASMUS collections look like
replays of SeED pushes).
"""

from repro.malware.transient import TransientMalware
from repro.ra.erasmus import CollectorVerifier, ErasmusService
from repro.ra.measurement import MeasurementConfig
from repro.ra.report import Verdict
from repro.ra.seed import SeedMonitor, SeedService
from repro.ra.smart import SmartAttestation
from repro.ra.service import OnDemandVerifier
from repro.ra.verifier import Verifier
from repro.sim.device import Device
from repro.sim.engine import Simulator
from repro.sim.network import Channel


def triple_stack():
    """One device running ERASMUS + SeED + on-demand SMART."""
    sim = Simulator()
    device = Device(sim, block_count=16, block_size=32)
    device.standard_layout()
    channel = Channel(sim, latency=0.002)
    device.attach_network(channel)
    verifier = Verifier(sim)
    verifier.enroll(device)

    erasmus = ErasmusService(
        device, period=5.0,
        config=MeasurementConfig(atomic=True, priority=50,
                                 normalize_mutable=True),
    )
    erasmus.start()
    collector = CollectorVerifier(verifier, channel,
                                  endpoint_name="vrf-collect")

    shared_seed = b"coexistence-seed"
    seed = SeedService(device, shared_seed, verifier_name="vrf-push",
                       min_gap=7.0, max_gap=11.0, trigger_count=5)
    monitor = SeedMonitor(verifier, channel, device.name, shared_seed,
                          min_gap=7.0, max_gap=11.0, trigger_count=5,
                          grace=2.0, endpoint_name="vrf-push")
    seed.start()

    smart = SmartAttestation(device)
    smart.config.normalize_mutable = True
    smart.install()
    driver = OnDemandVerifier(verifier, channel,
                              endpoint_name="vrf-ondemand")
    return sim, device, verifier, collector, monitor, driver


class TestCounterStreamIsolation:
    def test_interleaved_protocols_no_false_replays(self):
        sim, device, verifier, collector, monitor, driver = triple_stack()
        collector.collect_every(device.name, period=15.0, count=3)
        exchanges = []
        for at in (3.0, 23.0, 43.0):
            sim.schedule_at(
                at,
                lambda: exchanges.append(driver.request(device.name)),
            )
        sim.run(until=60.0)

        # Every protocol completed and nothing was misflagged.
        assert len(collector.collections) == 3
        assert monitor.missing_count() == 0
        assert all(e.result is not None for e in exchanges)
        replays = [
            r for r in verifier.results if r.verdict is Verdict.REPLAY
        ]
        assert replays == []
        healthy = [
            r for r in verifier.results if r.verdict is Verdict.HEALTHY
        ]
        # 3 collections + 5 pushes + 3 on-demand
        assert len(healthy) == 11

    def test_infection_caught_by_all_three(self):
        sim, device, verifier, collector, monitor, driver = triple_stack()
        # Resident dwell covering collections, pushes and a challenge.
        TransientMalware(device, target_block=2, infect_at=12.0,
                         leave_at=32.0)
        collector.collect_every(device.name, period=15.0, count=3)
        exchanges = []
        sim.schedule_at(
            20.0, lambda: exchanges.append(driver.request(device.name))
        )
        sim.run(until=60.0)

        assert any(
            c.result.verdict is Verdict.COMPROMISED
            for c in collector.collections
        )
        assert "compromised" in monitor.verdict_series()
        assert exchanges[0].result.verdict is Verdict.COMPROMISED

    def test_erasmus_replay_still_caught_within_its_stream(self):
        sim, device, verifier, collector, monitor, driver = triple_stack()
        collector.collect_every(device.name, period=10.0, count=2)
        sim.run(until=30.0)
        assert len(collector.collections) == 2
        first_report = collector.collections[0].report
        replay = verifier.verify_report(
            first_report, enforce_counter=True,
            counter_stream="erasmus-collect",
        )
        assert replay.verdict is Verdict.REPLAY
