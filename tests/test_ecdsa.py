"""ECDSA over the three Figure 2 curves."""

import pytest

from repro.crypto.ecdsa import (
    CURVES,
    ecdsa_generate,
    ecdsa_sign,
    ecdsa_verify,
    get_curve,
)
from repro.errors import ParameterError

CURVE_NAMES = ["secp160r1", "secp224r1", "secp256r1"]


@pytest.fixture(scope="module", params=CURVE_NAMES)
def keypair(request):
    return ecdsa_generate(request.param, seed=b"fixture")


class TestCurveParameters:
    @pytest.mark.parametrize("name", CURVE_NAMES)
    def test_generator_on_curve(self, name):
        curve = CURVES[name]
        assert curve.is_on_curve(curve.generator)

    @pytest.mark.parametrize("name", CURVE_NAMES)
    def test_generator_order(self, name):
        curve = CURVES[name]
        assert curve.multiply(curve.n, curve.generator) is None

    @pytest.mark.parametrize("name", CURVE_NAMES)
    def test_order_times_generator_minus_one(self, name):
        curve = CURVES[name]
        almost = curve.multiply(curve.n - 1, curve.generator)
        assert curve.add(almost, curve.generator) is None

    def test_bit_lengths_match_names(self):
        assert CURVES["secp160r1"].bits == 161  # n slightly exceeds 2^160
        assert CURVES["secp224r1"].bits == 224
        assert CURVES["secp256r1"].bits == 256

    def test_figure2_aliases(self):
        assert CURVES["ecdsa160"] is CURVES["secp160r1"]
        assert CURVES["ecdsa256"] is CURVES["secp256r1"]

    def test_unknown_curve_rejected(self):
        with pytest.raises(ParameterError):
            get_curve("secp521r1")


class TestGroupLaw:
    def test_identity(self):
        curve = CURVES["secp256r1"]
        g = curve.generator
        assert curve.add(None, g) == g
        assert curve.add(g, None) == g

    def test_inverse_sums_to_infinity(self):
        curve = CURVES["secp256r1"]
        g = curve.generator
        assert curve.add(g, curve.negate(g)) is None

    def test_double_equals_add_self(self):
        curve = CURVES["secp224r1"]
        g = curve.generator
        assert curve.double(g) == curve.add(g, g)

    def test_scalar_multiplication_distributes(self):
        curve = CURVES["secp160r1"]
        g = curve.generator
        left = curve.multiply(7, g)
        right = curve.add(curve.multiply(3, g), curve.multiply(4, g))
        assert left == right

    def test_multiply_zero_is_infinity(self):
        curve = CURVES["secp256r1"]
        assert curve.multiply(0, curve.generator) is None

    def test_points_stay_on_curve(self):
        curve = CURVES["secp256r1"]
        point = curve.generator
        for _ in range(10):
            point = curve.add(point, curve.generator)
            assert curve.is_on_curve(point)


class TestSignVerify:
    def test_roundtrip(self, keypair):
        signature = ecdsa_sign(keypair, b"report")
        assert ecdsa_verify(keypair, b"report", signature)

    def test_tampered_message(self, keypair):
        signature = ecdsa_sign(keypair, b"report")
        assert not ecdsa_verify(keypair, b"tampered", signature)

    def test_tampered_signature(self, keypair):
        r, s = ecdsa_sign(keypair, b"report")
        assert not ecdsa_verify(keypair, b"report", (r, s ^ 1))

    def test_wrong_key(self):
        signer = ecdsa_generate("secp256r1", seed=b"signer")
        other = ecdsa_generate("secp256r1", seed=b"other")
        signature = ecdsa_sign(signer, b"m")
        assert not ecdsa_verify(other, b"m", signature)

    def test_deterministic_nonce_stable_signature(self, keypair):
        assert ecdsa_sign(keypair, b"m") == ecdsa_sign(keypair, b"m")

    def test_different_messages_different_nonces(self, keypair):
        r1, _ = ecdsa_sign(keypair, b"m1")
        r2, _ = ecdsa_sign(keypair, b"m2")
        assert r1 != r2  # nonce reuse would leak the key

    def test_explicit_curve_call_shape(self):
        keypair = ecdsa_generate("secp224r1", seed=b"explicit")
        signature = ecdsa_sign(keypair, b"m")
        assert ecdsa_verify(keypair.curve, keypair.q, b"m", signature)

    def test_sha512_digest_truncation(self, keypair):
        signature = ecdsa_sign(keypair, b"m", hash_name="sha512")
        assert ecdsa_verify(keypair, b"m", signature, hash_name="sha512")


class TestVerifyRobustness:
    def test_out_of_range_r(self, keypair):
        _, s = ecdsa_sign(keypair, b"m")
        n = keypair.curve.n
        assert not ecdsa_verify(keypair, b"m", (0, s))
        assert not ecdsa_verify(keypair, b"m", (n, s))

    def test_out_of_range_s(self, keypair):
        r, _ = ecdsa_sign(keypair, b"m")
        n = keypair.curve.n
        assert not ecdsa_verify(keypair, b"m", (r, 0))
        assert not ecdsa_verify(keypair, b"m", (r, n))

    def test_point_off_curve_rejected(self):
        keypair = ecdsa_generate("secp256r1", seed=b"k")
        bogus_q = (keypair.q[0], keypair.q[1] ^ 1)
        signature = ecdsa_sign(keypair, b"m")
        assert not ecdsa_verify(
            keypair.curve, bogus_q, b"m", signature
        )


class TestKeyGeneration:
    def test_deterministic(self):
        a = ecdsa_generate("secp256r1", seed=b"s")
        b = ecdsa_generate("secp256r1", seed=b"s")
        assert a.d == b.d and a.q == b.q

    def test_public_point_valid(self):
        keypair = ecdsa_generate("secp160r1", seed=b"s")
        curve = keypair.curve
        assert curve.is_on_curve(keypair.q)
        assert curve.multiply(keypair.d, curve.generator) == keypair.q

    def test_private_scalar_in_range(self):
        keypair = ecdsa_generate("secp224r1", seed=b"s")
        assert 1 <= keypair.d < keypair.curve.n
