"""Event-loop profiler: site attribution, determinism, rendering."""

import functools

import pytest

from repro.obs.core import Observability
from repro.obs.profiler import (
    NULL_PROFILER,
    EventLoopProfiler,
    callback_site,
)
from repro.sim.engine import Simulator


def tick():
    pass


class Widget:
    def poke(self):
        pass


class TestCallbackSite:
    def test_plain_function(self):
        assert callback_site(tick) == f"{__name__}.tick"

    def test_bound_method_attributes_to_class(self):
        assert callback_site(Widget().poke) == f"{__name__}.Widget.poke"

    def test_partial_unwraps_to_wrapped_function(self):
        wrapped = functools.partial(tick)
        assert callback_site(wrapped) == f"{__name__}.tick"

    def test_unknown_callable_falls_back_to_type_name(self):
        class Odd:
            def __call__(self):
                pass

        site = callback_site(Odd())
        assert "Odd" in site


class TestRecording:
    def test_accumulates_per_site(self):
        profiler = EventLoopProfiler()
        profiler.record(tick, 1.0)
        profiler.record(tick, 2.0)
        profiler.record(Widget().poke, 0.5)
        assert profiler.total_events == 3
        assert profiler.total_sim_time == 3.5
        stats = profiler.sites[f"{__name__}.tick"]
        assert stats.events == 2 and stats.sim_time == 3.0

    def test_hotspot_ordering_and_tie_break(self):
        profiler = EventLoopProfiler()
        profiler.record(Widget().poke, 5.0)
        profiler.record(tick, 1.0)
        profiler.record(tick, 1.0)
        by_events = [s.site for s in profiler.hotspots(by="events")]
        assert by_events[0].endswith("tick")
        by_sim = [s.site for s in profiler.hotspots(by="sim_time")]
        assert by_sim[0].endswith("Widget.poke")
        with pytest.raises(ValueError):
            profiler.hotspots(by="nonsense")

    def test_render_includes_totals_and_shares(self):
        profiler = EventLoopProfiler()
        profiler.record(tick, 3.0)
        text = profiler.render()
        assert "TOTAL" in text and "tick" in text
        assert "100.0%" in text
        assert "wall_ms" not in text  # no wall clock injected

    def test_render_wall_column_when_clock_injected(self):
        profiler = EventLoopProfiler(wall_clock=lambda: 0.0)
        profiler.record(tick, 1.0, wall_elapsed=0.002)
        assert "wall_ms" in profiler.render()


class TestSimulatorIntegration:
    def drive(self):
        profiler = EventLoopProfiler()
        sim = Simulator(obs=Observability(profiler=profiler))
        widget = Widget()
        for delay in (1.0, 2.0, 4.0):
            sim.schedule(delay, widget.poke)
        sim.schedule(3.0, tick)
        sim.run()
        return profiler

    def test_sim_time_attributed_to_sites(self):
        profiler = self.drive()
        assert profiler.total_events == 4
        assert profiler.total_sim_time == pytest.approx(4.0)
        poke = profiler.sites[f"{__name__}.Widget.poke"]
        # advances: 0->1 (1.0), 1->2 (1.0), 3->4 (1.0)
        assert poke.events == 3
        assert poke.sim_time == pytest.approx(3.0)

    def test_two_identical_runs_identical_profiles(self):
        first = self.drive().to_dict()
        second = self.drive().to_dict()
        assert first == second
        assert all(s["wall_time"] == 0.0 for s in first["sites"])

    def test_wall_clock_bracketing_measured(self):
        ticks = iter(range(100))
        profiler = EventLoopProfiler(wall_clock=lambda: float(next(ticks)))
        sim = Simulator(obs=Observability(profiler=profiler))
        sim.schedule(1.0, tick)
        sim.run()
        stats = profiler.sites[f"{__name__}.tick"]
        assert stats.wall_time == 1.0  # one fake tick per bracket


class TestNullProfiler:
    def test_noop_and_disabled(self):
        assert not NULL_PROFILER.enabled
        NULL_PROFILER.record(tick, 1.0)
        assert NULL_PROFILER.total_events == 0
        assert NULL_PROFILER.hotspots() == []
        assert "disabled" in NULL_PROFILER.render()
        assert NULL_PROFILER.to_dict()["sites"] == []

    def test_default_simulator_skips_profiling(self):
        sim = Simulator()
        assert sim._profiler is None
