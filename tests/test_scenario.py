"""Scenario.build: the one canonical wiring path.

These tests pin the factory's contract -- validation of every axis,
which pieces each mechanism kind populates, and the opt-in nature of
the resilience layer (no retry, no faults => no extra machinery)."""

import pytest

from repro.core.tradeoff import ScenarioConfig
from repro.errors import ConfigurationError
from repro.malware.relocating import SelfRelocatingMalware
from repro.malware.transient import TransientMalware
from repro.ra.erasmus import ErasmusService
from repro.ra.measurement import MeasurementConfig
from repro.ra.service import AttestationService
from repro.resilience import FaultPlan, OutcomeReport, RetryPolicy
from repro.scenario import Scenario
from repro.sim import Simulator, Trace
from repro.units import MiB


def small_config(**overrides) -> ScenarioConfig:
    fields = dict(block_count=8, sim_block_size=MiB, horizon=20.0)
    fields.update(overrides)
    return ScenarioConfig(**fields)


class TestQuickstart:
    def test_default_build_attests_healthy(self):
        scenario = Scenario.build(mechanism="smart", config=small_config())
        exchange = scenario.driver.request(scenario.device.name)
        scenario.run(until=60)
        assert exchange.result.healthy


class TestValidation:
    def test_unknown_axes_raise(self):
        with pytest.raises(ConfigurationError):
            Scenario.build(mechanism="quantum")
        with pytest.raises(ConfigurationError):
            Scenario.build(malware="ransomware", config=small_config())
        with pytest.raises(ConfigurationError):
            Scenario.build(workload="mining", config=small_config())
        with pytest.raises(ConfigurationError):
            Scenario.build(layout="exotic", config=small_config())
        with pytest.raises(ConfigurationError):
            Scenario.build(faults=42, config=small_config())

    def test_mechanism_needs_a_network(self):
        with pytest.raises(ConfigurationError):
            Scenario.build(mechanism="smart", network=False)

    def test_none_mechanism_without_network_is_fine(self):
        scenario = Scenario.build(
            mechanism="none", network=False, config=small_config()
        )
        assert scenario.channel is None
        assert scenario.service is None
        assert scenario.driver is None

    def test_request_and_collect_are_kind_checked(self):
        erasmus = Scenario.build(mechanism="erasmus", config=small_config())
        with pytest.raises(ConfigurationError):
            erasmus.schedule_request(1.0)
        smart = Scenario.build(mechanism="smart", config=small_config())
        with pytest.raises(ConfigurationError):
            smart.schedule_collections(5.0, 2)


class TestResilienceIsOptIn:
    def test_bare_build_has_no_resilience_machinery(self):
        scenario = Scenario.build(mechanism="smart", config=small_config())
        assert scenario.retry is None
        assert scenario.outcomes is None
        assert scenario.fault_plan is None
        assert scenario.injector is None
        assert scenario.driver.retry is None

    def test_empty_fault_string_stays_inert(self):
        scenario = Scenario.build(
            mechanism="smart", faults="", config=small_config()
        )
        assert scenario.fault_plan is None
        assert scenario.injector is None
        assert scenario.outcomes is None

    def test_retry_implies_an_outcome_ledger(self):
        scenario = Scenario.build(
            mechanism="smart",
            config=small_config(),
            retry=RetryPolicy(timeout=0.5),
        )
        assert isinstance(scenario.outcomes, OutcomeReport)
        assert scenario.driver.outcomes is scenario.outcomes

    def test_explicit_ledger_is_used(self):
        ledger = OutcomeReport()
        scenario = Scenario.build(
            mechanism="smart",
            faults="loss=0.1",
            config=small_config(),
            outcomes=ledger,
        )
        assert scenario.outcomes is ledger

    def test_reset_only_plan_installs_no_channel_filter(self):
        scenario = Scenario.build(
            mechanism="smart",
            faults=FaultPlan(seed=b"r").reset(at=5.0),
            config=small_config(),
        )
        assert scenario.injector is None
        assert scenario.fault_plan is not None
        assert isinstance(scenario.outcomes, OutcomeReport)
        scenario.run()
        assert scenario.outcomes.resets == [5.0]


class TestWiring:
    def test_workloads(self):
        alarm = Scenario.build(
            mechanism="none", workload="firealarm", config=small_config()
        )
        assert alarm.app is not None
        assert len(alarm.tasks) == 1
        writers = Scenario.build(
            mechanism="none", workload="writers",
            workload_options={"tasks": 2}, config=small_config(),
        )
        assert writers.app is None
        assert len(writers.tasks) == 2

    def test_malware(self):
        transient = Scenario.build(
            mechanism="none", malware="transient",
            malware_options={"infect_at": 1.5, "dwell": 2.0},
            config=small_config(),
        )
        assert isinstance(transient.malware, TransientMalware)
        relocating = Scenario.build(
            mechanism="none", malware="relocating",
            malware_options={"rng_seed": 3}, config=small_config(),
        )
        assert isinstance(relocating.malware, SelfRelocatingMalware)

    def test_smarm_carries_its_round_count(self):
        scenario = Scenario.build(mechanism="smarm", config=small_config())
        assert scenario.rounds == 13

    def test_seed_mechanism_populates_the_seed_pieces(self):
        scenario = Scenario.build(mechanism="seed", config=small_config())
        assert scenario.seed_service is not None
        assert scenario.seed_monitor is not None
        assert scenario.service is scenario.seed_service
        assert scenario.driver is None and scenario.collector is None

    def test_measurement_config_override_on_demand(self):
        override = MeasurementConfig(algorithm="sha256", atomic=True)
        scenario = Scenario.build(
            mechanism="smart",
            config=small_config(),
            measurement_config=override,
        )
        assert isinstance(scenario.service, AttestationService)
        assert scenario.service.config is override

    def test_measurement_config_override_self_measurement(self):
        override = MeasurementConfig(algorithm="sha256")
        scenario = Scenario.build(
            mechanism="erasmus",
            config=small_config(),
            measurement_config=override,
        )
        assert isinstance(scenario.service, ErasmusService)
        assert scenario.service.config is override

    def test_injected_sim_trace_and_obs_are_honored(self):
        sim = Simulator()
        trace = Trace(max_records=10)
        scenario = Scenario.build(
            mechanism="smart", sim=sim, trace=trace, config=small_config()
        )
        assert scenario.sim is sim
        assert scenario.device.trace is trace
        assert scenario.channel.trace is trace
