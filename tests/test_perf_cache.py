"""Digest-cache correctness: unit semantics plus golden equality.

The cache is an opt-in wall-clock optimization; nothing it does may be
visible in simulated time.  The contract tested here:

* :class:`DigestCache` LRU/counter semantics in isolation;
* generation bookkeeping in :class:`Memory` (every applied mutation
  bumps, an MPU-blocked write does not, ``bump_all_generations``
  mutates in place so the measurement loop's alias stays live);
* ``Device.reset`` orphans *and* frees cached entries;
* byte-identical traces and identical verdicts cache-on vs cache-off
  for every Table-1 mechanism, including under self-relocating malware
  (whose writes must invalidate by construction) and a mid-run
  brownout;
* ERASMUS coupled with on-demand attestation on the same device,
  parametrized over the digest algorithms, yields byte-identical
  reports and availability metrics either way.
"""

import pytest

from repro.apps.firealarm import FireAlarmApp
from repro.apps.metrics import summarize_tasks
from repro.core.tradeoff import ScenarioConfig
from repro.errors import ConfigurationError, MemoryFault
from repro.perf.digest_cache import DigestCache
from repro.ra.erasmus import CollectorVerifier, ErasmusService
from repro.ra.measurement import MeasurementConfig
from repro.ra.service import OnDemandVerifier
from repro.ra.verifier import Verifier
from repro.scenario import Scenario
from repro.sim.device import Device
from repro.sim.engine import Simulator
from repro.sim.memory import Memory
from repro.sim.network import Channel


# -- DigestCache unit semantics -------------------------------------------


class TestDigestCacheUnit:
    def key(self, block=0, gen=0):
        return (block, gen, "sha256", b"k")

    def test_store_then_lookup_hit(self):
        cache = DigestCache()
        cache.store(self.key(), b"content", b"audit")
        assert cache.lookup(self.key()) == (b"content", b"audit")
        assert cache.hits == 1 and cache.misses == 0
        assert len(cache) == 1

    def test_miss_counts(self):
        cache = DigestCache()
        assert cache.lookup(self.key()) is None
        assert cache.misses == 1 and cache.hits == 0
        assert cache.hit_rate == 0.0

    def test_generation_bump_orphans_entry(self):
        cache = DigestCache()
        cache.store(self.key(gen=0), b"old", b"a0")
        assert cache.lookup(self.key(gen=1)) is None

    def test_lru_eviction_order(self):
        cache = DigestCache(capacity=2)
        cache.store(self.key(0), b"c0", b"a0")
        cache.store(self.key(1), b"c1", b"a1")
        cache.lookup(self.key(0))  # refresh 0; 1 is now LRU
        cache.store(self.key(2), b"c2", b"a2")
        assert cache.evictions == 1
        assert cache.lookup(self.key(1)) is None
        assert cache.lookup(self.key(0)) is not None
        assert cache.lookup(self.key(2)) is not None

    def test_invalidate_clears_and_counts(self):
        cache = DigestCache()
        cache.store(self.key(0), b"c", b"a")
        cache.store(self.key(1), b"c", b"a")
        assert cache.invalidate() == 2
        assert len(cache) == 0
        assert cache.invalidations == 1
        # empty invalidate is not an invalidation event
        assert cache.invalidate() == 0
        assert cache.invalidations == 1

    def test_stats_shape(self):
        cache = DigestCache(capacity=8)
        cache.store(self.key(), b"c", b"a")
        cache.lookup(self.key())
        cache.lookup(self.key(1))
        stats = cache.stats()
        assert stats["size"] == 1 and stats["capacity"] == 8
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            DigestCache(capacity=0)
        with pytest.raises(ConfigurationError):
            DigestCache(capacity=-3)


# -- Memory generation bookkeeping ----------------------------------------


class TestGenerations:
    def make_device(self, **kw):
        sim = Simulator()
        device = Device(sim, block_count=8, block_size=32, **kw)
        device.standard_layout()
        return sim, device

    def test_write_patch_load_image_bump(self):
        sim, device = self.make_device()
        memory = device.memory
        assert memory.generations == [0] * 8
        memory.write(2, b"\xaa" * 32, actor="test")
        assert memory.generation(2) == 1
        memory.patch(2, 4, b"\xbb\xbb", actor="test")
        assert memory.generation(2) == 2
        memory.load_image(memory.snapshot())
        assert all(g >= 1 for g in memory.generations)
        assert memory.generation(2) == 3

    def test_blocked_write_does_not_bump(self):
        sim, device = self.make_device()
        device.mpu.lock(3)
        with pytest.raises(MemoryFault):
            device.memory.write(3, b"\xcc" * 32, actor="malware")
        assert device.memory.generation(3) == 0
        assert not device.memory.try_write(3, b"\xcc" * 32, actor="malware")
        assert device.memory.generation(3) == 0

    def test_bump_all_mutates_in_place(self):
        sim, device = self.make_device()
        alias = device.memory.generations  # measurement loop holds this
        device.memory.bump_all_generations()
        assert alias is device.memory.generations
        assert alias == [1] * 8

    def test_device_reset_bumps_and_invalidates(self):
        cache = DigestCache()
        sim, device = self.make_device(digest_cache=cache)
        cache.store((0, 0, "sha256", device.key_fingerprint), b"c", b"a")
        before = list(device.memory.generations)
        device.reset()
        assert len(cache) == 0
        assert all(
            after > prior
            for after, prior in zip(device.memory.generations, before)
        )


# -- Golden equality across the mechanism matrix --------------------------


MECHANISMS = [
    "no-lock", "all-lock", "dec-lock", "inc-lock",
    "smart", "smarm", "erasmus", "seed",
]


def run_scenario(mechanism, cache, config=None, **build_kw):
    config = config or ScenarioConfig(block_count=24, horizon=25.0,
                                      erasmus_collect_at=20.0)
    scenario = Scenario.build(
        mechanism, digest_cache=cache, config=config, **build_kw
    )
    if scenario.driver is not None:
        # on-demand mechanisms measure only when challenged; two
        # requests make the second traversal exercise the cache
        scenario.schedule_request(config.request_at)
        scenario.schedule_request(config.request_at + 8.0)
    scenario.run()
    return scenario


def verdicts(scenario):
    return [result.verdict for result in scenario.verifier.results]


class TestGoldenEquality:
    @pytest.mark.parametrize("mechanism", MECHANISMS)
    def test_trace_and_verdicts_identical(self, mechanism):
        off = run_scenario(mechanism, cache=False)
        on = run_scenario(mechanism, cache=True)
        assert off.device.trace.render() == on.device.trace.render()
        assert verdicts(off) == verdicts(on)
        assert on.digest_cache is not None
        # the fast path actually engaged: repeat traversals hit
        assert on.digest_cache.hits > 0

    def test_cache_off_device_has_no_cache(self):
        off = run_scenario("erasmus", cache=False)
        assert off.device.digest_cache is None
        assert off.digest_cache is None


class TestRelocatingMalwareInvalidation:
    """Satellite: relocation writes bump generations, so a cached run
    must detect a moved agent exactly when an uncached run does."""

    @pytest.mark.parametrize("mechanism", ["smarm", "erasmus", "smart"])
    def test_equal_under_relocation(self, mechanism):
        kw = dict(malware="relocating",
                  malware_options={"strategy": "to-measured",
                                   "rng_seed": 99})
        off = run_scenario(mechanism, cache=False, **kw)
        on = run_scenario(mechanism, cache=True, **kw)
        assert off.device.trace.render() == on.device.trace.render()
        assert verdicts(off) == verdicts(on)

    def test_relocation_misses_stale_entries(self):
        on = run_scenario("erasmus", cache=True, malware="relocating")
        cache = on.digest_cache
        # relocation rewrote blocks between rounds: not every repeat
        # traversal can be a pure hit
        assert cache.misses > on.device.block_count

    def test_reset_mid_run_equivalence(self):
        def with_reset(cache):
            config = ScenarioConfig(block_count=24, horizon=25.0,
                                    erasmus_collect_at=20.0)
            scenario = Scenario.build("erasmus", digest_cache=cache,
                                      config=config)
            scenario.sim.schedule_at(11.3, scenario.device.reset)
            scenario.run()
            return scenario

        off = with_reset(False)
        on = with_reset(True)
        assert off.device.trace.render() == on.device.trace.render()
        assert verdicts(off) == verdicts(on)
        assert on.digest_cache.invalidations >= 1


# -- ERASMUS + on-demand on one device, per algorithm ---------------------


def coupled_run(algorithm, cache):
    sim = Simulator()
    device = Device(sim, block_count=12, block_size=32,
                    digest_cache=DigestCache() if cache else None)
    device.standard_layout()
    channel = Channel(sim, latency=0.002)
    device.attach_network(channel)
    verifier = Verifier(sim)
    verifier.enroll(device)
    service = ErasmusService(
        device, period=2.0,
        config=MeasurementConfig(algorithm=algorithm, atomic=True,
                                 priority=50, normalize_mutable=True),
        on_demand=True,
    )
    service.start()
    driver = OnDemandVerifier(verifier, channel, endpoint_name="vrf-od")
    collector = CollectorVerifier(verifier, channel,
                                  endpoint_name="vrf-collect")
    app = FireAlarmApp(device, period=0.25, sample_wcet=0.002,
                       priority=100, data_block=device.block_count - 1)
    exchanges = []
    sim.schedule_at(
        5.3, lambda: exchanges.append(driver.request(device.name))
    )
    sim.schedule_at(9.0, collector.collect, device.name)
    sim.run(until=12.0)
    availability = summarize_tasks(device, [app.task])
    return {
        "trace": device.trace.render(),
        "verdicts": [r.verdict for r in verifier.results],
        "reports": [
            bytes(record.canonical_bytes())
            for collection in collector.collections
            for record in collection.records
        ],
        "exchange_report": [
            bytes(record.canonical_bytes())
            for record in exchanges[0].report.records
        ],
        "availability": availability.to_dict(),
        "served": service.on_demand_served,
        "cache": device.digest_cache,
    }


class TestCoupledOnDemandEquality:
    @pytest.mark.parametrize(
        "algorithm", ["sha256", "sha512", "blake2b", "blake2s"]
    )
    def test_reports_and_availability_identical(self, algorithm):
        off = coupled_run(algorithm, cache=False)
        on = coupled_run(algorithm, cache=True)
        assert off["trace"] == on["trace"]
        assert off["verdicts"] == on["verdicts"]
        assert off["reports"] == on["reports"]
        assert off["reports"]  # the collection actually carried records
        assert off["exchange_report"] == on["exchange_report"]
        assert off["availability"] == on["availability"]
        assert off["served"] == on["served"] == 1
        assert on["cache"].hits > 0
