"""Device composition: layout, key, secure timer, malware hooks."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.device import Device, SecureTimer
from repro.sim.engine import Simulator
from repro.sim.network import Channel


def make_device(**kwargs):
    sim = Simulator()
    return sim, Device(sim, block_count=16, block_size=32, **kwargs)


class TestComposition:
    def test_memory_mpu_wired(self):
        _, device = make_device()
        assert device.memory.mpu is device.mpu
        assert device.memory.now() == 0.0

    def test_attestation_key_deterministic_from_seed(self):
        _, a = make_device(seed=11)
        _, b = make_device(seed=11)
        _, c = make_device(seed=12)
        assert a.attestation_key == b.attestation_key
        assert a.attestation_key != c.attestation_key

    def test_explicit_key_respected(self):
        _, device = make_device(attestation_key=b"k" * 32)
        assert device.attestation_key == b"k" * 32

    def test_attach_network(self):
        sim, device = make_device()
        channel = Channel(sim)
        nic = device.attach_network(channel)
        assert device.nic is nic
        assert nic.name == device.name

    def test_block_count_property(self):
        _, device = make_device()
        assert device.block_count == 16


class TestLayout:
    def test_standard_layout(self):
        _, device = make_device()
        device.standard_layout(code_fraction=0.5)
        code = device.memory.regions["code"]
        data = device.memory.regions["data"]
        assert code.length == 8 and not code.mutable
        assert data.length == 8 and data.mutable
        assert code.end == data.start

    def test_bad_code_fraction_rejected(self):
        _, device = make_device()
        with pytest.raises(ConfigurationError):
            device.standard_layout(code_fraction=1.5)

    def test_add_region(self):
        _, device = make_device()
        region = device.add_region("stack", 0, 4, mutable=True)
        assert device.memory.region_of(1) is region


class TestTiming:
    def test_hash_time_delegates_to_model(self):
        _, device = make_device()
        assert device.hash_time("sha256", 10**6) == pytest.approx(
            device.timing.hash_time("sha256", 10**6)
        )

    def test_block_measure_time_uses_sim_size(self):
        sim = Simulator()
        small = Device(sim, block_count=4, block_size=32)
        big = Device(sim, block_count=4, block_size=32,
                     sim_block_size=1024 * 1024, name="big")
        assert big.block_measure_time("sha256") > small.block_measure_time(
            "sha256"
        )


class TestSecureTimer:
    def test_fires_at_absolute_time(self):
        sim = Simulator()
        timer = SecureTimer(sim)
        fired = []
        timer.at(3.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [3.0]
        assert timer.fired == 1

    def test_fires_after_delay(self):
        sim = Simulator()
        timer = SecureTimer(sim)
        fired = []
        sim.schedule(1.0, lambda: timer.after(2.0, lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [3.0]

    def test_cancel_all(self):
        sim = Simulator()
        timer = SecureTimer(sim)
        fired = []
        timer.at(1.0, lambda: fired.append(1))
        timer.at(2.0, lambda: fired.append(2))
        timer.cancel_all()
        sim.run()
        assert fired == []


class TestMalwareHooks:
    class Recorder:
        def __init__(self):
            self.calls = []

        def on_measurement_start(self, mechanism, interruptible, region=""):
            self.calls.append(("start", mechanism, interruptible, region))

        def on_progress(self, progress, total, interruptible, region=""):
            self.calls.append(("progress", progress, total))

        def on_measurement_end(self):
            self.calls.append(("end",))

    def test_notifications_fan_out(self):
        _, device = make_device()
        first, second = self.Recorder(), self.Recorder()
        device.register_malware(first)
        device.register_malware(second)
        device.notify_measurement_started("smart", False)
        device.notify_block_measured(1, 16, False)
        device.notify_measurement_finished()
        assert first.calls == second.calls
        assert first.calls[0] == ("start", "smart", False, "")
        assert first.calls[1] == ("progress", 1, 16)
        assert first.calls[2] == ("end",)
