"""SMARM closed forms vs limits and vs each other."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis.smarm_math import (
    move_once_escape,
    multi_round_escape,
    rounds_for_confidence,
    single_round_escape,
    single_round_escape_limit,
    stay_put_escape,
)
from repro.errors import ParameterError


class TestSingleRound:
    def test_small_n_exact(self):
        assert single_round_escape(2) == pytest.approx(0.25)
        assert single_round_escape(4) == pytest.approx((3 / 4) ** 4)

    def test_converges_to_e_inverse(self):
        limit = single_round_escape_limit()
        assert limit == pytest.approx(math.exp(-1))
        assert abs(single_round_escape(10_000) - limit) < 1e-4

    def test_monotone_increasing_towards_limit(self):
        # ((n-1)/n)^n increases to e^-1 from below: more blocks give
        # the malware slightly *better* odds, saturating at ~0.368.
        values = [single_round_escape(n) for n in (2, 4, 16, 256)]
        assert values == sorted(values)
        assert all(v < math.exp(-1) for v in values)

    def test_moves_per_block_irrelevant(self):
        assert single_round_escape(32, moves_per_block=3) == (
            single_round_escape(32, moves_per_block=1)
        )

    def test_validation(self):
        with pytest.raises(ParameterError):
            single_round_escape(1)
        with pytest.raises(ParameterError):
            single_round_escape(8, moves_per_block=0)

    @given(st.integers(min_value=2, max_value=5000))
    def test_bounds(self, n):
        p = single_round_escape(n)
        assert 0.25 - 1e-12 <= p < math.exp(-1)


class TestMultiRound:
    def test_exponential_decay(self):
        one = multi_round_escape(64, 1)
        five = multi_round_escape(64, 5)
        assert five == pytest.approx(one ** 5)

    def test_zero_rounds_is_certain_escape(self):
        assert multi_round_escape(64, 0) == 1.0

    def test_paper_numbers(self):
        """'after 13 checks that probability is below 10^-6': the exact
        finite-n value at 13 rounds is ~2e-6 and crosses 1e-6 at 13-14
        rounds depending on n (the paper rounds down; shape identical)."""
        thirteen = multi_round_escape(64, 13)
        assert 1e-7 < thirteen < 1e-5
        fourteen = multi_round_escape(64, 14)
        assert fourteen < 1e-6

    def test_negative_rounds_rejected(self):
        with pytest.raises(ParameterError):
            multi_round_escape(8, -1)


class TestRoundsForConfidence:
    def test_matches_direct_check(self):
        for n in (16, 64, 256):
            rounds = rounds_for_confidence(n, 1e-6)
            assert multi_round_escape(n, rounds) < 1e-6
            assert multi_round_escape(n, rounds - 1) >= 1e-6

    def test_paper_regime_13_to_14(self):
        assert rounds_for_confidence(64) in (13, 14)
        assert rounds_for_confidence(1024) in (13, 14)

    def test_small_n_needs_fewer(self):
        # ((n-1)/n)^n is smaller for small n: fewer rounds needed.
        assert rounds_for_confidence(2) < rounds_for_confidence(1024)

    def test_validation(self):
        with pytest.raises(ParameterError):
            rounds_for_confidence(64, 0.0)
        with pytest.raises(ParameterError):
            rounds_for_confidence(64, 1.0)


class TestStrategyComparison:
    def test_stay_put_always_caught(self):
        assert stay_put_escape(64) == 0.0

    def test_move_once_worse_than_per_block_uniform(self):
        """[7]'s point: the optimal malware moves every block; moving
        once survives only ~1/6 of the time."""
        for n in (16, 64, 256):
            assert move_once_escape(n) < single_round_escape(n)

    def test_move_once_converges_to_one_sixth(self):
        assert move_once_escape(10_000) == pytest.approx(1 / 6, abs=1e-3)

    def test_move_once_validation(self):
        with pytest.raises(ParameterError):
            move_once_escape(1)
