"""Package-level contracts: exports, errors, versioning."""

import pytest

import repro
from repro import errors


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_subpackage_all_exports_resolve(self):
        import repro.analysis
        import repro.apps
        import repro.core
        import repro.crypto
        import repro.malware
        import repro.ra
        import repro.sim
        import repro.swarm

        for module in (
            repro.analysis, repro.apps, repro.core, repro.crypto,
            repro.malware, repro.ra, repro.sim, repro.swarm,
        ):
            for name in module.__all__:
                assert getattr(module, name) is not None, (
                    module.__name__, name,
                )

    def test_docstring_quickstart_runs(self):
        """The usage example in the package docstring must stay true."""
        from repro.sim import Simulator, Device, Channel
        from repro.ra import SmartAttestation, Verifier
        from repro.ra.service import OnDemandVerifier

        sim = Simulator()
        device = Device(sim, block_count=16, block_size=32)
        channel = Channel(sim)
        device.attach_network(channel)
        verifier = Verifier(sim)
        verifier.enroll(device)
        SmartAttestation(device).install()
        exchange = OnDemandVerifier(verifier, channel).request(device.name)
        sim.run(until=60)
        assert exchange.result.healthy


class TestErrorHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if (
                isinstance(obj, type)
                and issubclass(obj, Exception)
                and obj is not errors.ReproError
            ):
                assert issubclass(obj, errors.ReproError), name

    def test_memory_fault_carries_block(self):
        fault = errors.MemoryFault(42)
        assert fault.block_index == 42
        assert "42" in str(fault)

    def test_memory_fault_custom_message(self):
        fault = errors.MemoryFault(3, "custom text")
        assert str(fault) == "custom text"

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.VerificationError("bad report")
        with pytest.raises(errors.ProtocolError):
            raise errors.ReplayError("again")
        with pytest.raises(errors.CryptoError):
            raise errors.SignatureError("no")

    def test_simulation_errors(self):
        with pytest.raises(errors.SimulationError):
            raise errors.SchedulingError("past")
        with pytest.raises(errors.SimulationError):
            raise errors.DeadlockError("stuck")
