"""Experiment drivers: every paper artifact regenerates and makes the
claims the paper makes."""

import pytest

import repro.experiments as experiments
from repro.units import GiB, MiB


class TestFig1:
    def test_event_ordering(self):
        result = experiments.fig1_timeline(memory_mib=16)
        assert (
            result.request_sent
            < result.request_received
            <= result.t_s
            < result.t_e
            < result.report_received
            < result.verified
        )
        assert result.verdict == "healthy"

    def test_deferral_visible(self):
        deferred = experiments.fig1_timeline(memory_mib=16, deferral=0.2)
        prompt = experiments.fig1_timeline(memory_mib=16, deferral=0.0)
        gap_deferred = deferred.request_received - deferred.request_sent
        gap_prompt = prompt.request_received - prompt.request_sent
        assert gap_deferred == pytest.approx(gap_prompt + 0.2, abs=0.01)

    def test_render(self):
        text = experiments.fig1_timeline(memory_mib=16).render()
        assert "t_s" in text and "t_e" in text and "verdict" in text


class TestFig2:
    def test_report_holds_anchors(self):
        result = experiments.fig2_report()
        assert all(anchor.holds for anchor in result.anchors)

    def test_render_mentions_crossovers(self):
        text = experiments.fig2_report().render()
        assert "crossover" in text
        assert "rsa4096" in text


class TestFig3:
    def test_render(self):
        text = experiments.fig3_overview().render()
        assert "SMARM" in text and "ERASMUS" in text
        assert "Solution" in text  # the Table 1 header


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return experiments.fig4_consistency()

    def test_all_six_policies(self, result):
        assert [case.policy for case in result.cases] == [
            "no-lock", "all-lock", "all-lock-ext",
            "dec-lock", "inc-lock", "inc-lock-ext",
        ]

    def test_write_commit_pattern(self, result):
        by_policy = {case.policy: case for case in result.cases}
        # No-Lock: both mid-measurement writes land.
        assert by_policy["no-lock"].committed_writes["B"]
        assert by_policy["no-lock"].committed_writes["C"]
        # All-Lock: neither lands.
        assert not by_policy["all-lock"].committed_writes["B"]
        assert not by_policy["all-lock"].committed_writes["C"]
        # Dec-Lock: the early (already measured, released) block is
        # writable; the late (still locked) one is not.
        assert by_policy["dec-lock"].committed_writes["B"]
        assert not by_policy["dec-lock"].committed_writes["C"]
        # Inc-Lock: mirror image.
        assert not by_policy["inc-lock"].committed_writes["B"]
        assert by_policy["inc-lock"].committed_writes["C"]

    def test_write_A_and_D_never_matter(self, result):
        """Figure 4's caption: changes at A or D have no effect."""
        for case in result.cases:
            assert case.committed_writes["A"]  # before t_s: always lands
            if case.policy in ("all-lock-ext", "inc-lock-ext"):
                # D targets a locked block until t_r in ext variants.
                assert not case.committed_writes["D"]

    def test_consistency_claims(self, result):
        by_policy = {case.policy: case for case in result.cases}
        tolerance = 1e-3
        assert not by_policy["no-lock"].profile.any_consistent
        assert by_policy["dec-lock"].consistent_near(
            by_policy["dec-lock"].t_s, tolerance
        )
        assert not by_policy["dec-lock"].consistent_near(
            by_policy["dec-lock"].t_e, tolerance
        )
        assert by_policy["inc-lock"].consistent_near(
            by_policy["inc-lock"].t_e, tolerance
        )
        assert by_policy["all-lock-ext"].consistent_near(
            by_policy["all-lock-ext"].t_r, tolerance * 10
        )

    def test_render(self, result):
        text = result.render()
        assert "dec-lock" in text and "claim" in text


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return experiments.fig5_qoa()

    def test_infection1_missed_infection2_caught(self, result):
        outcomes = {o.infection.label: o for o in result.timeline.outcomes}
        assert not outcomes["infection 1"].detected
        assert outcomes["infection 2"].detected

    def test_simulation_agrees_with_analysis(self, result):
        assert result.sim_detected == {
            "infection 1": False,
            "infection 2": True,
        }

    def test_render(self, result):
        text = result.render()
        assert "infection 1: undetected" in text
        assert "infection 2: DETECTED" in text


class TestSec24:
    def test_anchors(self):
        anchors = experiments.sec24_anchors()
        assert all(a.holds for a in anchors)


class TestSec25:
    @pytest.fixture(scope="class")
    def result(self):
        return experiments.sec25_firealarm(
            memory_bytes=GiB, mechanisms=["none", "smart", "inc-lock"]
        )

    def test_smart_mp_about_7_seconds(self, result):
        smart = next(r for r in result.rows if r.mechanism == "smart")
        assert smart.mp_duration == pytest.approx(7.0, rel=0.1)

    def test_smart_alarm_latency_in_seconds(self, result):
        smart = next(r for r in result.rows if r.mechanism == "smart")
        baseline = next(r for r in result.rows if r.mechanism == "none")
        assert smart.alarm_latency > 5.0
        assert baseline.alarm_latency < 1.0

    def test_interruptible_mechanism_preserves_alarm(self, result):
        inclock = next(r for r in result.rows if r.mechanism == "inc-lock")
        assert inclock.alarm_latency < 1.0

    def test_render(self, result):
        text = result.render()
        assert "fire alarm" in text and "smart" in text


class TestSec32:
    def test_numbers(self):
        result = experiments.sec32_smarm(n_blocks=64, trials=1500)
        assert result.mc_single == pytest.approx(result.exact_single,
                                                 abs=0.04)
        assert result.rounds_needed in (13, 14)
        table = dict(result.rounds_table)
        assert table[13] < 1e-5
        assert table[1] == pytest.approx(0.365, abs=0.01)

    def test_render(self):
        text = experiments.sec32_smarm(n_blocks=32, trials=500).render()
        assert "e^-1" in text and "13" in text


class TestTable1:
    def test_all_claims_match(self):
        from repro.core.tradeoff import ScenarioConfig

        result = experiments.table1(
            config=ScenarioConfig(
                block_count=24, sim_block_size=MiB, horizon=35.0,
                erasmus_period=2.0, erasmus_collect_at=25.0,
            )
        )
        mismatches = [row for row in result.claims if not row[4]]
        assert mismatches == []
        text = result.render()
        assert "every checkable Table 1 cell matches" in text
