"""Self-hosting: the analyzer must pass over its own repository.

The acceptance contract from the linter's introduction: ``repro lint
src/`` exits 0 against the committed baseline, and deliberately
injecting a wall-clock call into the DES engine or a ``==`` digest
comparison into the report layer makes it exit non-zero with a rule
id, location and fix hint.  Ruff conformance is checked here too when
ruff is installed (CI always installs it; the local environment may
not have it).
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.staticlint import Severity, analyze_source, build_report

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_DIR = REPO_ROOT / "src"
BASELINE = REPO_ROOT / "lint-baseline.json"


def live(findings):
    return [f for f in findings if not f.suppressed and not f.baselined]


class TestSelfScan:
    def test_src_tree_is_clean(self):
        report = build_report(
            [str(SRC_DIR)], baseline_path=str(BASELINE)
        )
        offending = [
            f.render() for f in report.live
            if f.severity is Severity.ERROR
        ]
        assert report.exit_code == 0, "\n".join(offending)

    def test_scan_covers_the_whole_tree(self):
        report = build_report([str(SRC_DIR)])
        assert report.files_checked >= 75

    def test_known_suppressions_are_intentional(self):
        """Every inline allow[] in src/ is accounted for here.

        Grows only deliberately: add the justification to this list
        when adding a suppression.
        """
        report = build_report([str(SRC_DIR)])
        suppressed = sorted(
            (Path(f.path).name, f.rule_id)
            for f in report.findings
            if f.suppressed
        )
        assert suppressed == [
            # cohort list on CampaignSpec: grows with the declared
            # spec (a handful of cohorts), never per-run.
            ("campaign.py", "perf-unbounded-queue"),
            # one-shot benign-reference build at analyzer construction;
            # never on a traversal hot path.
            ("consistency.py", "perf-uncached-digest"),
            # the cache-miss fills themselves -- burst, per-block
            # inline, cached generic and seed-path generic -- are the
            # four places that compute what the cache (or the report)
            # serves afterwards; still-benign content short-circuits
            # to the interned ReferenceStore audit before any of them
            # actually hash.
            ("measurement.py", "perf-uncached-digest"),
            ("measurement.py", "perf-uncached-digest"),
            ("measurement.py", "perf-uncached-digest"),
            ("measurement.py", "perf-uncached-digest"),
            # t_r release timer: the extended locking policies hold the
            # lock past the atomic section by design (Section 3.1).
            ("measurement.py", "ra-atomic-gap"),
            # the verdict ledger (one line per submitted report -- it IS
            # the run artifact) and the exact-quantile latency list are
            # the two sanctioned unbounded accumulators in the served
            # verifier; growth is bounded by generated traffic.
            ("server.py", "perf-unbounded-queue"),
            ("server.py", "perf-unbounded-queue"),
            ("server.py", "perf-unbounded-queue"),
            # the exchange sketch's top-K slow list: both growth sites
            # are immediately followed by _trim(), which caps the list
            # at SKETCH_TOP_K entries.
            ("telemetry.py", "perf-unbounded-queue"),
            ("telemetry.py", "perf-unbounded-queue"),
        ]


class TestInjectedViolations:
    def test_wall_clock_in_engine_fails(self):
        engine_path = SRC_DIR / "repro" / "sim" / "engine.py"
        source = engine_path.read_text(encoding="utf-8") + (
            "\n\ndef _injected_stamp():\n"
            "    import time\n"
            "    return time.time()\n"
        )
        found = live(
            analyze_source(source, path=str(engine_path))
        )
        assert any(f.rule_id == "det-wall-clock" for f in found)
        finding = next(
            f for f in found if f.rule_id == "det-wall-clock"
        )
        rendered = finding.render()
        assert "engine.py" in rendered and ":" in finding.location
        assert finding.hint  # the fix hint the acceptance demands

    def test_digest_eq_in_report_fails(self):
        report_path = SRC_DIR / "repro" / "ra" / "report.py"
        source = report_path.read_text(encoding="utf-8") + (
            "\n\ndef _injected_check(report, key, algorithm):\n"
            "    expected = hmac_digest(\n"
            "        key, report.signing_input(), algorithm\n"
            "    )\n"
            "    return expected == report.auth_tag\n"
        )
        found = live(
            analyze_source(source, path=str(report_path))
        )
        assert any(f.rule_id == "crypto-digest-eq" for f in found)

    def test_injection_via_cli_exit_code(self, tmp_path, capsys):
        """End to end: the CLI exits non-zero on an injected violation."""
        from repro.cli import main

        victim = tmp_path / "repro" / "sim" / "engine_copy.py"
        victim.parent.mkdir(parents=True)
        victim.write_text(
            "import time\n\n\ndef now():\n    return time.time()\n",
            encoding="utf-8",
        )
        code = main(["lint", str(tmp_path), "--no-baseline"])
        out = capsys.readouterr().out
        assert code == 1
        assert "[det-wall-clock]" in out
        assert "engine_copy.py:5" in out
        assert "hint:" in out


@pytest.mark.skipif(
    shutil.which("ruff") is None, reason="ruff not installed"
)
class TestRuffConformance:
    def test_ruff_check_clean(self):
        proc = subprocess.run(
            ["ruff", "check", "src", "tests"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestLintCliSmoke:
    def test_module_entry_point(self):
        """``python -m repro lint --list-rules`` works as a process."""
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "--list-rules"],
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(SRC_DIR), "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "det-wall-clock" in proc.stdout
        assert "crypto-digest-eq" in proc.stdout
        assert "ra-atomic-gap" in proc.stdout
