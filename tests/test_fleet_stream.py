"""The staged pipeline: streaming reduce, shard checkpoints, resume.

The contracts under test are the tentpole guarantees of the pipeline
API (docs/fleet.md):

* streaming artifacts are byte-identical to the legacy in-RAM batch
  path, campaign by campaign;
* a campaign killed mid-shard resumes from its checkpoints and
  finalizes artifacts byte-identical to an uninterrupted pass
  (manifest included, given an injected clock);
* reducer memory stays flat in the run count.
"""

import json
import tracemalloc

import pytest

from repro.errors import ConfigurationError
from repro.fleet import (
    PipelineConfig,
    RunResult,
    RunSpec,
    SerialBackend,
    ShardCheckpointStore,
    StreamingAggregator,
    artifact_paths,
    canned_campaign,
    execute_campaign,
    run_pipeline,
    summarize,
    write_artifacts,
)
from repro.fleet.pipeline import _reduce_stream
from repro.units import MiB

FIXED_CLOCK = lambda: 1700000000.0  # noqa: E731


def fast_spec(**overrides) -> RunSpec:
    fields = dict(
        mechanism="smart",
        adversary="none",
        block_count=8,
        sim_block_size=MiB,
        horizon=10.0,
    )
    fields.update(overrides)
    return RunSpec(**fields)


def synthetic_runner(spec: RunSpec) -> RunResult:
    """Deterministic, simulation-free result for high-volume tests."""
    seed = spec.seed
    return RunResult(
        run_id=spec.run_id,
        spec=spec.to_dict(),
        detected=seed % 2 == 0,
        detection_latency=float(seed % 7) + 0.5 if seed % 2 == 0 else None,
        mp_duration=0.25 + (seed % 3) * 0.125,
        measurements=1,
        qoa={"miss_rate": (seed % 5) / 10.0},
        telemetry={"sim.events": float(100 + seed)},
    )


class KillAfter(SerialBackend):
    """Serial backend that dies (like a SIGKILL would land) after
    yielding ``n`` shard outcomes."""

    def __init__(self, n: int) -> None:
        super().__init__()
        self.n = n

    def execute(self, shards, **kwargs):
        for count, outcome in enumerate(super().execute(shards, **kwargs)):
            if count >= self.n:
                raise KeyboardInterrupt("simulated kill")
            yield outcome


def pipeline_config(**overrides) -> PipelineConfig:
    fields = dict(shard_size=2)
    fields.update(overrides)
    return PipelineConfig(**fields)


def artifact_bytes(out_dir, campaign_name):
    paths = artifact_paths(out_dir, campaign_name)
    return {
        name: getattr(paths, name).read_bytes()
        for name in ("runs", "summary_json", "summary_txt", "manifest")
    }


class TestStreamingEqualsBatch:
    @pytest.mark.parametrize("name", ["qoa", "matrix", "faults"])
    def test_canned_campaign_artifacts_byte_identical(self, name, tmp_path):
        campaign = canned_campaign(name, seed_count=1)
        specs = campaign.plan()[:6]

        report = execute_campaign(specs)
        write_artifacts(
            tmp_path / "batch", campaign, report.results, report,
            clock=FIXED_CLOCK,
        )
        run_pipeline(
            campaign, specs,
            out_dir=tmp_path / "stream",
            config=pipeline_config(),
            clock=FIXED_CLOCK,
        )

        batch = artifact_bytes(tmp_path / "batch", campaign.name)
        stream = artifact_bytes(tmp_path / "stream", campaign.name)
        # canonical artifacts: byte-for-byte
        assert stream["runs"] == batch["runs"]
        assert stream["summary_json"] == batch["summary_json"]
        assert stream["summary_txt"] == batch["summary_txt"]
        # the manifest's volatile/topology fields legitimately differ
        # (wall clock, legacy shard accounting); everything else holds
        batch_manifest = json.loads(batch["manifest"])
        stream_manifest = json.loads(stream["manifest"])
        for key in ("campaign", "spec_hash", "run_count",
                    "status_counts", "code_fingerprint", "cache_hits"):
            assert stream_manifest[key] == batch_manifest[key]

    def test_summarize_is_the_streaming_fold(self):
        specs = [fast_spec(seed=i) for i in range(8)]
        results = [synthetic_runner(spec) for spec in specs]
        aggregator = StreamingAggregator("unit")
        for result in sorted(results, key=lambda r: r.run_id):
            aggregator.add(result)
        batch = summarize(
            sorted(results, key=lambda r: r.run_id), campaign="unit"
        )
        assert aggregator.summary().to_dict() == batch.to_dict()

    def test_aggregator_merge_matches_single_pass(self):
        results = [
            synthetic_runner(fast_spec(seed=i)) for i in range(20)
        ]
        left, right = StreamingAggregator("m"), StreamingAggregator("m")
        for result in results[:11]:
            left.add(result)
        for result in results[11:]:
            right.add(result)
        merged = left.merge(right).summary()
        single = summarize(results, campaign="m")
        assert merged.total_runs == single.total_runs
        for key, group in single.groups.items():
            other = merged.groups[key]
            assert other.runs == group.runs
            assert other.detected == group.detected
            assert other.detection_latency.count == \
                group.detection_latency.count
            assert other.detection_latency.sum == pytest.approx(
                group.detection_latency.sum
            )
            assert other.mean_miss_rate == pytest.approx(
                group.mean_miss_rate
            )


class TestKillAndResume:
    def test_kill_mid_campaign_then_resume_byte_identical(self, tmp_path):
        campaign = canned_campaign("qoa", seed_count=1)
        specs = campaign.plan()[:6]

        run_pipeline(
            campaign, specs, out_dir=tmp_path / "clean",
            config=pipeline_config(), clock=FIXED_CLOCK,
            perf=lambda: 0.0,
        )

        with pytest.raises(KeyboardInterrupt):
            run_pipeline(
                campaign, specs, out_dir=tmp_path / "killed",
                backend=KillAfter(1), config=pipeline_config(),
                clock=FIXED_CLOCK, perf=lambda: 0.0,
            )
        shards_dir = tmp_path / "killed" / campaign.name / "shards"
        checkpointed = sorted(p.name for p in shards_dir.glob("*.jsonl"))
        assert checkpointed == ["shard-000000.jsonl"]
        assert not (
            tmp_path / "killed" / campaign.name / "runs.jsonl"
        ).exists()

        report = run_pipeline(
            campaign, specs, out_dir=tmp_path / "killed",
            config=pipeline_config(resume=True), clock=FIXED_CLOCK,
            perf=lambda: 0.0,
        )
        assert report.restored == 2
        assert report.executed == 4
        assert report.total_runs == 6
        assert not shards_dir.exists()  # consumed by the finalize

        assert artifact_bytes(tmp_path / "killed", campaign.name) == \
            artifact_bytes(tmp_path / "clean", campaign.name)

    def test_resume_of_finished_campaign_is_a_noop(self, tmp_path):
        campaign = canned_campaign("qoa", seed_count=1)
        specs = campaign.plan()[:4]
        run_pipeline(
            campaign, specs, out_dir=tmp_path,
            config=pipeline_config(), clock=FIXED_CLOCK,
            perf=lambda: 0.0,
        )
        before = artifact_bytes(tmp_path, campaign.name)
        report = run_pipeline(
            campaign, specs, out_dir=tmp_path,
            config=pipeline_config(resume=True), clock=FIXED_CLOCK,
            perf=lambda: 0.0,
        )
        assert report.executed == 0
        assert "0 runs" in report.summary_line()
        assert "nothing to do" in report.summary_line()
        assert artifact_bytes(tmp_path, campaign.name) == before

    def test_resumed_results_are_not_marked_cache_hits(self, tmp_path):
        # byte-identity demands it: an uninterrupted run has
        # cache_hits=0, so a resumed one must too
        campaign = canned_campaign("qoa", seed_count=1)
        specs = campaign.plan()[:4]
        with pytest.raises(KeyboardInterrupt):
            run_pipeline(
                campaign, specs, out_dir=tmp_path,
                backend=KillAfter(1), config=pipeline_config(),
                clock=FIXED_CLOCK,
            )
        report = run_pipeline(
            campaign, specs, out_dir=tmp_path,
            config=pipeline_config(resume=True), clock=FIXED_CLOCK,
        )
        assert report.cache_hits == 0
        paths = artifact_paths(tmp_path, campaign.name)
        manifest = json.loads(paths.manifest.read_text())
        assert manifest["cache_hits"] == 0
        assert manifest["run_count"] == 4


class TestShardCheckpoints:
    def store_for(self, tmp_path, specs, shard_size=2, **meta):
        campaign = canned_campaign("qoa", seed_count=1)
        fields = dict(
            out_dir=tmp_path,
            campaign_name=campaign.name,
            spec_hash=campaign.spec_hash,
            specs=specs,
            shard_size=shard_size,
            code_fingerprint="fp-1",
        )
        fields.update(meta)
        return ShardCheckpointStore(**fields)

    def test_checkpoints_round_trip_sorted(self, tmp_path):
        specs = [fast_spec(seed=i) for i in range(4)]
        results = [synthetic_runner(spec) for spec in specs]
        store = self.store_for(tmp_path, specs)
        store.open()
        store.write_shard(0, list(reversed(results)))
        read_back = list(store.read_shard(0))
        assert [r.run_id for r in read_back] == sorted(
            r.run_id for r in results
        )
        assert read_back[0].to_json_line() == sorted(
            results, key=lambda r: r.run_id
        )[0].to_json_line()

    def test_meta_mismatch_invalidates_checkpoints(self, tmp_path):
        specs = [fast_spec(seed=i) for i in range(4)]
        store = self.store_for(tmp_path, specs)
        store.open()
        store.write_shard(0, [synthetic_runner(specs[0])])
        assert store.completed_shards() == {0: store.shard_path(0)}

        # a different shard size is a different plan partition: the
        # old checkpoints must not be restorable
        stale = self.store_for(tmp_path, specs, shard_size=3)
        assert stale.completed_shards() == {}
        stale.open()  # discards the mismatched directory
        assert not stale.shard_path(0).exists()

    def test_code_fingerprint_mismatch_invalidates(self, tmp_path):
        specs = [fast_spec(seed=i) for i in range(2)]
        store = self.store_for(tmp_path, specs)
        store.open()
        store.write_shard(0, [synthetic_runner(specs[0])])
        edited = self.store_for(tmp_path, specs, code_fingerprint="fp-2")
        assert edited.completed_shards() == {}

    def test_pipeline_validates_config(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(shard_size=0)
        with pytest.raises(ConfigurationError):
            PipelineConfig(retries=-1)


class TestBoundedMemory:
    def reduce_peak(self, tmp_path, count: int) -> int:
        campaign = canned_campaign("qoa", seed_count=1)
        paths = artifact_paths(tmp_path, f"mem-{count}")
        paths.root.mkdir(parents=True, exist_ok=True)
        specs = [fast_spec(seed=i) for i in range(count)]
        stream = (
            synthetic_runner(spec)
            for spec in sorted(specs, key=lambda s: s.run_id)
        )
        tracemalloc.start()
        try:
            aggregator = _reduce_stream(stream, paths, campaign)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert aggregator.total == count
        return peak

    def test_reducer_memory_flat_in_run_count(self, tmp_path):
        small = self.reduce_peak(tmp_path, 300)
        large = self.reduce_peak(tmp_path, 3000)
        # 10x the runs must not cost 10x the memory; allow generous
        # slack for allocator noise while still catching O(runs) state
        assert large < max(2.5 * small, small + 256 * 1024), (
            small, large
        )
