"""Chrome trace-event exporter: structure, clamping, golden file."""

import json
from pathlib import Path

from repro.obs.chrome import chrome_trace_events, write_chrome_trace
from repro.obs.spans import SpanTracker
from repro.sim.trace import Trace

GOLDEN = Path(__file__).parent / "golden"


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def capture():
    """A small deterministic capture: round > measurement > 2 blocks,
    plus a retrospective network delivery and flat trace markers."""
    clock = FakeClock()
    spans = SpanTracker(clock=clock)
    trace = Trace()

    trace.record(0.0, "ra.request", "verifier")
    round_ = spans.begin_span("ra.round", category="ra.service",
                              mechanism="smarm")
    clock.now = 0.001
    mp = spans.begin_span("ra.measurement", category="ra.measurement",
                          blocks=2, order="shuffled")
    block = spans.begin_span("ra.block", category="ra.measurement",
                             position=1)
    clock.now = 0.101
    spans.end_span(block)
    block = spans.begin_span("ra.block", category="ra.measurement",
                             position=2)
    clock.now = 0.201
    spans.end_span(block)
    spans.end_span(mp, digest="deadbeef")
    clock.now = 0.25
    spans.end_span(round_, records=1)
    spans.add_span("net.delivery", 0.25, 0.3, category="net",
                   src="dev", dst="verifier", kind="ra.reply")
    trace.record(0.3, "ra.reply", "dev")
    return spans, trace


class TestEventStructure:
    def test_spans_become_complete_events_in_microseconds(self):
        spans, _ = capture()
        events = chrome_trace_events(spans)
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == len(spans)
        mp = next(e for e in xs if e["name"] == "ra.measurement")
        assert mp["ts"] == 1000.0  # 0.001 s -> 1000 us
        assert mp["dur"] == 200000.0
        assert mp["cat"] == "ra.measurement"
        assert mp["args"]["parent_id"] == 1

    def test_tracks_grouped_by_category_root_with_names(self):
        spans, trace = capture()
        events = chrome_trace_events(spans, trace)
        meta = {
            e["args"]["name"]: e["tid"]
            for e in events if e["ph"] == "M"
        }
        # "ra" sorts before "net" by the fixed track order
        assert meta["ra"] < meta["net"] < meta["trace"]
        delivery = next(
            e for e in events
            if e["ph"] == "X" and e["name"] == "net.delivery"
        )
        assert delivery["tid"] == meta["net"]

    def test_trace_records_become_instants(self):
        spans, trace = capture()
        events = chrome_trace_events(spans, trace)
        instants = [e for e in events if e["ph"] == "i"]
        assert [e["name"] for e in instants] == ["ra.request", "ra.reply"]
        assert instants[0]["args"]["source"] == "verifier"

    def test_open_span_clamped_and_marked(self):
        clock = FakeClock()
        spans = SpanTracker(clock=clock)
        spans.begin_span("leaked", category="ra")
        clock.now = 2.0
        done = spans.begin_span("done", category="ra")
        spans.end_span(done)
        events = chrome_trace_events(spans)
        leaked = next(e for e in events if e["name"] == "leaked")
        assert leaked["args"]["truncated"] is True
        assert leaked["dur"] == 2.0e6  # clamped to the latest timestamp

    def test_explicit_clamp_end_wins(self):
        spans = SpanTracker()
        spans.begin_span("open")
        events = chrome_trace_events(spans, clamp_end=5.0)
        assert events[-1]["dur"] == 5.0e6


class TestGoldenFile:
    def test_full_capture_matches_golden(self, tmp_path):
        spans, trace = capture()
        out = tmp_path / "trace.json"
        count = write_chrome_trace(out, spans, trace)
        written = out.read_text(encoding="utf-8")
        golden = (GOLDEN / "chrome_trace.json").read_text(encoding="utf-8")
        assert written == golden
        payload = json.loads(written)
        assert len(payload["traceEvents"]) == count
        assert payload["displayTimeUnit"] == "ms"

    def test_output_is_valid_json_with_sorted_keys(self, tmp_path):
        spans, trace = capture()
        out = tmp_path / "trace.json"
        write_chrome_trace(out, spans, trace)
        payload = json.loads(out.read_text())
        assert set(payload) == {
            "traceEvents", "displayTimeUnit", "otherData",
        }
