"""ERASMUS: self-measurement cadence, collection, QoA behaviour."""

import pytest

from repro.errors import ConfigurationError
from repro.malware.transient import TransientMalware
from repro.ra.erasmus import CollectorVerifier, ErasmusService
from repro.ra.measurement import MeasurementConfig
from repro.ra.report import Verdict
from repro.ra.verifier import Verifier
from repro.sim.device import Device
from repro.sim.engine import Simulator
from repro.sim.network import Channel


def erasmus_rig(period=2.0, history_size=64, scheduler=None,
                atomic=True, sim_block_size=None):
    sim = Simulator()
    device = Device(sim, block_count=12, block_size=32,
                    sim_block_size=sim_block_size)
    device.standard_layout()
    channel = Channel(sim, latency=0.002)
    device.attach_network(channel)
    verifier = Verifier(sim)
    verifier.enroll(device)
    config = MeasurementConfig(
        algorithm="blake2s", order="sequential", atomic=atomic,
        priority=50, normalize_mutable=True,
    )
    service = ErasmusService(
        device, period=period, config=config,
        history_size=history_size, scheduler=scheduler,
    )
    collector = CollectorVerifier(verifier, channel)
    return sim, device, verifier, service, collector


class TestSelfMeasurement:
    def test_cadence(self):
        sim, device, _, service, _ = erasmus_rig(period=2.0)
        service.start()
        sim.run(until=11.0)
        assert service.measurements_done == 6  # t = 0, 2, ..., 10
        starts = [record.t_start for record in service.history]
        for index, start in enumerate(starts):
            assert start == pytest.approx(index * 2.0, abs=0.1)

    def test_counters_monotonic(self):
        sim, _, _, service, _ = erasmus_rig()
        service.start()
        sim.run(until=9.0)
        counters = [record.counter for record in service.history]
        assert counters == sorted(counters)
        assert len(set(counters)) == len(counters)

    def test_history_ring_buffer(self):
        sim, _, _, service, _ = erasmus_rig(period=1.0, history_size=4)
        service.start()
        sim.run(until=10.5)
        assert len(service.history) == 4
        assert service.dropped_records == 7
        # Newest records are kept.
        assert service.history[-1].counter == service.measurements_done

    def test_invalid_period_rejected(self):
        sim = Simulator()
        device = Device(sim, block_count=4, block_size=16)
        with pytest.raises(ConfigurationError):
            ErasmusService(device, period=0.0)


class TestCollection:
    def test_collection_returns_history(self):
        sim, device, verifier, service, collector = erasmus_rig(period=2.0)
        service.start()
        results = []
        sim.schedule_at(
            9.0, collector.collect, device.name, results.append
        )
        sim.run(until=12.0)
        assert len(results) == 1
        collection = results[0]
        assert collection.result.verdict is Verdict.HEALTHY
        assert len(collection.records) == 5
        assert collection.result.freshness is not None

    def test_periodic_collections(self):
        sim, device, verifier, service, collector = erasmus_rig(period=1.0)
        service.start()
        collector.collect_every(device.name, period=5.0, count=3)
        sim.run(until=16.0)
        assert len(collector.collections) == 3

    def test_transient_spanning_measurement_detected(self):
        sim, device, verifier, service, collector = erasmus_rig(period=2.0)
        service.start()
        TransientMalware(device, target_block=2, infect_at=2.5,
                         leave_at=4.5)  # spans measurement at t=4
        sim.schedule_at(9.0, collector.collect, device.name)
        sim.run(until=12.0)
        collection = collector.collections[0]
        assert collection.result.verdict is Verdict.COMPROMISED
        # The dirty interval localizes the infection around t=4.
        assert any(
            start <= 4.0 <= end + 0.5
            for start, end in collection.dirty_intervals
        )

    def test_transient_between_measurements_missed(self):
        sim, device, verifier, service, collector = erasmus_rig(period=2.0)
        service.start()
        TransientMalware(device, target_block=2, infect_at=2.2,
                         leave_at=3.8)  # strictly inside (2, 4)
        sim.schedule_at(9.0, collector.collect, device.name)
        sim.run(until=12.0)
        assert collector.collections[0].result.verdict is Verdict.HEALTHY

    def test_collection_replay_rejected(self):
        """A replayed (old) collection reply carries a stale counter."""
        sim, device, verifier, service, collector = erasmus_rig(period=1.0)
        service.start()
        collector.collect_every(device.name, period=3.0, count=2)
        sim.run(until=8.0)
        first = collector.collections[0].result
        assert first.verdict is Verdict.HEALTHY
        # Re-present the first (older) report verbatim: the monotonic
        # counter of the collection stream has moved on, so it must be
        # flagged as a replay.
        replayed = verifier.verify_report(
            collector.collections[0].report, enforce_counter=True,
            counter_stream="erasmus-collect",
        )
        assert replayed.verdict is Verdict.REPLAY


class TestContextAwareScheduling:
    def test_scheduler_defers_measurement(self):
        deferred = []

        def scheduler(device, nominal, index):
            deferred.append(nominal)
            return nominal + 0.25

        sim, _, _, service, _ = erasmus_rig(period=2.0,
                                            scheduler=scheduler)
        service.start()
        sim.run(until=7.0)
        starts = [record.t_start for record in service.history]
        for index, start in enumerate(starts):
            assert start == pytest.approx(index * 2.0 + 0.25, abs=0.1)

    def test_scheduler_cannot_move_measurement_earlier(self):
        def scheduler(device, nominal, index):
            return nominal - 5.0  # clamped to nominal

        sim, _, _, service, _ = erasmus_rig(period=2.0,
                                            scheduler=scheduler)
        service.start()
        sim.run(until=5.0)
        starts = [record.t_start for record in service.history]
        assert starts[1] >= 2.0 - 1e-9
