"""Measurement records and authenticated reports."""

import pytest

from repro.errors import VerificationError
from repro.ra.report import (
    AttestationReport,
    MeasurementRecord,
    Verdict,
    VerificationResult,
)


def make_record(**overrides):
    defaults = dict(
        device="prv",
        mechanism="smart",
        algorithm="blake2s",
        nonce=b"nonce123",
        counter=1,
        digest=b"\xAA" * 32,
        t_start=1.0,
        t_end=2.0,
        block_count=16,
    )
    defaults.update(overrides)
    return MeasurementRecord(**defaults)


class TestCanonicalBytes:
    def test_stable(self):
        assert make_record().canonical_bytes() == make_record().canonical_bytes()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("device", "other"),
            ("mechanism", "smarm"),
            ("algorithm", "sha256"),
            ("nonce", b"different"),
            ("counter", 2),
            ("digest", b"\xBB" * 32),
            ("t_start", 1.5),
            ("t_end", 2.5),
            ("block_count", 8),
            ("order_seed", b"seed"),
            ("region", "code"),
            ("normalized", True),
        ],
    )
    def test_every_authenticated_field_changes_bytes(self, field, value):
        assert make_record().canonical_bytes() != make_record(
            **{field: value}
        ).canonical_bytes()

    def test_audit_fields_do_not_change_bytes(self):
        """Audit instrumentation is not part of the wire format."""
        audited = make_record(
            audit_block_times=(1.0,) * 16,
            audit_block_hashes=(b"\x11" * 8,) * 16,
            interruptions=5,
        )
        assert audited.canonical_bytes() == make_record().canonical_bytes()

    def test_duration(self):
        assert make_record().duration == pytest.approx(1.0)


class TestAttestationReport:
    KEY = b"shared-key"

    def test_authenticate_and_verify(self):
        report = AttestationReport.authenticate(
            self.KEY, "prv", [make_record()], sent_counter=3
        )
        assert report.verify_tag(self.KEY)

    def test_wrong_key_rejected(self):
        report = AttestationReport.authenticate(
            self.KEY, "prv", [make_record()]
        )
        assert not report.verify_tag(b"other-key")

    def test_tampered_record_rejected(self):
        report = AttestationReport.authenticate(
            self.KEY, "prv", [make_record()]
        )
        forged = AttestationReport(
            device=report.device,
            records=(make_record(digest=b"\xCC" * 32),),
            auth_tag=report.auth_tag,
            sent_counter=report.sent_counter,
        )
        assert not forged.verify_tag(self.KEY)

    def test_tampered_counter_rejected(self):
        report = AttestationReport.authenticate(
            self.KEY, "prv", [make_record()], sent_counter=1
        )
        forged = AttestationReport(
            report.device, report.records, report.auth_tag, sent_counter=9
        )
        assert not forged.verify_tag(self.KEY)

    def test_multi_record_report(self):
        records = [make_record(counter=i, t_end=float(i)) for i in (1, 2, 3)]
        report = AttestationReport.authenticate(self.KEY, "prv", records)
        assert len(report) == 3
        assert report.verify_tag(self.KEY)

    def test_newest_selects_latest_end(self):
        records = [
            make_record(counter=1, t_end=5.0),
            make_record(counter=2, t_end=9.0),
            make_record(counter=3, t_end=7.0),
        ]
        report = AttestationReport.authenticate(self.KEY, "prv", records)
        assert report.newest.counter == 2

    def test_newest_on_empty_raises(self):
        report = AttestationReport("prv", (), b"", 0)
        with pytest.raises(VerificationError):
            report.newest


class TestVerificationResult:
    def test_healthy_property(self):
        result = VerificationResult(Verdict.HEALTHY, "prv", 1.0)
        assert result.healthy
        assert not VerificationResult(Verdict.COMPROMISED, "prv", 1.0).healthy

    def test_str_contains_verdict(self):
        result = VerificationResult(
            Verdict.REPLAY, "prv", 3.0, detail="nonce mismatch"
        )
        text = str(result)
        assert "replay" in text and "nonce mismatch" in text
