"""Instrumentation end-to-end: engine counters, attestation spans,
fleet telemetry parity, and the obs/profile CLI commands."""

import json

import pytest

from repro.cli import main
from repro.fleet import ExecutorConfig, RunSpec, execute_campaign, execute_run
from repro.fleet.results import summarize
from repro.obs.core import NULL_OBS, Observability
from repro.sim.engine import Simulator
from repro.units import MiB


def spec(**overrides) -> RunSpec:
    fields = dict(
        mechanism="all-lock",
        adversary="none",
        block_count=8,
        sim_block_size=MiB,
        horizon=10.0,
    )
    fields.update(overrides)
    return RunSpec(**fields)


class TestEngineCounters:
    def test_scheduled_fired_cancelled(self):
        obs = Observability.enabled()
        sim = Simulator(obs=obs)
        keep = [sim.schedule(float(i), lambda: None) for i in range(4)]
        keep[2].cancel()
        sim.run()
        flat = obs.metrics.snapshot_flat()
        assert flat["sim.events.scheduled"] == 4.0
        assert flat["sim.events.fired"] == 3.0
        assert flat["sim.events.cancelled"] == 1.0

    def test_metric_timestamps_use_sim_clock(self):
        obs = Observability.enabled()
        sim = Simulator(obs=obs)
        counter = obs.metrics.counter("probe")
        sim.schedule(2.5, counter.inc)
        sim.run()
        assert counter.updated_at == 2.5

    def test_default_simulator_attaches_null_bundle(self):
        sim = Simulator()
        assert sim.obs is NULL_OBS
        assert sim._m_scheduled is None
        sim.schedule(1.0, lambda: None)
        sim.run()  # no instrumentation side effects
        assert sim.obs.metrics.snapshot_flat() == {}


class TestAttestationSpans:
    def run_instrumented(self, **overrides):
        obs = Observability.enabled()
        execute_run(spec(**overrides), obs=obs)
        return obs

    def test_measurement_spans_nest_blocks(self):
        obs = self.run_instrumented()
        mps = obs.spans.find(name="ra.measurement")
        assert len(mps) >= 1
        blocks = obs.spans.children_of(mps[0])
        assert [b.name for b in blocks] == ["ra.block"] * 8

    def test_lock_hold_span_recorded(self):
        obs = self.run_instrumented()
        holds = obs.spans.find(name="ra.lock_hold")
        assert holds and holds[0].args["policy"] == "all-lock"
        assert holds[0].duration > 0

    def test_round_and_delivery_spans(self):
        obs = self.run_instrumented(mechanism="smart")
        assert obs.spans.find(name="ra.round")
        assert obs.spans.find(name="net.delivery", category="net")

    def test_no_open_spans_after_healthy_run(self):
        obs = self.run_instrumented()
        assert obs.spans.open_spans() == []

    def test_identical_runs_identical_span_sets(self):
        first = [s.to_dict() for s in self.run_instrumented().spans]
        second = [s.to_dict() for s in self.run_instrumented().spans]
        assert first == second


class TestFleetTelemetry:
    def test_execute_run_snapshots_metrics_by_default(self):
        result = execute_run(spec())
        assert result.telemetry["sim.events.fired"] > 0
        assert result.telemetry["ra.blocks.measured{mechanism=all-lock}"] \
            == 8.0
        assert result.telemetry[
            "ra.measurement.duration{mechanism=all-lock}.count"
        ] == 1.0

    def test_telemetry_survives_jsonl_round_trip(self):
        from repro.fleet.telemetry import RunResult

        result = execute_run(spec())
        back = RunResult.from_json_line(result.to_json_line())
        assert back.telemetry == result.telemetry

    def test_serial_and_parallel_telemetry_identical(self):
        specs = [spec(), spec(mechanism="smart"),
                 spec(mechanism="erasmus", horizon=20.0)]
        serial = execute_campaign(
            specs, ExecutorConfig(mode="serial")
        ).results
        parallel = execute_campaign(
            specs, ExecutorConfig(mode="parallel", workers=2)
        ).results
        by_id = lambda rs: {r.run_id: r.telemetry for r in rs}  # noqa: E731
        assert by_id(serial) == by_id(parallel)
        assert all(t for t in by_id(serial).values())

    def test_summarize_folds_telemetry_totals(self):
        results = [execute_run(spec()), execute_run(spec())]
        summary = summarize(results, campaign="test")
        group = summary.group("all-lock", "none")
        assert group.telemetry_totals["sim.events.fired"] == \
            2 * results[0].telemetry["sim.events.fired"]
        assert "telemetry_totals" in group.to_dict()


class TestCliCommands:
    def test_obs_export_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main([
            "obs", "export-trace", "--campaign", "locking",
            "--index", "0", "--out", str(out),
        ])
        assert code == 0
        assert "trace events" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        names = {e["name"] for e in payload["traceEvents"]}
        assert "ra.measurement" in names

    def test_obs_export_metrics_prometheus(self, tmp_path, capsys):
        out = tmp_path / "metrics.prom"
        code = main([
            "obs", "export-metrics", "--campaign", "locking",
            "--index", "0", "--out", str(out),
        ])
        assert code == 0
        text = out.read_text()
        assert "# TYPE sim_events_fired counter" in text

    def test_obs_export_metrics_jsonl(self, tmp_path, capsys):
        out = tmp_path / "metrics.jsonl"
        code = main([
            "obs", "export-metrics", "--campaign", "locking",
            "--format", "jsonl", "--out", str(out),
        ])
        assert code == 0
        rows = [json.loads(line)
                for line in out.read_text().splitlines()]
        assert any(r["metric"] == "sim.events.fired" for r in rows)

    def test_obs_index_out_of_range(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "obs", "export-trace", "--campaign", "locking",
                "--index", "9999",
                "--out", str(tmp_path / "x.json"),
            ])

    def test_profile_prints_hotspot_table(self, capsys):
        code = main([
            "profile", "--campaign", "qoa", "--runs", "1", "--top", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out and "events" in out

    def test_profile_no_wall_is_deterministic(self, capsys):
        assert main(["profile", "--campaign", "qoa", "--runs", "1",
                     "--no-wall"]) == 0
        first = capsys.readouterr().out
        assert main(["profile", "--campaign", "qoa", "--runs", "1",
                     "--no-wall"]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "wall_ms" not in first
