"""The cross-mechanism evaluation harness (empirical Table 1)."""

import pytest

from repro.core.solution import Feature
from repro.core.tradeoff import (
    ScenarioConfig,
    evaluate_all,
    run_scenario,
    standard_mechanisms,
)
from repro.errors import ConfigurationError
from repro.units import MiB

# One reduced-geometry config shared by the module (fast, same physics).
FAST = ScenarioConfig(
    block_count=24,
    sim_block_size=MiB,
    smarm_rounds=13,
    horizon=35.0,
    erasmus_period=2.0,
    erasmus_collect_at=25.0,
)


@pytest.fixture(scope="module")
def matrix():
    return evaluate_all(config=FAST)


class TestMatrixStructure:
    def test_all_cells_present(self, matrix):
        keys = {m for m, _ in matrix.outcomes}
        assert keys == {
            "smart", "all-lock", "dec-lock", "inc-lock",
            "smarm", "erasmus", "no-lock",
        }
        for key in keys:
            for adversary in ("none", "relocating", "transient"):
                assert (key, adversary) in matrix.outcomes

    def test_render_has_all_rows(self, matrix):
        text = matrix.render()
        for key in ("smart", "dec-lock", "smarm", "erasmus"):
            assert key in text

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ConfigurationError):
            evaluate_all(mechanisms=["quantum"], config=FAST)


class TestNoFalsePositives:
    def test_clean_runs_stay_healthy(self, matrix):
        for mechanism in ("smart", "all-lock", "dec-lock", "inc-lock",
                          "smarm", "erasmus", "no-lock"):
            assert not matrix.false_positive(mechanism), mechanism


class TestDetectionCells:
    def test_relocating_column(self, matrix):
        assert matrix.detects_relocating("smart")
        assert matrix.detects_relocating("all-lock")
        assert matrix.detects_relocating("dec-lock")
        assert matrix.detects_relocating("inc-lock")
        assert matrix.detects_relocating("smarm")
        assert matrix.detects_relocating("erasmus")
        assert not matrix.detects_relocating("no-lock")

    def test_transient_column(self, matrix):
        assert matrix.detects_transient("smart")
        assert matrix.detects_transient("all-lock")
        assert matrix.detects_transient("dec-lock")
        assert matrix.detects_transient("erasmus")
        assert not matrix.detects_transient("inc-lock")
        assert not matrix.detects_transient("smarm")
        assert not matrix.detects_transient("no-lock")


class TestAvailabilityCells:
    def test_writable_availability(self, matrix):
        assert matrix.writable_availability("smart") is Feature.NO
        assert matrix.writable_availability("all-lock") is Feature.NO
        assert matrix.writable_availability("smarm") is Feature.YES
        assert matrix.writable_availability("no-lock") is Feature.YES
        assert matrix.writable_availability("dec-lock") in (
            Feature.PARTIAL, Feature.YES,
        )

    def test_interruptibility(self, matrix):
        assert matrix.interruptibility("smart") is Feature.NO
        assert matrix.interruptibility("erasmus") is Feature.NO
        assert matrix.interruptibility("smarm") in (
            Feature.YES, Feature.PARTIAL,
        )
        assert matrix.interruptibility("no-lock") in (
            Feature.YES, Feature.PARTIAL,
        )

    def test_atomic_mechanisms_block_the_task(self, matrix):
        smart = matrix.outcome("smart", "none")
        nolock = matrix.outcome("no-lock", "none")
        # Under SMART the fire-alarm task waits out whole measurements.
        assert smart.task_worst_response > 10 * nolock.task_worst_response
        assert smart.mp_interruptions == 0
        assert nolock.mp_interruptions > 0


class TestClaimComparison:
    def test_every_checkable_claim_matches(self, matrix):
        mismatches = [row for row in matrix.against_claims() if not row[4]]
        assert mismatches == []

    def test_claim_rows_cover_table1_mechanisms(self, matrix):
        rows = matrix.against_claims()
        mechanisms = {row[0] for row in rows}
        assert mechanisms == {
            "smart", "all-lock", "dec-lock", "inc-lock", "smarm",
            "erasmus",
        }  # no-lock is the strawman, not a Table 1 row


class TestSingleScenario:
    def test_run_scenario_summary(self):
        setups = standard_mechanisms()
        outcome = run_scenario(setups["smart"], "none", FAST)
        text = outcome.summary()
        assert "smart" in text and "detected=False" in text

    def test_lock_ops_counted_for_locking_mechanisms(self):
        setups = standard_mechanisms()
        locked = run_scenario(setups["all-lock"], "none", FAST)
        unlocked = run_scenario(setups["smarm"], "none", FAST)
        assert locked.lock_ops > 0
        assert unlocked.lock_ops == 0
