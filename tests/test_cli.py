"""The command-line experiment driver."""

import pytest

from repro.cli import main


class TestCommands:
    def test_fig1(self, capsys):
        assert main(["fig1", "--memory", "8MiB"]) == 0
        out = capsys.readouterr().out
        assert "t_s" in out and "verdict" in out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "crossover" in out and "OK" in out

    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "SMARM" in out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "dec-lock" in out

    def test_fig5(self, capsys):
        assert main(["fig5", "--tm", "4", "--tc", "16"]) == 0
        out = capsys.readouterr().out
        assert "DETECTED" in out and "undetected" in out

    def test_faults(self, capsys):
        assert main([
            "faults", "--exchanges", "6", "--mechanisms", "smart",
            "--plan", "loss=0.3@0:20;reset@4",
        ]) == 0
        out = capsys.readouterr().out
        assert "fault plan:" in out
        assert "smart:" in out and "completion" in out
        assert "WARNING" not in out  # no false compromised verdicts

    def test_faults_rejects_bad_plan(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["faults", "--plan", "loss=banana"])

    def test_smarm(self, capsys):
        assert main(["smarm", "--blocks", "32", "--trials", "400"]) == 0
        out = capsys.readouterr().out
        assert "e^-1" in out

    def test_firealarm_small_memory(self, capsys):
        assert main(["firealarm", "--memory", "64MiB"]) == 0
        out = capsys.readouterr().out
        assert "alarm latency" in out


class TestArgHandling:
    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["fig9"])

    def test_help_exits_zero(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0


class TestExtensionCommands:
    def test_swarm(self, capsys):
        from repro.cli import main

        assert main(["swarm", "--count", "7", "--infect", "3"]) == 0
        out = capsys.readouterr().out
        assert "healthy         : 6/7" in out
        assert "node3" in out

    def test_swarm_clean(self, capsys):
        from repro.cli import main

        assert main(["swarm", "--count", "5", "--shape", "star",
                     "--infect"]) == 0
        out = capsys.readouterr().out
        assert "5/5" in out

    def test_swatt(self, capsys):
        from repro.cli import main

        assert main(["swatt"]) == 0
        out = capsys.readouterr().out
        assert "honest device" in out and "ACCEPTED" in out
        assert "redirecting malware" in out and "rejected" in out
