"""Telemetry serialization, aggregation and artifact round-trips."""

import json

import pytest

from repro.apps.metrics import AvailabilityReport
from repro.errors import ConfigurationError
from repro.fleet import (
    CampaignSpec,
    ExecutorConfig,
    RunResult,
    RunSpec,
    execute_campaign,
    failure_result,
    pending_specs,
    percentile,
    read_manifest,
    read_results_jsonl,
    summarize,
    write_artifacts,
    write_results_jsonl,
)
from repro.sim.task import TaskStats
from repro.units import MiB


def make_result(**overrides) -> RunResult:
    spec = RunSpec(
        mechanism=overrides.pop("mechanism", "smart"),
        adversary=overrides.pop("adversary", "none"),
        seed=overrides.pop("seed", 0),
    )
    fields = dict(
        run_id=spec.run_id,
        spec=spec.to_dict(),
        verdict_counts={"healthy": 1},
        measurements=1,
        mp_duration=0.5,
        sim_time=10.0,
    )
    fields.update(overrides)
    return RunResult(**fields)


class TestPercentile:
    def test_median(self):
        assert percentile([1, 3, 2], 50) == 2

    def test_interpolates(self):
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5.0, 1.0, 9.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_single_value(self):
        assert percentile([4.2], 90) == 4.2

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            percentile([1.0], 101)


class TestRunResultSerialization:
    def test_volatile_fields_excluded_from_json_line(self):
        a = make_result(wall_clock=1.23, attempts=2, worker="pid-1")
        b = make_result(wall_clock=9.87, attempts=1, worker="pid-999")
        assert a.to_json_line() == b.to_json_line()

    def test_json_line_round_trip(self):
        result = make_result(
            detected=True,
            detection_latency=3.5,
            qoa={"t_m": 2.0, "detection_probability": 0.5},
            availability={"jobs_released": 10, "deadline_misses": 1,
                          "per_task": {}},
        )
        clone = RunResult.from_json_line(result.to_json_line())
        assert clone.run_id == result.run_id
        assert clone.detected is True
        assert clone.detection_latency == 3.5
        assert clone.miss_rate == pytest.approx(0.1)
        # volatile fields come back at their defaults
        assert clone.wall_clock == 0.0

    def test_jsonl_file_round_trip(self, tmp_path):
        results = [make_result(seed=i) for i in range(4)]
        path = tmp_path / "runs.jsonl"
        assert write_results_jsonl(path, results) == 4
        loaded = read_results_jsonl(path)
        assert [r.to_json_line() for r in loaded] == [
            r.to_json_line() for r in results
        ]


class TestAvailabilityReportRoundTrip:
    def test_round_trip_with_per_task(self):
        report = AvailabilityReport(
            elapsed=30.0,
            jobs_released=100,
            jobs_finished=98,
            deadline_misses=4,
            worst_response=0.25,
            write_faults=7,
            locked_block_seconds=1.5,
            per_task={
                "writer0": TaskStats(jobs_released=50, deadline_misses=4,
                                     worst_response=0.25),
                "writer1": TaskStats(jobs_released=50, jobs_finished=50),
            },
        )
        clone = AvailabilityReport.from_dict(report.to_dict())
        assert clone == report
        assert clone.per_task["writer0"].deadline_misses == 4
        assert clone.miss_rate == pytest.approx(0.04)

    def test_survives_json(self):
        report = AvailabilityReport(
            elapsed=1.0, per_task={"t": TaskStats(jobs_released=3)}
        )
        clone = AvailabilityReport.from_dict(
            json.loads(json.dumps(report.to_dict()))
        )
        assert clone == report

    def test_real_run_round_trip(self):
        spec = RunSpec(block_count=8, sim_block_size=MiB, horizon=8.0)
        report = execute_campaign([spec], ExecutorConfig())
        availability = report.results[0].availability_report
        assert availability is not None
        assert availability.jobs_released > 0
        assert AvailabilityReport.from_dict(
            availability.to_dict()
        ) == availability


class TestSummarize:
    def test_groups_and_rates(self):
        results = [
            make_result(adversary="transient", seed=0, detected=True,
                        detection_latency=2.0),
            make_result(adversary="transient", seed=1, detected=True,
                        detection_latency=4.0),
            make_result(adversary="transient", seed=2, detected=False),
            make_result(seed=3),
        ]
        summary = summarize(results)
        cell = summary.group("smart", "transient")
        assert cell.runs == 3
        assert cell.detection_rate == pytest.approx(2 / 3)
        # latencies fold into a bounded ValueSketch: 2.0 and 4.0 land
        # in the same (1.0, 5.0] bucket, so the bucket-resolution p50
        # reports the bucket bound clamped to the observed max
        assert cell.latency_percentiles()["p50"] == pytest.approx(4.0)
        assert cell.detection_latency.count == 2
        assert cell.detection_latency.mean == pytest.approx(3.0)
        assert cell.detection_latency.min == pytest.approx(2.0)
        assert cell.detection_latency.max == pytest.approx(4.0)
        assert summary.group("smart", "none").detected == 0
        assert summary.total_runs == 4

    def test_failures_counted_not_aggregated(self):
        spec = RunSpec(mechanism="crashtest")
        results = [
            make_result(seed=0),
            failure_result(spec.run_id, spec.to_dict(), "error", "boom"),
            failure_result(spec.run_id, spec.to_dict(), "timeout", "slow"),
        ]
        summary = summarize(results)
        cell = summary.group("crashtest", "none")
        assert cell.errors == 1 and cell.timeouts == 1 and cell.ok == 0
        assert cell.detection_rate == 0.0

    def test_render_mentions_every_mechanism(self):
        results = [make_result(), make_result(mechanism="erasmus")]
        text = summarize(results).render()
        assert "smart" in text and "erasmus" in text


class TestArtifacts:
    def campaign(self):
        return CampaignSpec(
            name="artifact-test",
            base={"block_count": 8, "horizon": 8.0},
            axes={"mechanism": ["smart", "erasmus"]},
            seeds=range(2),
        )

    def test_full_artifact_layout(self, tmp_path):
        campaign = self.campaign()
        execution = execute_campaign(campaign.plan(), ExecutorConfig())
        paths = write_artifacts(
            tmp_path, campaign, execution.results, execution
        )
        assert paths.runs.exists()
        assert paths.summary_txt.exists()
        assert json.loads(paths.summary_json.read_text())["total_runs"] == 4
        manifest = read_manifest(paths.manifest)
        assert manifest.campaign == "artifact-test"
        assert manifest.spec_hash == campaign.spec_hash
        assert manifest.run_count == 4
        assert manifest.status_counts == {"ok": 4}
        assert manifest.mode == "serial"

    def test_runs_jsonl_sorted_and_reloadable(self, tmp_path):
        campaign = self.campaign()
        execution = execute_campaign(campaign.plan(), ExecutorConfig())
        paths = write_artifacts(
            tmp_path, campaign, execution.results, execution
        )
        loaded = read_results_jsonl(paths.runs)
        assert [r.run_id for r in loaded] == sorted(
            r.run_id for r in execution.results
        )


class TestResume:
    def test_pending_excludes_only_successes(self):
        specs = [RunSpec(seed=i) for i in range(3)]
        done = [
            make_result(seed=0),
            failure_result(
                specs[1].run_id, specs[1].to_dict(), "error", "boom"
            ),
        ]
        pending = pending_specs(specs, done)
        assert [s.seed for s in pending] == [1, 2]

    def test_pending_empty_when_all_done(self):
        specs = [RunSpec(seed=i) for i in range(2)]
        done = [make_result(seed=0), make_result(seed=1)]
        assert pending_specs(specs, done) == []
