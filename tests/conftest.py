"""Shared fixtures: prebuilt devices and full attestation stacks."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.ra.service import OnDemandVerifier
from repro.ra.verifier import Verifier
from repro.sim.device import Device
from repro.sim.engine import Simulator
from repro.sim.network import Channel


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def device(sim) -> Device:
    """A small prover with the standard code/data layout."""
    dev = Device(sim, block_count=16, block_size=32, seed=7)
    dev.standard_layout()
    return dev


@dataclass
class Stack:
    """A complete verifier <-> prover rig for protocol tests."""

    sim: Simulator
    device: Device
    channel: Channel
    verifier: Verifier
    driver: OnDemandVerifier


@pytest.fixture
def stack(sim) -> Stack:
    device = Device(sim, block_count=16, block_size=32, seed=7)
    device.standard_layout()
    channel = Channel(sim, latency=0.002)
    device.attach_network(channel)
    verifier = Verifier(sim)
    verifier.enroll(device)
    driver = OnDemandVerifier(verifier, channel)
    return Stack(sim, device, channel, verifier, driver)


def make_stack(
    block_count: int = 16,
    block_size: int = 32,
    sim_block_size=None,
    latency: float = 0.002,
    seed: int = 7,
) -> Stack:
    """Non-fixture variant for tests that need custom geometry."""
    sim = Simulator()
    device = Device(
        sim, block_count=block_count, block_size=block_size,
        sim_block_size=sim_block_size, seed=seed,
    )
    device.standard_layout()
    channel = Channel(sim, latency=latency)
    device.attach_network(channel)
    verifier = Verifier(sim)
    verifier.enroll(device)
    driver = OnDemandVerifier(verifier, channel)
    return Stack(sim, device, channel, verifier, driver)
