"""The verifier service: admission, batching, load generation, wiring.

The byte-identity of serial vs epoch-batched verdict ledgers -- the
subsystem's core determinism contract -- is pinned in
``test_vserver_equivalence.py``; this file covers the components:
token buckets, admission control and the outcome taxonomy, the
many-to-one mux endpoint, seeded load generation, the one-call
service wiring, the fleet integration, and the ``repro serve`` CLI.
"""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.ra.report import AttestationReport
from repro.ra.verifier import Verifier
from repro.resilience.outcome import (
    COMPLETED_OUTCOMES,
    OUTCOME_DEFERRED_OK,
    OUTCOME_REJECTED,
    OutcomeReport,
)
from repro.scenario import Scenario
from repro.sim.engine import Simulator
from repro.sim.network import Channel, MuxEndpoint
from repro.vserver import (
    LoadGenerator,
    ServerConfig,
    ServiceConfig,
    SimProver,
    TokenBucket,
    VerifierServer,
    build_service_scenario,
)
from repro.vserver.loadgen import cohort_image, prover_key
from repro.vserver.server import (
    REJECT_QUEUE_FULL,
    REJECT_RATE_LIMIT,
    STATUS_VERIFIED,
)


def make_prover(sim, name="prv0", blocks=4, compromised=False, **kwargs):
    image = cohort_image("t", blocks, 16)
    return SimProver(
        sim, name,
        key=prover_key(name),
        image=image,
        endpoint=kwargs.pop("endpoint", None),
        compromised=compromised,
        **kwargs,
    ), image


def make_report(prover):
    prover.measure()
    return AttestationReport.authenticate(
        prover.key, prover.name, list(prover.history),
        sent_counter=prover.counter,
    )


class TestTokenBucket:
    def test_burst_then_deny_then_refill(self):
        bucket = TokenBucket(rate=1.0, capacity=2.0, now=0.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        # one second refills one token
        assert bucket.try_take(1.0)
        assert not bucket.try_take(1.0)

    def test_refill_caps_at_capacity(self):
        bucket = TokenBucket(rate=10.0, capacity=3.0, now=0.0)
        for _ in range(3):
            assert bucket.try_take(100.0)
        assert not bucket.try_take(100.0)

    def test_zero_rate_disables_limiting(self):
        bucket = TokenBucket(rate=0.0, capacity=1.0)
        assert all(bucket.try_take(0.0) for _ in range(100))


class TestServerConfig:
    @pytest.mark.parametrize("kwargs", [
        {"queue_capacity": 0},
        {"epoch": 0.0},
        {"rate_limit": -1.0},
        {"rate_burst": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            ServerConfig(**kwargs)


class TestAdmission:
    def build(self, **config_kwargs):
        sim = Simulator()
        verifier = Verifier(sim, name="vsrv-core")
        server = VerifierServer(
            sim, verifier, ServerConfig(**config_kwargs)
        )
        prover, image = make_prover(sim)
        prover.enroll(verifier, image)
        return sim, server, prover

    def test_unserved_kind_raises(self):
        sim, server, prover = self.build()
        with pytest.raises(ConfigurationError):
            server.submit(make_report(prover), kind="att_request")

    def test_queue_full_rejects_with_ledger_entry(self):
        sim, server, prover = self.build(queue_capacity=2)
        assert server.submit(make_report(prover)) is None
        assert server.submit(make_report(prover)) is None
        entry = server.submit(make_report(prover))
        assert entry is not None
        assert entry.status == REJECT_QUEUE_FULL
        assert server.rejected_full == 1
        assert server.unaccounted == 0

    def test_rate_limit_rejects_and_outcome_is_rejected(self):
        outcomes = OutcomeReport()
        sim = Simulator()
        verifier = Verifier(sim, name="v")
        server = VerifierServer(
            sim, verifier,
            ServerConfig(rate_limit=1.0, rate_burst=1.0),
            outcomes=outcomes,
        )
        prover, image = make_prover(sim)
        prover.enroll(verifier, image)
        assert server.submit(make_report(prover)) is None
        entry = server.submit(make_report(prover))
        assert entry.status == REJECT_RATE_LIMIT
        counts = outcomes.counts()
        assert counts.get(OUTCOME_REJECTED) == 1

    def test_epoch_drain_verifies_and_accounts(self):
        sim, server, prover = self.build(epoch=0.5)
        server.start()
        for _ in range(3):
            server.submit(make_report(prover))
        sim.run(until=2.0)
        assert server.verified == 3
        assert server.unaccounted == 0
        statuses = [entry.status for entry in server.ledger]
        assert statuses == [STATUS_VERIFIED] * 3
        assert all(e.verdict == "healthy" for e in server.ledger)

    def test_deferred_ok_when_latency_exceeds_slo(self):
        outcomes = OutcomeReport()
        sim = Simulator()
        verifier = Verifier(sim, name="v")
        server = VerifierServer(
            sim, verifier,
            ServerConfig(epoch=1.0, slo_queue_latency=0.25),
            outcomes=outcomes,
        )
        prover, image = make_prover(sim)
        prover.enroll(verifier, image)
        server.start()
        # submitted at t=0, drained at t=1.0: latency 1.0 > slo 0.25
        server.submit(make_report(prover))
        sim.run(until=1.5)
        counts = outcomes.counts()
        assert counts.get(OUTCOME_DEFERRED_OK) == 1
        assert OUTCOME_DEFERRED_OK in COMPLETED_OUTCOMES

    def test_compromised_prover_gets_compromised_verdict(self):
        sim = Simulator()
        verifier = Verifier(sim, name="v")
        server = VerifierServer(sim, verifier)
        prover, image = make_prover(sim, compromised=True)
        prover.enroll(verifier, image)  # enrolled under the clean image
        server.start()
        server.submit(make_report(prover))
        sim.run(until=1.0)
        assert server.ledger[0].verdict == "compromised"

    def test_replay_rejected_inside_batch(self):
        sim, server, prover = self.build()
        server.start()
        report = make_report(prover)
        server.submit(report)
        server.submit(report)  # same sent_counter: replay
        sim.run(until=1.0)
        verdicts = [entry.verdict for entry in server.ledger]
        assert verdicts.count("replay") == 1

    def test_quantiles_are_nearest_rank(self):
        sim, server, _ = self.build()
        server.queue_latencies.extend([0.1, 0.2, 0.3, 0.4])
        assert server.queue_latency_quantile(0.5) == 0.2
        assert server.queue_latency_quantile(0.99) == 0.4
        assert server.queue_latency_quantile(1.0) == 0.4

    def test_ledger_lines_are_canonical_json(self):
        sim, server, prover = self.build(queue_capacity=1)
        server.submit(make_report(prover))
        entry = server.submit(make_report(prover))
        line = entry.canonical_line()
        assert json.loads(line)["status"] == REJECT_QUEUE_FULL
        assert line == json.dumps(
            json.loads(line), sort_keys=True, separators=(",", ":")
        )


class TestMuxEndpoint:
    def test_routes_by_destination_channel(self):
        sim = Simulator()
        mux = MuxEndpoint(sim, "vsrv")
        ch_a, ch_b = Channel(sim, latency=0.001), Channel(sim, latency=0.002)
        mux.join(ch_a)
        mux.join(ch_b)
        a = ch_a.make_endpoint("a")
        b = ch_b.make_endpoint("b")
        a.send("vsrv", "ping", 1)
        b.send("vsrv", "ping", 2)
        mux.send("a", "pong", 3)
        mux.send("b", "pong", 4)
        sim.run(until=0.1)
        assert len(mux.inbox) == 2
        assert len(a.inbox) == 1 and len(b.inbox) == 1

    def test_unknown_destination_raises(self):
        sim = Simulator()
        mux = MuxEndpoint(sim, "vsrv")
        mux.join(Channel(sim, latency=0.001))
        with pytest.raises(ConfigurationError):
            mux.send("nobody", "ping", None)

    def test_channel_attach_accumulates_instead_of_clobbering(self):
        sim = Simulator()
        mux = MuxEndpoint(sim, "vsrv")
        first, second = Channel(sim), Channel(sim)
        mux.join(first)
        mux.join(second)
        assert mux.channels == [first, second]
        assert mux.channel is first


class TestLoadGenerator:
    def build(self, count=4, seed=b"lg"):
        sim = Simulator()
        verifier = Verifier(sim, name="vsrv-core")
        server = VerifierServer(sim, verifier)
        provers = []
        for index in range(count):
            prover, image = make_prover(sim, name=f"p{index}")
            prover.enroll(verifier, image)
            prover.emit = lambda p=prover: server.submit(make_report(p))
            provers.append(prover)
        return sim, server, LoadGenerator(sim, provers, seed=seed)

    def test_needs_provers(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            LoadGenerator(sim, [])

    def test_storm_emits_each_prover_once(self):
        sim, server, loadgen = self.build()
        assert loadgen.schedule_storm(1.0, 0.5) == 4
        sim.run(until=2.0)
        assert server.submitted == 4

    def test_poisson_count_is_seed_deterministic(self):
        _, _, first = self.build(seed=b"fixed")
        _, _, second = self.build(seed=b"fixed")
        _, _, third = self.build(seed=b"other")
        a = first.schedule_poisson(0.0, 10.0, 0.5)
        b = second.schedule_poisson(0.0, 10.0, 0.5)
        c = third.schedule_poisson(0.0, 10.0, 0.5)
        assert a == b
        assert a > 0
        assert (a, first.drbg.generate(4)) != (c, third.drbg.generate(4))

    def test_poisson_validates_gap(self):
        _, _, loadgen = self.build()
        with pytest.raises(ConfigurationError):
            loadgen.schedule_poisson(0.0, 1.0, 0.0)


class TestServiceConfig:
    def test_parse_preset_with_overrides(self):
        config = ServiceConfig.parse("preset=smoke;provers=100;batch=off")
        assert config.provers == 100
        assert config.batch is False
        assert config.seed == "smoke"

    def test_bare_preset_name(self):
        assert ServiceConfig.parse("smoke") == ServiceConfig.parse(
            "preset=smoke"
        )

    @pytest.mark.parametrize("text", [
        "preset=nope",
        "no_such_field=1",
        "batch=maybe",
    ])
    def test_parse_rejects(self, text):
        with pytest.raises(ConfigurationError):
            ServiceConfig.parse(text)

    def test_population_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(provers=2, cohorts=3)


class TestBuildService:
    def test_smoke_exercises_whole_taxonomy(self):
        scenario = build_service_scenario(ServiceConfig.parse("smoke"))
        stats = scenario.run()
        assert stats["unaccounted"] == 0
        assert stats["verified"] > 0
        assert stats["rejected_rate_limit"] > 0
        assert stats["rejected_queue_full"] > 0
        counts = scenario.outcomes.counts()
        assert counts.get(OUTCOME_DEFERRED_OK, 0) > 0
        assert counts.get(OUTCOME_REJECTED, 0) > 0
        verdicts = scenario.verifier.verdict_counts()
        assert verdicts.get("healthy", 0) > 0
        assert verdicts.get("compromised", 0) > 0

    def test_queue_metrics_are_published(self):
        scenario = build_service_scenario(ServiceConfig.parse("smoke"))
        scenario.run()
        snapshot = scenario.obs.metrics.snapshot_flat()
        assert "vserver.queue.depth" in snapshot
        assert any(
            name.startswith("vserver.stage.queue") for name in snapshot
        )
        assert snapshot["vserver.epochs"] > 0

    def test_scenario_build_service_entry_point(self):
        scenario = Scenario.build_service("smoke", provers=12)
        assert scenario.config.provers == 12
        stats = scenario.run()
        assert stats["unaccounted"] == 0

    def test_scenario_build_service_accepts_config_object(self):
        config = ServiceConfig.parse("smoke;provers=10")
        scenario = Scenario.build_service(config)
        assert scenario.config.provers == 10

    def test_unified_build_service_parameter(self):
        # the collapsed entrypoint: build(service=...) returns the
        # population-scale ServiceScenario
        scenario = Scenario.build(
            service="smoke", service_options={"provers": 12}
        )
        assert scenario.config.provers == 12
        smoke = Scenario.build(service=True)
        assert smoke.config == ServiceConfig.parse("smoke")

    def test_unified_build_rejects_single_device_args(self):
        with pytest.raises(ConfigurationError) as err:
            Scenario.build(mechanism="smart", malware="transient",
                           service="smoke")
        assert "malware" in str(err.value)
        with pytest.raises(ConfigurationError):
            Scenario.build(service_options={"provers": 12})


class TestFleetIntegration:
    def test_vserver_runspec_validates_service_dsl(self):
        from repro.fleet.campaign import RunSpec

        with pytest.raises(ConfigurationError):
            RunSpec(mechanism="vserver", service="preset=nope")
        with pytest.raises(ConfigurationError):
            RunSpec(mechanism="smart", service="preset=smoke")

    def test_empty_service_field_keeps_run_ids_stable(self):
        from repro.fleet.campaign import RunSpec

        spec = RunSpec(mechanism="smart")
        assert "service" not in spec.to_dict()

    def test_executor_runs_service_scenario(self):
        from repro.fleet.campaign import RunSpec
        from repro.fleet.executor import execute_run

        spec = RunSpec(
            mechanism="vserver",
            service="preset=smoke;provers=10;poisson_gap=0;horizon=2.5",
        )
        result = execute_run(spec)
        assert result.qoa["service_unaccounted"] == 0.0
        assert result.reports == result.qoa["service_submitted"]
        assert "vserver.epochs" in result.telemetry
        assert result.outcomes["total"] > 0

    def test_canned_vserver_campaign_plans(self):
        from repro.fleet.campaign import canned_campaign

        campaign = canned_campaign("vserver", seed_count=2)
        specs = campaign.plan()
        assert len(specs) == 6
        assert all(spec.mechanism == "vserver" for spec in specs)


class TestServeCli:
    def test_smoke_summary(self, capsys, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        assert main([
            "serve", "--preset", "smoke", "--ledger", str(ledger),
            "--outcomes",
        ]) == 0
        out = capsys.readouterr().out
        assert "unaccounted 0" in out
        assert "deferred-ok" in out
        lines = ledger.read_text().splitlines()
        assert lines and all(json.loads(line)["seq"] >= 0 for line in lines)

    def test_serial_flag_matches_batched_ledger(self, capsys, tmp_path):
        batched = tmp_path / "batched.jsonl"
        serial = tmp_path / "serial.jsonl"
        assert main([
            "serve", "--preset", "smoke", "--provers", "10",
            "--ledger", str(batched),
        ]) == 0
        assert main([
            "serve", "--preset", "smoke", "--provers", "10", "--serial",
            "--ledger", str(serial),
        ]) == 0
        capsys.readouterr()
        assert batched.read_bytes() == serial.read_bytes()

    def test_service_dsl_overrides(self, capsys):
        assert main([
            "serve", "--service", "provers=8;storms=1;horizon=2.0",
        ]) == 0
        out = capsys.readouterr().out
        assert "8 provers" in out


class TestHistogramQuantile:
    def test_interpolated_quantiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "q", "test", buckets=(1.0, 2.0, 4.0)
        )
        for value in (0.5, 1.5, 3.0, 8.0):
            hist.observe(value)
        assert hist.quantile(0.0) == pytest.approx(hist.min)
        assert hist.quantile(1.0) == pytest.approx(hist.max)
        assert 0.0 < hist.quantile(0.5) <= 4.0

    def test_empty_and_validation(self):
        registry = MetricsRegistry()
        hist = registry.histogram("q", "test")
        assert hist.quantile(0.5) == 0.0
        with pytest.raises(ConfigurationError):
            hist.quantile(1.5)
