"""Quality of Attestation: parameters, timelines, Figure 5 semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.core.qoa import (
    InfectionEvent,
    QoAParameters,
    QoATimeline,
    on_demand_equivalent,
)
from repro.errors import ConfigurationError


class TestParameters:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QoAParameters(t_m=0.0, t_c=1.0)
        with pytest.raises(ConfigurationError):
            QoAParameters(t_m=1.0, t_c=-1.0)

    def test_derived_quantities(self):
        params = QoAParameters(t_m=2.0, t_c=10.0)
        assert params.measurements_per_collection == pytest.approx(5.0)
        assert params.max_transient_window == 2.0
        assert params.worst_detection_latency == 12.0

    def test_detection_probability(self):
        params = QoAParameters(t_m=4.0, t_c=16.0)
        assert params.detection_probability(0.0) == 0.0
        assert params.detection_probability(2.0) == pytest.approx(0.5)
        assert params.detection_probability(4.0) == 1.0
        assert params.detection_probability(99.0) == 1.0

    def test_negative_dwell_rejected(self):
        with pytest.raises(ConfigurationError):
            QoAParameters(t_m=1.0, t_c=1.0).detection_probability(-1.0)

    @given(
        st.floats(min_value=0.01, max_value=100.0),
        st.floats(min_value=0.0, max_value=200.0),
    )
    def test_probability_bounds(self, t_m, dwell):
        params = QoAParameters(t_m=t_m, t_c=t_m)
        p = params.detection_probability(dwell)
        assert 0.0 <= p <= 1.0

    def test_on_demand_conflates_both(self):
        params = on_demand_equivalent(30.0)
        assert params.t_m == params.t_c == 30.0


class TestInfectionEvent:
    def test_dwell(self):
        assert InfectionEvent(1.0, 3.5).dwell == pytest.approx(2.5)

    def test_bad_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            InfectionEvent(3.0, 3.0)


class TestTimeline:
    def make(self):
        params = QoAParameters(t_m=4.0, t_c=16.0)
        return QoATimeline(params, horizon=36.0)

    def test_default_grids(self):
        timeline = self.make()
        assert timeline.measurement_times[0] == 0.0
        assert timeline.measurement_times[1] == 4.0
        assert timeline.collection_times[0] == 16.0
        assert max(timeline.measurement_times) <= 36.0

    def test_infection_between_measurements_undetected(self):
        timeline = self.make()
        outcome = timeline.add_infection(InfectionEvent(5.0, 7.5))
        assert not outcome.detected
        assert outcome.covering_measurement is None

    def test_infection_spanning_measurement_detected(self):
        timeline = self.make()
        outcome = timeline.add_infection(InfectionEvent(18.0, 21.0))
        assert outcome.detected
        assert outcome.covering_measurement == 20.0
        assert outcome.detected_at_collection == 32.0
        assert outcome.detection_latency == pytest.approx(14.0)

    def test_detection_needs_a_collection_afterwards(self):
        params = QoAParameters(t_m=4.0, t_c=16.0)
        timeline = QoATimeline(params, horizon=20.0)  # collections: 16
        outcome = timeline.add_infection(InfectionEvent(17.0, 21.0))
        # Covered by the t=20 measurement but no collection follows
        # within the horizon.
        assert outcome.covering_measurement == 20.0
        assert not outcome.detected

    def test_custom_instants(self):
        params = QoAParameters(t_m=4.0, t_c=16.0)
        timeline = QoATimeline(
            params, horizon=10.0,
            measurement_times=[1.0, 6.0],
            collection_times=[9.0],
        )
        outcome = timeline.add_infection(InfectionEvent(5.0, 7.0))
        assert outcome.covering_measurement == 6.0
        assert outcome.detected_at_collection == 9.0

    def test_render_shows_infections_and_marks(self):
        timeline = self.make()
        timeline.add_infection(InfectionEvent(5.0, 7.5, label="sneaky"))
        timeline.add_infection(InfectionEvent(18.0, 21.0, label="caught"))
        text = timeline.render()
        assert "M" in text and "C" in text
        assert "sneaky: undetected" in text
        assert "caught: DETECTED" in text
