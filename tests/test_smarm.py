"""SMARM: escape probabilities, multi-round amplification, full stack."""

import math

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.malware.relocating import SelfRelocatingMalware
from repro.ra.report import Verdict
from repro.ra.smarm import (
    SmarmAttestation,
    escape_probability,
    escape_trial,
    multi_round_escape_probability,
)
from repro.analysis.smarm_math import single_round_escape

from tests.conftest import make_stack


class TestAbstractGame:
    def test_single_round_near_analytic(self):
        n = 64
        estimate = escape_probability(n, trials=3000)
        assert estimate == pytest.approx(single_round_escape(n), abs=0.03)

    def test_single_round_near_e_inverse(self):
        estimate = escape_probability(128, trials=3000)
        assert estimate == pytest.approx(math.exp(-1), abs=0.04)

    def test_escape_trial_deterministic_stream(self):
        a = HmacDrbg(b"x")
        b = HmacDrbg(b"x")
        outcomes_a = [escape_trial(16, a) for _ in range(50)]
        outcomes_b = [escape_trial(16, b) for _ in range(50)]
        assert outcomes_a == outcomes_b

    def test_multi_round_decays(self):
        one = multi_round_escape_probability(32, 1, trials=1200)
        three = multi_round_escape_probability(32, 3, trials=1200)
        assert three < one
        assert three == pytest.approx(
            single_round_escape(32) ** 3, abs=0.04
        )

    def test_extra_moves_do_not_help_malware(self):
        single = escape_probability(48, trials=2500, moves_per_block=1)
        double = escape_probability(
            48, trials=2500, seed=b"other", moves_per_block=2
        )
        assert double == pytest.approx(single, abs=0.04)


class TestFullStack:
    def run_once(self, rounds, seed, strategy="uniform"):
        stack = make_stack(block_count=24, seed=7)
        service = SmarmAttestation(stack.device, rounds=rounds)
        service.install()
        SelfRelocatingMalware(
            stack.device, target_block=20, infect_at=0.1,
            strategy=strategy, rng_seed=seed,
        )
        results = []
        stack.sim.schedule_at(
            1.0,
            lambda: results.append(
                stack.driver.request(stack.device.name, rounds=rounds)
            ),
        )
        stack.sim.run(until=400)
        return results[0].result.verdict

    def test_stay_put_always_detected(self):
        assert self.run_once(1, seed=3, strategy="stay") is (
            Verdict.COMPROMISED
        )

    def test_single_round_escape_rate_near_e_inverse(self):
        trials = 60
        escapes = sum(
            self.run_once(1, seed=seed) is Verdict.HEALTHY
            for seed in range(trials)
        )
        rate = escapes / trials
        # e^-1 with 60 trials: allow a generous band (sigma ~ 0.06).
        assert 0.15 < rate < 0.60

    def test_thirteen_rounds_detects_in_practice(self):
        """P(escape 13 rounds) ~ 2e-6: these ten trials must all catch
        the malware (a failure here is a one-in-40000 event)."""
        for seed in range(10):
            assert self.run_once(13, seed=seed) is Verdict.COMPROMISED

    def test_each_round_has_distinct_secret_order(self):
        stack = make_stack(block_count=16)
        service = SmarmAttestation(stack.device, rounds=5)
        service.install()
        exchanges = []
        stack.sim.schedule_at(
            0.5,
            lambda: exchanges.append(
                stack.driver.request(stack.device.name, rounds=5)
            ),
        )
        stack.sim.run(until=200)
        report = exchanges[0].report
        seeds = {record.order_seed for record in report.records}
        assert len(seeds) == 5

    def test_measurement_remains_interruptible(self):
        from repro.sim.task import PeriodicTask

        stack = make_stack(
            block_count=24, sim_block_size=2 * 1024 * 1024
        )
        PeriodicTask(stack.device.cpu, "app", period=0.05, wcet=0.001,
                     priority=100)
        service = SmarmAttestation(stack.device, rounds=1)
        service.install()
        exchanges = []
        stack.sim.schedule_at(
            1.0,
            lambda: exchanges.append(
                stack.driver.request(stack.device.name)
            ),
        )
        stack.sim.run(until=60)
        record = exchanges[0].report.records[0]
        assert record.interruptions > 0


class TestMoveOnceValidation:
    def test_monte_carlo_matches_closed_form(self):
        from repro.analysis.smarm_math import move_once_escape
        from repro.ra.smarm import move_once_escape_probability

        for n in (16, 64):
            mc = move_once_escape_probability(n, trials=4000)
            exact = move_once_escape(n)
            # 4000 Bernoulli trials at p ~ 0.16: sigma ~ 0.006.
            assert mc == pytest.approx(exact, abs=0.025)

    def test_single_move_clearly_suboptimal(self):
        from repro.analysis.smarm_math import single_round_escape
        from repro.ra.smarm import move_once_escape_probability

        mc = move_once_escape_probability(64, trials=3000)
        assert mc < single_round_escape(64) - 0.1
