"""Trace recording and querying."""

from repro.sim.trace import Trace, TraceRecord


def populated():
    trace = Trace()
    trace.record(1.0, "mp.start", "smart")
    trace.record(2.0, "mp.end", "smart", duration=1.0)
    trace.record(3.0, "fire.start", "environment")
    trace.record(4.0, "mp.start", "smarm")
    return trace


class TestQueries:
    def test_len_and_iter(self):
        trace = populated()
        assert len(trace) == 4
        assert [r.kind for r in trace] == [
            "mp.start", "mp.end", "fire.start", "mp.start",
        ]

    def test_filter_by_kind(self):
        assert len(populated().filter(kind="mp.start")) == 2

    def test_filter_by_source(self):
        assert len(populated().filter(source="smart")) == 2

    def test_filter_by_predicate(self):
        hits = populated().filter(predicate=lambda r: r.time > 2.5)
        assert len(hits) == 2

    def test_first_and_last(self):
        trace = populated()
        assert trace.first("mp.start").source == "smart"
        assert trace.last("mp.start").source == "smarm"
        assert trace.first("nothing") is None

    def test_between(self):
        assert len(populated().between(1.5, 3.5)) == 2

    def test_kinds_in_first_appearance_order(self):
        assert populated().kinds() == ["mp.start", "mp.end", "fire.start"]


class TestRendering:
    def test_str_includes_data(self):
        record = TraceRecord(2.0, "mp.end", "smart", {"duration": 1.0})
        text = str(record)
        assert "mp.end" in text and "duration=1.0" in text

    def test_render_filters_kinds(self):
        text = populated().render(kinds={"fire.start"})
        assert "fire.start" in text
        assert "mp.end" not in text

    def test_render_limit(self):
        text = populated().render(limit=2)
        assert len(text.splitlines()) == 2

    def test_render_all(self):
        assert len(populated().render().splitlines()) == 4


class TestRingBuffer:
    def test_unbounded_by_default(self):
        trace = Trace()
        for index in range(1000):
            trace.record(float(index), "tick", "src")
        assert len(trace) == 1000
        assert trace.dropped == 0

    def test_bounded_keeps_newest(self):
        trace = Trace(max_records=3)
        for index in range(10):
            trace.record(float(index), "tick", "src")
        assert len(trace) == 3
        assert trace.dropped == 7
        assert [r.time for r in trace] == [7.0, 8.0, 9.0]

    def test_bounded_queries_still_work(self):
        trace = Trace(max_records=2)
        trace.record(1.0, "a", "src")
        trace.record(2.0, "b", "src")
        trace.record(3.0, "a", "src")
        assert trace.first("a").time == 3.0
        assert trace.last("a").time == 3.0
        assert trace.kinds() == ["b", "a"]
        assert len(trace.between(0.0, 10.0)) == 2

    def test_invalid_bound_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            Trace(max_records=0)


class TestJsonlExport:
    def test_round_trips_through_json(self, tmp_path):
        import json

        trace = populated()
        trace.record(5.0, "net.tx", "nic", payload=b"\x01\x02", size=2)
        path = tmp_path / "trace.jsonl"
        assert trace.to_jsonl(path) == 5
        lines = path.read_text().splitlines()
        assert len(lines) == 6  # 5 data records + trailing meta
        rows = [json.loads(line) for line in lines]
        assert rows[0] == {
            "time": 1.0, "kind": "mp.start", "source": "smart", "data": {},
        }
        assert rows[-2]["data"]["payload"] == "0102"  # bytes -> hex
        assert rows[-2]["data"]["size"] == 2
        assert rows[-1] == {
            "kind": "trace.meta", "records": 5, "dropped": 0,
            "max_records": None,
        }

    def test_meta_line_reports_ring_buffer_drops(self, tmp_path):
        import json

        trace = Trace(max_records=3)
        for index in range(7):
            trace.record(float(index), "tick", "src")
        path = tmp_path / "trace.jsonl"
        assert trace.to_jsonl(path) == 3
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows[-1] == {
            "kind": "trace.meta", "records": 3, "dropped": 4,
            "max_records": 3,
        }

    def test_non_json_values_coerced(self, tmp_path):
        import json

        class Opaque:
            def __str__(self):
                return "<opaque>"

        trace = Trace()
        trace.record(1.0, "odd", "src", obj=Opaque(), tup=(1, b"\xFF"))
        path = tmp_path / "trace.jsonl"
        trace.to_jsonl(path)
        row = json.loads(path.read_text().splitlines()[0])
        assert row["data"]["obj"] == "<opaque>"
        assert row["data"]["tup"] == [1, "ff"]
