"""Trace recording and querying."""

from repro.sim.trace import Trace, TraceRecord


def populated():
    trace = Trace()
    trace.record(1.0, "mp.start", "smart")
    trace.record(2.0, "mp.end", "smart", duration=1.0)
    trace.record(3.0, "fire.start", "environment")
    trace.record(4.0, "mp.start", "smarm")
    return trace


class TestQueries:
    def test_len_and_iter(self):
        trace = populated()
        assert len(trace) == 4
        assert [r.kind for r in trace] == [
            "mp.start", "mp.end", "fire.start", "mp.start",
        ]

    def test_filter_by_kind(self):
        assert len(populated().filter(kind="mp.start")) == 2

    def test_filter_by_source(self):
        assert len(populated().filter(source="smart")) == 2

    def test_filter_by_predicate(self):
        hits = populated().filter(predicate=lambda r: r.time > 2.5)
        assert len(hits) == 2

    def test_first_and_last(self):
        trace = populated()
        assert trace.first("mp.start").source == "smart"
        assert trace.last("mp.start").source == "smarm"
        assert trace.first("nothing") is None

    def test_between(self):
        assert len(populated().between(1.5, 3.5)) == 2

    def test_kinds_in_first_appearance_order(self):
        assert populated().kinds() == ["mp.start", "mp.end", "fire.start"]


class TestRendering:
    def test_str_includes_data(self):
        record = TraceRecord(2.0, "mp.end", "smart", {"duration": 1.0})
        text = str(record)
        assert "mp.end" in text and "duration=1.0" in text

    def test_render_filters_kinds(self):
        text = populated().render(kinds={"fire.start"})
        assert "fire.start" in text
        assert "mp.end" not in text

    def test_render_limit(self):
        text = populated().render(limit=2)
        assert len(text.splitlines()) == 2

    def test_render_all(self):
        assert len(populated().render().splitlines()) == 4
