"""Unit tests for the determinism & crypto-safety analyzer.

Each rule gets a fixture-snippet trio: a true positive, the same
positive suppressed inline, and a near-miss that must NOT fire (the
false-positive guard).  On top of that: suppression semantics,
baseline round-trip, reporter output, and CLI exit codes.
"""

import json

import pytest

from repro.staticlint import (
    Baseline,
    LintConfig,
    Severity,
    all_rules,
    analyze_source,
    apply_baseline,
    build_report,
    load_baseline,
    write_baseline,
)
from repro.staticlint.engine import suppressed_lines

SIM_PATH = "src/repro/sim/fake_module.py"
CRYPTO_PATH = "src/repro/crypto/fake_module.py"
FLEET_PATH = "src/repro/fleet/fake_module.py"


def findings_for(source, path=SIM_PATH, rule=None, config=None):
    config = config or LintConfig(select=(rule,) if rule else None)
    return analyze_source(source, path=path, config=config)


def live(findings):
    return [f for f in findings if not f.suppressed and not f.baselined]


class TestWallClockRule:
    RULE = "det-wall-clock"

    def test_time_time_flagged(self):
        src = "import time\n\nstamp = time.time()\n"
        found = live(findings_for(src, rule=self.RULE))
        assert [f.rule_id for f in found] == [self.RULE]
        assert found[0].line == 3
        assert "time.time" in found[0].message
        assert found[0].hint

    def test_aliased_import_still_resolves(self):
        src = "from time import perf_counter as pc\n\nx = pc()\n"
        found = live(findings_for(src, rule=self.RULE))
        assert len(found) == 1
        assert "perf_counter" in found[0].message

    def test_datetime_now_flagged(self):
        src = (
            "from datetime import datetime\n"
            "when = datetime.now()\n"
        )
        assert len(live(findings_for(src, rule=self.RULE))) == 1

    def test_suppressed_inline(self):
        src = (
            "import time\n"
            "stamp = time.time()  # repro: allow[det-wall-clock]\n"
        )
        found = findings_for(src, rule=self.RULE)
        assert len(found) == 1 and found[0].suppressed

    def test_telemetry_module_allowlisted(self):
        src = "import time\n\nstamp = time.time()\n"
        found = findings_for(
            src, path="src/repro/fleet/clock.py", rule=self.RULE
        )
        assert found == []

    def test_sim_now_not_flagged(self):
        src = (
            "def handler(sim, timing):\n"
            "    t = sim.now\n"
            "    cost = timing.hash_time('sha256', 1024)\n"
            "    return t + cost\n"
        )
        assert findings_for(src, rule=self.RULE) == []


class TestModuleRandomRule:
    RULE = "det-module-random"

    def test_global_rng_call_flagged(self):
        src = "import random\n\njitter = random.random()\n"
        found = live(findings_for(src, rule=self.RULE))
        assert [f.rule_id for f in found] == [self.RULE]

    def test_from_import_flagged(self):
        src = "from random import choice\n\npick = choice([1, 2])\n"
        assert len(live(findings_for(src, rule=self.RULE))) == 1

    def test_suppressed(self):
        src = (
            "import random\n"
            "# repro: allow[det-module-random]\n"
            "jitter = random.random()\n"
        )
        found = findings_for(src, rule=self.RULE)
        assert len(found) == 1 and found[0].suppressed

    def test_seeded_instance_not_flagged(self):
        src = (
            "import random\n\n"
            "rng = random.Random(42)\n"
            "value = rng.random()\n"
        )
        assert findings_for(src, rule=self.RULE) == []

    def test_out_of_scope_not_flagged(self):
        src = "import random\n\njitter = random.random()\n"
        found = findings_for(
            src, path="src/repro/analysis/fake.py", rule=self.RULE
        )
        assert found == []


class TestUnseededRandomRule:
    RULE = "det-unseeded-random"

    def test_unseeded_flagged(self):
        src = "import random\n\nrng = random.Random()\n"
        found = live(findings_for(src, rule=self.RULE))
        assert len(found) == 1
        assert "seed" in found[0].message

    def test_system_random_flagged(self):
        src = "import random\n\nrng = random.SystemRandom()\n"
        assert len(live(findings_for(src, rule=self.RULE))) == 1

    def test_seeded_not_flagged(self):
        src = "import random\n\nrng = random.Random(0xA77E57)\n"
        assert findings_for(src, rule=self.RULE) == []


class TestSetIterationRule:
    RULE = "det-set-iteration"

    def test_set_literal_iteration_flagged(self):
        src = (
            "def fire(sim, devices):\n"
            "    for name in {'a', 'b'}:\n"
            "        sim.schedule(0.0, print, name)\n"
        )
        found = live(findings_for(src, rule=self.RULE))
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING

    def test_set_call_in_comprehension_flagged(self):
        src = "names = [n for n in set(['a', 'b'])]\n"
        assert len(live(findings_for(src, rule=self.RULE))) == 1

    def test_sorted_set_not_flagged(self):
        src = (
            "def fire(sim, pending):\n"
            "    for name in sorted(pending):\n"
            "        sim.schedule(0.0, print, name)\n"
        )
        assert findings_for(src, rule=self.RULE) == []


class TestMutableDefaultRule:
    RULE = "det-mutable-default"

    def test_list_default_flagged(self):
        src = "def record(events=[]):\n    return events\n"
        found = live(findings_for(src, rule=self.RULE))
        assert len(found) == 1
        assert "record" in found[0].message

    def test_dict_call_default_flagged(self):
        src = "def record(index=dict()):\n    return index\n"
        assert len(live(findings_for(src, rule=self.RULE))) == 1

    def test_none_default_not_flagged(self):
        src = (
            "def record(events=None):\n"
            "    return [] if events is None else events\n"
        )
        assert findings_for(src, rule=self.RULE) == []

    def test_tuple_default_not_flagged(self):
        src = "def record(events=()):\n    return events\n"
        assert findings_for(src, rule=self.RULE) == []


class TestDigestEqRule:
    RULE = "crypto-digest-eq"

    def test_digest_attribute_comparison_flagged(self):
        src = (
            "def verify(expected, record):\n"
            "    return expected == record.digest\n"
        )
        found = live(findings_for(src, rule=self.RULE))
        assert len(found) == 1
        assert "constant_time_equal" in found[0].hint

    def test_digest_call_comparison_flagged(self):
        src = (
            "def verify(mac, tag):\n"
            "    return mac.digest() != tag\n"
        )
        assert len(live(findings_for(src, rule=self.RULE))) == 1

    def test_suppressed(self):
        src = (
            "def audit(a, b):\n"
            "    return a.digest == b.digest  # repro: allow[crypto-digest-eq]\n"
        )
        found = findings_for(src, rule=self.RULE)
        assert len(found) == 1 and found[0].suppressed

    def test_metadata_names_not_flagged(self):
        src = (
            "def check(mac, algorithm):\n"
            "    ok = mac.digest_size == 32\n"
            "    named = algorithm == 'sha256'\n"
            "    return ok and named\n"
        )
        assert findings_for(src, rule=self.RULE) == []

    def test_empty_bytes_emptiness_test_not_flagged(self):
        src = (
            "def has_sig(report):\n"
            "    return report.signature != b''\n"
        )
        assert findings_for(src, rule=self.RULE) == []

    def test_constant_time_helper_not_flagged(self):
        src = (
            "def constant_time_equal(a, b):\n"
            "    if len(a) != len(b):\n"
            "        return False\n"
            "    acc = 0\n"
            "    for x, y in zip(a, b):\n"
            "        acc |= x ^ y\n"
            "    return acc == 0\n"
        )
        assert findings_for(src, rule=self.RULE) == []


class TestCryptoRandomRule:
    RULE = "crypto-random-module"

    def test_import_in_crypto_flagged(self):
        src = "import random\n"
        found = live(
            findings_for(src, path=CRYPTO_PATH, rule=self.RULE)
        )
        assert len(found) == 1
        assert "HmacDrbg" in found[0].hint

    def test_from_import_flagged(self):
        src = "from random import randint\n"
        assert len(
            live(findings_for(src, path=CRYPTO_PATH, rule=self.RULE))
        ) == 1

    def test_outside_crypto_not_flagged(self):
        src = "import random\n"
        assert findings_for(src, path=SIM_PATH, rule=self.RULE) == []


ATOMIC_BAD = """\
def run(self, proc):
    yield Atomic(True)
    self.policy.on_start()
    proc.sim.schedule(0.0, self.notify)
    yield Compute(0.5)
    yield Atomic(False)
"""

ATOMIC_BAD_YIELD = """\
def run(self, proc):
    yield Atomic(True)
    yield Compute(0.5)
    yield Sleep(1.0)
    yield Atomic(False)
"""

ATOMIC_GOOD = """\
def run(self, proc):
    yield Atomic(True)
    yield Compute(0.5)
    yield Atomic(False)
    proc.sim.schedule(0.0, self.notify)
"""


class TestAtomicGapRule:
    RULE = "ra-atomic-gap"

    def test_schedule_inside_window_flagged(self):
        found = live(
            findings_for(
                ATOMIC_BAD, path="src/repro/ra/fake.py", rule=self.RULE
            )
        )
        assert len(found) == 1
        assert "schedule()" in found[0].message

    def test_preemptible_yield_flagged(self):
        found = live(
            findings_for(
                ATOMIC_BAD_YIELD, path="src/repro/ra/fake.py",
                rule=self.RULE,
            )
        )
        assert len(found) == 1
        assert "cedes the CPU" in found[0].message

    def test_schedule_after_window_not_flagged(self):
        found = findings_for(
            ATOMIC_GOOD, path="src/repro/ra/fake.py", rule=self.RULE
        )
        assert found == []

    def test_non_atomic_function_not_flagged(self):
        src = (
            "def run(self, proc):\n"
            "    proc.sim.schedule(0.0, self.notify)\n"
            "    yield Compute(0.5)\n"
        )
        found = findings_for(
            src, path="src/repro/ra/fake.py", rule=self.RULE
        )
        assert found == []


SPAN_LEAK_BAD = """\
def handle(self, request):
    span = self.obs.spans.begin_span("ra.round", category="ra")
    self.reply(request)
"""

SPAN_LEAK_SUPPRESSED = """\
def handle(self, request):
    span = self.obs.spans.begin_span("ra.round")  # repro: allow[obs-span-leak]
    self.reply(request)
"""

SPAN_LEAK_GOOD = """\
def handle(self, request):
    spans = self.obs.spans
    span = spans.begin_span("ra.round", category="ra")
    self.reply(request)
    spans.end_span(span, records=1)
    spans.add_span("net.rtt", request.sent_at, self.sim.now)
"""


class TestObsSpanLeakRule:
    RULE = "obs-span-leak"

    def test_unended_begin_flagged(self):
        found = live(
            findings_for(
                SPAN_LEAK_BAD, path="src/repro/ra/fake.py", rule=self.RULE
            )
        )
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING
        assert "leaks open" in found[0].message
        assert found[0].line == 2

    def test_suppressed_inline(self):
        found = findings_for(
            SPAN_LEAK_SUPPRESSED, path="src/repro/ra/fake.py",
            rule=self.RULE,
        )
        assert len(found) == 1 and found[0].suppressed

    def test_balanced_body_not_flagged(self):
        found = findings_for(
            SPAN_LEAK_GOOD, path="src/repro/ra/fake.py", rule=self.RULE
        )
        assert found == []

    def test_add_span_alone_not_flagged(self):
        src = (
            "def deliver(self, message):\n"
            "    self.obs.spans.add_span(\n"
            "        'net.delivery', message.sent_at, self.sim.now\n"
            "    )\n"
        )
        found = findings_for(
            src, path="src/repro/sim/fake.py", rule=self.RULE
        )
        assert found == []

    def test_surplus_end_flagged(self):
        src = (
            "def finish(self):\n"
            "    self.obs.spans.end_span(self._round_span)\n"
        )
        found = live(
            findings_for(src, path="src/repro/ra/fake.py", rule=self.RULE)
        )
        assert len(found) == 1
        assert "owned elsewhere" in found[0].message

    def test_nested_def_not_attributed_to_outer(self):
        # the closure runs in a later callback; its begin_span must not
        # be charged to the enclosing function's body
        src = (
            "def arm(self):\n"
            "    def fire():\n"
            "        span = self.obs.spans.begin_span('x')\n"
            "        self.obs.spans.end_span(span)\n"
            "    self.sim.schedule(1.0, fire)\n"
        )
        found = findings_for(
            src, path="src/repro/ra/fake.py", rule=self.RULE
        )
        assert found == []

    def test_loop_balanced_begin_end_not_flagged(self):
        src = (
            "def run(self):\n"
            "    for block in self.order:\n"
            "        span = self.obs.spans.begin_span('ra.block')\n"
            "        self.measure(block)\n"
            "        self.obs.spans.end_span(span)\n"
        )
        found = findings_for(
            src, path="src/repro/ra/fake.py", rule=self.RULE
        )
        assert found == []


class TestSuppressionSemantics:
    def test_standalone_comment_covers_next_line(self):
        allowed = suppressed_lines(
            [
                "# repro: allow[det-wall-clock]",
                "stamp = time.time()",
            ]
        )
        assert allowed == {2: {"det-wall-clock"}}

    def test_multiple_rules_and_wildcard(self):
        allowed = suppressed_lines(
            ["x = f()  # repro: allow[rule-a, rule-b]",
             "y = g()  # repro: allow[*]"]
        )
        assert allowed[1] == {"rule-a", "rule-b"}
        assert allowed[2] == {"*"}

    def test_wildcard_suppresses_any_rule(self):
        src = "import time\nstamp = time.time()  # repro: allow[*]\n"
        found = findings_for(src, rule="det-wall-clock")
        assert len(found) == 1 and found[0].suppressed

    def test_unrelated_rule_id_does_not_suppress(self):
        src = (
            "import time\n"
            "stamp = time.time()  # repro: allow[crypto-digest-eq]\n"
        )
        found = findings_for(src, rule="det-wall-clock")
        assert len(found) == 1 and not found[0].suppressed


class TestParseError:
    def test_syntax_error_is_reported_not_raised(self):
        found = analyze_source("def broken(:\n", path=SIM_PATH)
        assert [f.rule_id for f in found] == ["parse-error"]
        assert found[0].severity is Severity.ERROR


class TestBaseline:
    SRC = "import time\n\nstamp = time.time()\n"

    def test_round_trip_accepts_finding(self, tmp_path):
        target = tmp_path / "baseline.json"
        findings = findings_for(self.SRC, rule="det-wall-clock")
        write_baseline(target, findings)
        baseline = load_baseline(target)
        assert len(baseline.entries) == 1
        marked, stale = apply_baseline(findings, baseline)
        assert stale == []
        assert all(f.baselined for f in marked)

    def test_missing_file_is_empty(self, tmp_path):
        baseline = load_baseline(tmp_path / "absent.json")
        assert baseline.entries == []

    def test_stale_entries_surface(self):
        findings = findings_for(self.SRC, rule="det-wall-clock")
        write_target = findings[0]
        baseline = Baseline.from_dict(
            {
                "version": 1,
                "entries": [
                    {
                        "rule": write_target.rule_id,
                        "path": write_target.path,
                        "fingerprint": "0" * 16,
                        "justification": "gone",
                    }
                ],
            }
        )
        marked, stale = apply_baseline(findings, baseline)
        assert len(stale) == 1
        assert not marked[0].baselined

    def test_fingerprint_survives_line_moves(self):
        shifted = "import time\n\n\n\nstamp = time.time()\n"
        first = findings_for(self.SRC, rule="det-wall-clock")[0]
        second = findings_for(shifted, rule="det-wall-clock")[0]
        assert first.fingerprint() == second.fingerprint()
        assert first.line != second.line


class TestReportAndExitCodes:
    def test_clean_report_exits_zero(self, tmp_path):
        module = tmp_path / "repro" / "sim" / "clean.py"
        module.parent.mkdir(parents=True)
        module.write_text("VALUE = 1\n", encoding="utf-8")
        report = build_report([str(tmp_path)])
        assert report.exit_code == 0
        assert "0 error(s)" in report.render_text()

    def test_error_report_exits_one(self, tmp_path):
        module = tmp_path / "repro" / "sim" / "dirty.py"
        module.parent.mkdir(parents=True)
        module.write_text(
            "import time\nstamp = time.time()\n", encoding="utf-8"
        )
        report = build_report([str(tmp_path)])
        assert report.exit_code == 1
        text = report.render_text()
        assert "[det-wall-clock]" in text
        assert "dirty.py:2" in text
        assert "hint:" in text

    def test_warnings_only_fail_under_strict(self, tmp_path):
        module = tmp_path / "repro" / "sim" / "warny.py"
        module.parent.mkdir(parents=True)
        module.write_text(
            "def go(sim):\n"
            "    for name in {'a', 'b'}:\n"
            "        sim.schedule(0.0, print, name)\n",
            encoding="utf-8",
        )
        relaxed = build_report([str(tmp_path)])
        strict = build_report([str(tmp_path)], strict=True)
        assert relaxed.exit_code == 0
        assert strict.exit_code == 1

    def test_json_report_shape(self, tmp_path):
        module = tmp_path / "repro" / "sim" / "dirty.py"
        module.parent.mkdir(parents=True)
        module.write_text(
            "import time\nstamp = time.time()\n", encoding="utf-8"
        )
        report = build_report([str(tmp_path)])
        payload = json.loads(report.render_json())
        assert payload["exit_code"] == 1
        assert payload["counts"]["errors"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "det-wall-clock"
        assert finding["fingerprint"]

    def test_baselined_finding_does_not_fail(self, tmp_path):
        module = tmp_path / "repro" / "sim" / "legacy.py"
        module.parent.mkdir(parents=True)
        module.write_text(
            "import time\nstamp = time.time()\n", encoding="utf-8"
        )
        baseline_path = tmp_path / "baseline.json"
        first = build_report([str(tmp_path)])
        write_baseline(baseline_path, first.findings)
        second = build_report(
            [str(tmp_path)], baseline_path=str(baseline_path)
        )
        assert second.exit_code == 0
        assert second.counts()["baselined"] == 1


class TestCliIntegration:
    def run_cli(self, argv, capsys):
        from repro.cli import main

        code = main(argv)
        return code, capsys.readouterr().out

    def test_lint_dirty_file_fails_with_details(self, tmp_path, capsys):
        module = tmp_path / "repro" / "sim" / "dirty.py"
        module.parent.mkdir(parents=True)
        module.write_text(
            "import time\nstamp = time.time()\n", encoding="utf-8"
        )
        code, out = self.run_cli(
            ["lint", str(tmp_path), "--no-baseline"], capsys
        )
        assert code == 1
        assert "[det-wall-clock]" in out
        assert "dirty.py:2" in out
        assert "hint:" in out

    def test_lint_clean_file_passes(self, tmp_path, capsys):
        module = tmp_path / "module.py"
        module.write_text("VALUE = 1\n", encoding="utf-8")
        code, out = self.run_cli(
            ["lint", str(module), "--no-baseline"], capsys
        )
        assert code == 0
        assert "0 error(s)" in out

    def test_list_rules(self, capsys):
        code, out = self.run_cli(["lint", "--list-rules"], capsys)
        assert code == 0
        for rule in all_rules():
            assert rule.id in out

    def test_unknown_select_is_usage_error(self, tmp_path, capsys):
        from repro.cli import main

        module = tmp_path / "module.py"
        module.write_text("VALUE = 1\n", encoding="utf-8")
        code = main(
            [
                "lint", str(module), "--no-baseline",
                "--select", "no-such-rule",
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "no-such-rule" in captured.err

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["lint", str(tmp_path / "absent"), "--no-baseline"])
        captured = capsys.readouterr()
        assert code == 2
        assert "no such path" in captured.err

    def test_select_subset(self, tmp_path, capsys):
        module = tmp_path / "repro" / "sim" / "dirty.py"
        module.parent.mkdir(parents=True)
        module.write_text(
            "import time\nstamp = time.time()\n", encoding="utf-8"
        )
        code, out = self.run_cli(
            [
                "lint", str(tmp_path), "--no-baseline",
                "--select", "det-mutable-default",
            ],
            capsys,
        )
        assert code == 0

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        module = tmp_path / "repro" / "sim" / "legacy.py"
        module.parent.mkdir(parents=True)
        module.write_text(
            "import time\nstamp = time.time()\n", encoding="utf-8"
        )
        baseline = tmp_path / "baseline.json"
        code, out = self.run_cli(
            [
                "lint", str(tmp_path),
                "--write-baseline", "--baseline", str(baseline),
            ],
            capsys,
        )
        assert code == 0 and "baselined 1" in out
        code, out = self.run_cli(
            ["lint", str(tmp_path), "--baseline", str(baseline)], capsys
        )
        assert code == 0

    def test_json_format(self, tmp_path, capsys):
        module = tmp_path / "module.py"
        module.write_text("VALUE = 1\n", encoding="utf-8")
        code, out = self.run_cli(
            ["lint", str(module), "--no-baseline", "--format", "json"],
            capsys,
        )
        assert code == 0
        assert json.loads(out)["counts"]["files"] == 1


class TestPerfUncachedDigestRule:
    RULE = "perf-uncached-digest"

    def test_direct_hash_of_read_block_flagged(self):
        src = (
            "def measure(memory, i):\n"
            "    return audit_hash(memory.read_block(i))\n"
        )
        found = live(findings_for(src, rule=self.RULE))
        assert [f.rule_id for f in found] == [self.RULE]
        assert found[0].line == 2
        assert "audit_hash" in found[0].message
        assert "digest cache" in found[0].message

    def test_benign_block_source_flagged(self):
        src = (
            "def reference(memory, i):\n"
            "    return content_fingerprint(memory.benign_block(i))\n"
        )
        assert len(live(findings_for(src, rule=self.RULE))) == 1

    def test_hashlib_call_flagged(self):
        src = (
            "import hashlib\n"
            "def measure(memory, i):\n"
            "    return hashlib.sha256(memory.read_block(i)).digest()\n"
        )
        found = live(findings_for(src, rule=self.RULE))
        assert len(found) == 1
        assert "sha256" in found[0].message

    def test_tainted_name_flagged(self):
        src = (
            "def measure(memory, i):\n"
            "    content = memory.read_block(i)\n"
            "    return audit_hash(content)\n"
        )
        found = live(findings_for(src, rule=self.RULE))
        assert len(found) == 1
        assert found[0].line == 3

    def test_suppressed_inline(self):
        src = (
            "def fill_miss(memory, i):\n"
            "    content = memory.read_block(i)\n"
            "    return audit_hash(content)"
            "  # repro: allow[perf-uncached-digest]\n"
        )
        findings = findings_for(src, rule=self.RULE)
        assert len(findings) == 1 and findings[0].suppressed
        assert not live(findings)

    def test_hash_of_plain_argument_not_flagged(self):
        src = (
            "def fingerprint(data):\n"
            "    return audit_hash(data)\n"
        )
        assert not live(findings_for(src, rule=self.RULE))

    def test_taint_does_not_cross_functions(self):
        src = (
            "def reader(memory, i):\n"
            "    content = memory.read_block(i)\n"
            "    return content\n"
            "def hasher(content):\n"
            "    return audit_hash(content)\n"
        )
        assert not live(findings_for(src, rule=self.RULE))

    def test_cache_lookup_call_not_flagged(self):
        src = (
            "def measure(cache, key):\n"
            "    entry = cache.lookup(key)\n"
            "    return audit_hash(entry[0])\n"
        )
        assert not live(findings_for(src, rule=self.RULE))


VSERVER_PATH = "src/repro/vserver/fake_module.py"


class TestPerfUnboundedQueueRule:
    RULE = "perf-unbounded-queue"

    def test_deque_without_maxlen_flagged(self):
        src = (
            "from collections import deque\n"
            "class Srv:\n"
            "    def __init__(self):\n"
            "        self.inbox = deque()\n"
        )
        found = live(findings_for(src, path=VSERVER_PATH, rule=self.RULE))
        assert [f.rule_id for f in found] == [self.RULE]
        assert found[0].line == 4
        assert "maxlen" in found[0].message

    def test_deque_with_maxlen_not_flagged(self):
        src = (
            "from collections import deque\n"
            "class Srv:\n"
            "    def __init__(self, cap):\n"
            "        self.inbox = deque(maxlen=cap)\n"
        )
        assert not live(
            findings_for(src, path=VSERVER_PATH, rule=self.RULE)
        )

    def test_deque_maxlen_none_still_flagged(self):
        src = (
            "from collections import deque\n"
            "q = deque(maxlen=None)\n"
        )
        assert len(live(
            findings_for(src, path=VSERVER_PATH, rule=self.RULE)
        )) == 1

    def test_unbounded_self_append_flagged_in_fleet_scope(self):
        src = (
            "class Collector:\n"
            "    def on_result(self, result):\n"
            "        self.results.append(result)\n"
        )
        found = live(findings_for(src, path=FLEET_PATH, rule=self.RULE))
        assert len(found) == 1
        assert found[0].line == 3
        assert "self.results" in found[0].message

    def test_len_admission_check_not_flagged(self):
        src = (
            "class Srv:\n"
            "    def submit(self, item):\n"
            "        if len(self.queue) >= self.capacity:\n"
            "            return None\n"
            "        self.queue.append(item)\n"
        )
        assert not live(
            findings_for(src, path=VSERVER_PATH, rule=self.RULE)
        )

    def test_ring_trim_via_pop_not_flagged(self):
        src = (
            "class Prover:\n"
            "    def measure(self, record):\n"
            "        self.history.append(record)\n"
            "        if len(self.history) > self.size:\n"
            "            self.history.pop(0)\n"
        )
        assert not live(
            findings_for(src, path=VSERVER_PATH, rule=self.RULE)
        )

    def test_slice_trim_not_flagged(self):
        src = (
            "class Srv:\n"
            "    def push(self, item):\n"
            "        self.window.append(item)\n"
            "        self.window[:] = self.window[-8:]\n"
        )
        assert not live(
            findings_for(src, path=VSERVER_PATH, rule=self.RULE)
        )

    def test_bound_in_other_function_still_flagged(self):
        src = (
            "class Srv:\n"
            "    def on_msg(self, item):\n"
            "        self.log.append(item)\n"
            "    def trim(self):\n"
            "        self.log.pop(0)\n"
        )
        assert len(live(
            findings_for(src, path=VSERVER_PATH, rule=self.RULE)
        )) == 1

    def test_local_list_append_not_flagged(self):
        src = (
            "def drain(queue):\n"
            "    out = []\n"
            "    for item in queue:\n"
            "        out.append(item)\n"
            "    return out\n"
        )
        assert not live(
            findings_for(src, path=VSERVER_PATH, rule=self.RULE)
        )

    def test_out_of_scope_module_not_flagged(self):
        src = (
            "from collections import deque\n"
            "class Srv:\n"
            "    def on_msg(self, item):\n"
            "        self.log.append(item)\n"
        )
        assert findings_for(src, path=SIM_PATH, rule=self.RULE) == []

    def test_suppressed_inline(self):
        src = (
            "class Srv:\n"
            "    def conclude(self, entry):\n"
            "        self.ledger.append(entry)"
            "  # repro: allow[perf-unbounded-queue]\n"
        )
        findings = findings_for(src, path=VSERVER_PATH, rule=self.RULE)
        assert len(findings) == 1 and findings[0].suppressed
        assert not live(findings)

    def test_shipped_vserver_and_fleet_sources_clean(self):
        import pathlib

        config = LintConfig(select=(self.RULE,))
        for package in ("vserver", "fleet"):
            root = pathlib.Path("src/repro") / package
            for path in sorted(root.rglob("*.py")):
                found = live(findings_for(
                    path.read_text(encoding="utf-8"),
                    path=str(path),
                    config=config,
                ))
                assert found == [], (path, found)


class TestDeprecatedRegisterRule:
    RULE = "api-deprecated-register"

    def test_register_from_device_flagged(self):
        src = (
            "def setup(verifier, device):\n"
            "    return verifier.register_from_device(device)\n"
        )
        found = live(findings_for(src, path=FLEET_PATH, rule=self.RULE))
        assert [f.rule_id for f in found] == [self.RULE]
        assert found[0].line == 2
        assert "register_from_device" in found[0].message
        assert "enroll" in found[0].hint

    def test_all_three_shims_flagged(self):
        src = (
            "def setup(v, d):\n"
            "    v.register_device(d.name, key=b'k', reference=[])\n"
            "    v.register_from_device(d)\n"
            "    v.register_signing_identity(d.name, 'pub')\n"
        )
        found = live(findings_for(src, path=FLEET_PATH, rule=self.RULE))
        assert [f.line for f in found] == [2, 3, 4]

    def test_enroll_not_flagged(self):
        src = (
            "def setup(verifier, device):\n"
            "    verifier.enroll(device, signing='pub')\n"
        )
        assert live(findings_for(src, path=FLEET_PATH, rule=self.RULE)) == []

    def test_defining_module_allowlisted(self):
        # the shim bodies live in ra/verifier.py; the rule must not
        # flag the module that implements the deprecation itself
        src = (
            "def migrate(v, d):\n"
            "    v.register_from_device(d)\n"
        )
        found = live(findings_for(
            src, path="src/repro/ra/verifier.py", rule=self.RULE
        ))
        assert found == []

    def test_suppression_comment_respected(self):
        src = (
            "def setup(v, d):\n"
            "    v.register_from_device(d)"
            "  # repro: allow[api-deprecated-register]\n"
        )
        findings = findings_for(src, path=FLEET_PATH, rule=self.RULE)
        assert len(findings) == 1 and findings[0].suppressed
        assert not live(findings)

    def test_shipped_sources_clean(self):
        import pathlib

        config = LintConfig(select=(self.RULE,))
        for path in sorted(pathlib.Path("src/repro").rglob("*.py")):
            found = live(findings_for(
                path.read_text(encoding="utf-8"),
                path=str(path),
                config=config,
            ))
            assert found == [], (path, found)


class TestRegistry:
    def test_catalogue_covers_six_families(self):
        families = {rule.family for rule in all_rules()}
        assert families == {
            "determinism", "crypto", "atomicity", "observability",
            "performance", "api",
        }

    def test_every_rule_has_rationale_and_hint(self):
        for rule in all_rules():
            assert rule.rationale, rule.id
            assert rule.hint, rule.id
            assert rule.summary, rule.id

    def test_unknown_select_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            build_report(
                [], config=LintConfig(select=("no-such-rule",))
            )


CTX_DROP_BAD = (
    "def _on_message(self, message):\n"
    "    self.device.nic.send(\n"
    "        self.parent, 'lisa_report', message.payload\n"
    "    )\n"
)

CTX_DROP_SUPPRESSED = (
    "def _on_message(self, message):\n"
    "    # the probe reply starts no exchange of its own\n"
    "    self.endpoint.send(  # repro: allow[obs-ctx-drop] -- untraced\n"
    "        message.src, 'probe_ack', {}\n"
    "    )\n"
)

CTX_DROP_GOOD = (
    "def _on_message(self, message):\n"
    "    self.device.nic.send(\n"
    "        self.parent, 'lisa_report', message.payload,\n"
    "        ctx=message.ctx,\n"
    "    )\n"
)


class TestObsCtxDropRule:
    RULE = "obs-ctx-drop"

    def test_forward_without_ctx_flagged(self):
        found = live(
            findings_for(
                CTX_DROP_BAD, path="src/repro/swarm/fake.py",
                rule=self.RULE,
            )
        )
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING
        assert "TraceContext is dropped" in found[0].message

    def test_suppressed_inline(self):
        found = findings_for(
            CTX_DROP_SUPPRESSED, path="src/repro/swarm/fake.py",
            rule=self.RULE,
        )
        assert len(found) == 1 and found[0].suppressed

    def test_ctx_keyword_not_flagged(self):
        found = findings_for(
            CTX_DROP_GOOD, path="src/repro/swarm/fake.py", rule=self.RULE
        )
        assert found == []

    def test_positional_ctx_not_flagged(self):
        src = (
            "def _on_message(self, msg):\n"
            "    self.endpoint.send(msg.src, 'ack', {}, msg.ctx)\n"
        )
        found = findings_for(
            src, path="src/repro/swarm/fake.py", rule=self.RULE
        )
        assert found == []

    def test_send_report_helper_covered(self):
        src = (
            "def _on_request(self, message):\n"
            "    send_report(self.endpoint, message.src, report)\n"
        )
        found = live(
            findings_for(src, path="src/repro/ra/fake.py", rule=self.RULE)
        )
        assert len(found) == 1 and "send_report" in found[0].message

    def test_non_handler_sends_ignored(self):
        # minting sites (no message/msg param) start fresh exchanges;
        # the rule only polices handlers that *received* a context
        src = (
            "def attest(self):\n"
            "    self.endpoint.send(self.root, 'swarm_attest', {})\n"
        )
        found = findings_for(
            src, path="src/repro/swarm/fake.py", rule=self.RULE
        )
        assert found == []

    def test_self_scan_is_clean(self):
        # the real protocol handlers all thread their contexts
        from pathlib import Path

        from repro.staticlint.engine import analyze_source

        config = LintConfig(select=(self.RULE,))
        root = Path("src/repro")
        flagged = []
        for path in sorted(root.rglob("*.py")):
            found = analyze_source(
                path.read_text(encoding="utf-8"),
                path=str(path), config=config,
            )
            flagged.extend(f for f in found if not f.suppressed)
        assert flagged == []
