"""Cross-cutting property-based tests (hypothesis).

These pin down whole-system invariants rather than single functions:
measurement soundness (any code-byte flip flips the verdict), CPU
conservation, locking-policy automata, and QoA timeline classification
against brute force.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.qoa import InfectionEvent, QoAParameters, QoATimeline
from repro.ra.locking import DecLock, IncLock, make_policy
from repro.ra.measurement import (
    MeasurementConfig,
    traversal_order,
)
from repro.ra.verifier import Verifier
from repro.sim.device import Device
from repro.sim.engine import Simulator
from repro.sim.process import CPU, Compute, Sleep


def fresh_device(block_count=8):
    sim = Simulator()
    device = Device(sim, block_count=block_count, block_size=16)
    device.standard_layout()
    return device


def measure_now(device, nonce=b"p", order="sequential"):
    from repro.ra.measurement import MeasurementProcess

    config = MeasurementConfig(order=order)
    mp = MeasurementProcess(device, config, nonce=nonce)
    device.cpu.spawn("mp", mp.run, priority=50)
    device.sim.run(until=device.sim.now + 100)
    return mp.record


class TestMeasurementSoundness:
    @settings(max_examples=20, deadline=None)
    @given(
        block=st.integers(min_value=0, max_value=7),
        offset=st.integers(min_value=0, max_value=15),
        bit=st.integers(min_value=0, max_value=7),
    )
    def test_any_single_bit_flip_changes_the_digest(self, block, offset,
                                                    bit):
        """Soundness at bit granularity: there is no byte anywhere in
        attested memory the measurement is blind to."""
        device = fresh_device()
        baseline = measure_now(device, nonce=b"a").digest
        original = bytearray(device.memory.read_block(block))
        original[offset] ^= 1 << bit
        device.memory.write(block, bytes(original), "flip")
        flipped = measure_now(device, nonce=b"a").digest
        assert flipped != baseline

    @settings(max_examples=15, deadline=None)
    @given(
        writes=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=7),
                st.binary(min_size=16, max_size=16),
            ),
            max_size=6,
        )
    )
    def test_revert_restores_digest(self, writes):
        """Measurements depend only on contents, not history."""
        device = fresh_device()
        baseline = measure_now(device, nonce=b"b").digest
        snapshots = {}
        for block, data in writes:
            snapshots.setdefault(block, device.memory.read_block(block))
            device.memory.write(block, data, "scramble")
        for block, original in snapshots.items():
            device.memory.write(block, original, "restore")
        assert measure_now(device, nonce=b"b").digest == baseline

    @settings(max_examples=15, deadline=None)
    @given(seed=st.binary(min_size=1, max_size=16))
    def test_shuffled_digest_matches_verifier_recomputation(self, seed):
        device = fresh_device()
        record = measure_now(device, nonce=seed, order="shuffled")
        verifier = Verifier(device.sim)
        verifier.enroll(device)
        assert verifier.verify_record(record).value == "healthy"

    @settings(max_examples=20, deadline=None)
    @given(
        blocks=st.lists(
            st.integers(min_value=0, max_value=31),
            min_size=1, max_size=16, unique=True,
        ),
        seed=st.binary(min_size=1, max_size=8),
    )
    def test_traversal_order_is_permutation(self, blocks, seed):
        order = traversal_order(blocks, "shuffled", seed)
        assert sorted(order) == sorted(blocks)


class TestCpuConservation:
    @settings(max_examples=20, deadline=None)
    @given(
        tasks=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=10),  # priority
                st.floats(min_value=0.01, max_value=2.0),  # compute
                st.floats(min_value=0.0, max_value=1.0),  # initial sleep
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_cpu_time_conserved_under_preemption(self, tasks):
        """Every process eventually receives exactly the compute time
        it asked for, and total busy time never exceeds wall time."""
        sim = Simulator()
        cpu = CPU(sim)
        spawned = []

        for index, (priority, work, delay) in enumerate(tasks):
            def body(proc, work=work, delay=delay):
                if delay > 0:
                    yield Sleep(delay)
                yield Compute(work)

            spawned.append(
                cpu.spawn(f"t{index}", body, priority=priority)
            )
        sim.run()
        for proc, (priority, work, delay) in zip(spawned, tasks):
            assert proc.cpu_time == pytest.approx(work, rel=1e-9)
            assert proc.finished_at is not None
        total_work = sum(work for _, work, _ in tasks)
        assert sim.now >= total_work - 1e-9


class TestLockingAutomata:
    @settings(max_examples=25, deadline=None)
    @given(order=st.permutations(list(range(6))))
    def test_dec_lock_monotone_release(self, order):
        device = Device(Simulator(), block_count=6, block_size=16)
        policy = DecLock()
        policy.reset(device, order)
        policy.on_start()
        counts = [device.mpu.locked_count()]
        for block in order:
            policy.before_block(block)
            policy.after_block(block)
            counts.append(device.mpu.locked_count())
        policy.on_end()
        assert counts == sorted(counts, reverse=True)
        assert counts[0] == 6 and counts[-1] == 0

    @settings(max_examples=25, deadline=None)
    @given(order=st.permutations(list(range(6))))
    def test_inc_lock_monotone_acquire(self, order):
        device = Device(Simulator(), block_count=6, block_size=16)
        policy = IncLock()
        policy.reset(device, order)
        policy.on_start()
        counts = [device.mpu.locked_count()]
        for block in order:
            policy.before_block(block)
            policy.after_block(block)
            counts.append(device.mpu.locked_count())
        assert counts == sorted(counts)
        assert counts[-1] == 6
        policy.on_end()
        assert device.mpu.locked_count() == 0

    @settings(max_examples=10, deadline=None)
    @given(
        name=st.sampled_from(
            ["no-lock", "all-lock", "dec-lock", "inc-lock",
             "all-lock-ext", "inc-lock-ext"]
        ),
        order=st.permutations(list(range(5))),
    )
    def test_every_policy_leaves_no_locks_after_full_cycle(self, name,
                                                           order):
        device = Device(Simulator(), block_count=5, block_size=16)
        policy = make_policy(name)
        policy.reset(device, order)
        policy.on_start()
        for block in order:
            policy.before_block(block)
            policy.after_block(block)
        policy.on_end()
        policy.on_release()
        assert device.mpu.locked_count() == 0


class TestQoAClassification:
    @settings(max_examples=50, deadline=None)
    @given(
        t_m=st.floats(min_value=0.5, max_value=10.0),
        start=st.floats(min_value=0.0, max_value=50.0),
        dwell=st.floats(min_value=0.01, max_value=30.0),
    )
    def test_detection_matches_brute_force(self, t_m, start, dwell):
        params = QoAParameters(t_m=t_m, t_c=1000.0)
        horizon = 100.0
        timeline = QoATimeline(params, horizon,
                               collection_times=[horizon])
        outcome = timeline.add_infection(
            InfectionEvent(start, start + dwell)
        )
        grid = [k * t_m for k in range(int(horizon / t_m) + 1)]
        covered = any(start <= g <= start + dwell for g in grid)
        assert (outcome.covering_measurement is not None) == covered
