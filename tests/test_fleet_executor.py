"""Executor behaviour: serial, parallel, and every failure path."""

import os
import signal

import pytest

from repro.fleet import (
    ExecutorConfig,
    RunSpec,
    execute_campaign,
    execute_run,
    make_shards,
    run_one,
)
from repro.units import MiB

#: captured at import so forked pool workers see a different pid
_MAIN_PID = os.getpid()


def fast_spec(**overrides) -> RunSpec:
    fields = dict(
        mechanism="smart",
        adversary="none",
        block_count=8,
        sim_block_size=MiB,
        horizon=10.0,
    )
    fields.update(overrides)
    return RunSpec(**fields)


def parity_specs():
    """A small mixed plan exercising every executor-relevant shape."""
    specs = []
    for mechanism, adversary in [
        ("smart", "none"),
        ("smart", "transient"),
        ("erasmus", "transient"),
        ("seed", "none"),
        ("inc-lock", "none"),
        ("no-lock", "transient"),
    ]:
        specs.append(
            fast_spec(
                mechanism=mechanism,
                adversary=adversary,
                dwell=4.0 if adversary == "transient" else 0.0,
                horizon=20.0,
            )
        )
    return specs


def die_in_pool_worker(spec: RunSpec):
    """Kills the hosting process -- but only inside a pool worker, so
    the degraded in-process rerun (same runner) survives."""
    if os.getpid() != _MAIN_PID:
        os._exit(1)
    return execute_run(spec)


class TestSingleRun:
    def test_healthy_run(self):
        result = run_one(fast_spec())
        assert result.ok
        assert result.verdict_counts == {"healthy": 1}
        assert result.measurements == 1
        assert result.availability is not None
        assert result.availability["jobs_released"] > 0
        assert result.trace_events > 0
        assert result.hash_ops == 8
        assert result.hash_bytes == 8 * MiB
        assert result.sim_time == pytest.approx(10.0)
        assert result.wall_clock > 0

    def test_transient_detection_with_latency(self):
        result = run_one(
            fast_spec(
                mechanism="erasmus", adversary="transient",
                dwell=6.0, horizon=24.0, t_m=2.0, t_c=8.0,
            )
        )
        assert result.ok
        assert result.detected
        assert result.detection_latency > 0
        assert result.qoa["detection_probability"] == 1.0

    def test_workload_none_has_no_availability(self):
        result = run_one(fast_spec(workload="none"))
        assert result.ok
        assert result.availability is None

    def test_writer_workload_availability(self):
        result = run_one(
            fast_spec(
                mechanism="all-lock", workload="writers",
                block_count=16, writer_tasks=2,
            )
        )
        assert result.ok
        assert len(result.availability["per_task"]) == 2

    def test_trace_ring_buffer_bounds_memory(self):
        result = run_one(fast_spec(trace_limit=50, horizon=20.0))
        assert result.ok
        assert result.trace_events == 50
        assert result.trace_dropped > 0


class TestFailurePaths:
    def test_worker_raising_becomes_error_result(self):
        result = run_one(fast_spec(mechanism="crashtest"), retries=0)
        assert result.status == "error"
        assert "InjectedFailure" in result.error
        assert result.attempts == 1

    def test_retry_then_give_up(self):
        result = run_one(fast_spec(mechanism="crashtest"), retries=2)
        assert result.status == "error"
        assert result.attempts == 3  # 1 try + 2 retries

    def test_retry_then_success(self):
        failures = {"left": 2}

        def flaky(spec: RunSpec):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise RuntimeError("transient worker failure")
            return execute_run(spec)

        result = run_one(fast_spec(), retries=2, runner=flaky)
        assert result.ok
        assert result.attempts == 3
        assert result.verdict_counts == {"healthy": 1}

    @pytest.mark.skipif(
        not hasattr(signal, "SIGALRM"), reason="needs SIGALRM"
    )
    def test_per_run_timeout(self):
        result = run_one(
            fast_spec(mechanism="sleeptest", horizon=30.0, timeout=0.2)
        )
        assert result.status == "timeout"
        assert "0.2" in result.error
        assert result.wall_clock < 5.0

    @pytest.mark.skipif(
        not hasattr(signal, "SIGALRM"), reason="needs SIGALRM"
    )
    def test_timeout_not_retried(self):
        result = run_one(
            fast_spec(mechanism="sleeptest", horizon=30.0, timeout=0.2),
            retries=3,
        )
        assert result.status == "timeout"
        assert result.attempts == 1

    def test_deadline_degrades_off_main_thread(self):
        # backends may run shards from worker threads, where SIGALRM
        # cannot be armed; the run must complete without a budget
        # instead of crashing
        import threading

        holder = {}

        def worker():
            holder["result"] = run_one(fast_spec(timeout=30.0))

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join(timeout=60)
        assert not thread.is_alive()
        assert holder["result"].ok

    @pytest.mark.skipif(
        not hasattr(signal, "SIGALRM"), reason="needs SIGALRM"
    )
    def test_deadline_degrades_when_handler_refused(self, monkeypatch):
        # embedded interpreters can refuse signal handlers even on the
        # main thread; the deadline must degrade to a no-op
        def refuse(signum, handler):
            raise ValueError("signal only works in main thread")

        monkeypatch.setattr(signal, "signal", refuse)
        result = run_one(fast_spec(timeout=30.0))
        assert result.ok

    @pytest.mark.skipif(
        not hasattr(signal, "SIGALRM"), reason="needs SIGALRM"
    )
    def test_deadline_degrades_when_timer_refused(self, monkeypatch):
        def refuse(which, seconds):
            raise OSError("no interval timers here")

        monkeypatch.setattr(signal, "setitimer", refuse)
        result = run_one(fast_spec(timeout=30.0))
        assert result.ok

    def test_campaign_isolates_bad_runs(self):
        specs = [
            fast_spec(),
            fast_spec(mechanism="crashtest"),
            fast_spec(seed=8),
        ]
        report = execute_campaign(specs, ExecutorConfig(retries=0))
        assert report.status_counts == {"ok": 2, "error": 1}
        # plan order is preserved around the failure
        assert [r.run_id for r in report.results] == [
            s.run_id for s in specs
        ]


class TestSharding:
    def test_make_shards_partitions_in_order(self):
        specs = [fast_spec(seed=i) for i in range(7)]
        shards = make_shards(specs, 3)
        assert [len(s) for s in shards] == [3, 3, 1]
        assert [s.run_id for shard in shards for s in shard] == [
            s.run_id for s in specs
        ]


class TestParallel:
    def test_serial_parallel_parity_byte_identical(self):
        specs = parity_specs()
        serial = execute_campaign(specs, ExecutorConfig(workers=0))
        parallel = execute_campaign(
            specs, ExecutorConfig(workers=2, shard_size=2)
        )
        assert serial.mode == "serial"
        assert parallel.mode == "parallel"
        assert [r.to_json_line() for r in serial.results] == [
            r.to_json_line() for r in parallel.results
        ]

    def test_pool_unavailable_degrades_to_serial(self):
        def no_pool(workers):
            raise OSError("no processes for you")

        specs = [fast_spec(seed=i) for i in range(3)]
        report = execute_campaign(
            specs,
            ExecutorConfig(workers=4, shard_size=2),
            pool_factory=no_pool,
        )
        assert report.mode == "serial"
        assert report.degraded_shards == report.shard_count == 2
        assert report.status_counts == {"ok": 3}

    def test_worker_crash_degrades_shard_in_process(self):
        specs = [fast_spec(seed=i) for i in range(4)]
        report = execute_campaign(
            specs,
            ExecutorConfig(workers=2, shard_size=2),
            runner=die_in_pool_worker,
        )
        assert report.mode == "parallel"
        assert report.degraded_shards >= 1
        assert report.status_counts == {"ok": 4}
        assert [r.run_id for r in report.results] == [
            s.run_id for s in specs
        ]

    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 2,
        reason="speedup needs >= 2 physical cores",
    )
    def test_parallel_speedup_on_multicore(self):
        from repro.fleet import qoa_fleet_campaign

        specs = qoa_fleet_campaign().plan()
        serial = execute_campaign(specs, ExecutorConfig(workers=0))
        parallel = execute_campaign(
            specs, ExecutorConfig(workers=max(2, os.cpu_count() or 2))
        )
        assert serial.wall_clock / parallel.wall_clock > 1.5
