"""Discrete-event engine: ordering, cancellation, signals."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SchedulingError
from repro.sim.engine import Signal, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, order.append, "b")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(3.0, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_schedule_order(self):
        sim = Simulator()
        order = []
        for tag in "abc":
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(4.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(SchedulingError):
            Simulator().schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SchedulingError):
            sim.schedule_at(1.0, lambda: None)

    def test_nested_scheduling_from_callback(self):
        sim = Simulator()
        times = []

        def first():
            sim.schedule(1.0, lambda: times.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert times == [2.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_pending_count_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.pending_count() == 1
        assert keep.time == 1.0

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        early = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        early.cancel()
        assert sim.peek_time() == 2.0

    def test_peek_time_empty(self):
        assert Simulator().peek_time() is None


class TestRunControl:
    def test_run_until_stops_clock_exactly(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        assert sim.run(until=4.0) == 4.0
        assert sim.now == 4.0
        assert sim.pending_count() == 1

    def test_run_until_composes(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, fired.append, "x")
        sim.run(until=2.0)
        assert fired == []
        sim.run(until=5.0)
        assert fired == ["x"]

    def test_run_advances_to_until_even_when_idle(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_stop_halts_mid_run(self):
        sim = Simulator()
        fired = []

        def first_event():
            fired.append("a")
            sim.stop()

        sim.schedule(1.0, first_event)
        sim.schedule(2.0, fired.append, "b")
        sim.run()
        assert fired == ["a"]
        assert sim.pending_count() == 1

    def test_step_runs_single_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        assert sim.step() is True
        assert fired == ["a"]

    def test_step_on_empty_queue(self):
        assert Simulator().step() is False

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def nested():
            with pytest.raises(SchedulingError):
                sim.run()

        sim.schedule(1.0, nested)
        sim.run()

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    def test_events_always_fire_in_nondecreasing_time(self, delays):
        sim = Simulator()
        fired_times = []
        for delay in delays:
            sim.schedule(delay, lambda: fired_times.append(sim.now))
        sim.run()
        assert fired_times == sorted(fired_times)
        assert len(fired_times) == len(delays)


class TestSignal:
    def test_fire_wakes_waiters(self):
        sim = Simulator()
        signal = Signal(sim, "s")
        got = []
        signal.wait(got.append)
        signal.fire("payload")
        sim.run()
        assert got == ["payload"]

    def test_signal_is_edge_not_level(self):
        sim = Simulator()
        signal = Signal(sim, "s")
        signal.fire("early")
        got = []
        signal.wait(got.append)
        sim.run()
        assert got == []

    def test_waiters_cleared_after_fire(self):
        sim = Simulator()
        signal = Signal(sim, "s")
        got = []
        signal.wait(got.append)
        signal.fire(1)
        signal.fire(2)
        sim.run()
        assert got == [1]

    def test_fire_returns_waiter_count(self):
        sim = Simulator()
        signal = Signal(sim, "s")
        signal.wait(lambda v: None)
        signal.wait(lambda v: None)
        assert signal.fire() == 2

    def test_unwait_removes_waiter(self):
        sim = Simulator()
        signal = Signal(sim, "s")
        got = []
        signal.wait(got.append)
        signal.unwait(got.append)
        signal.fire("x")
        sim.run()
        assert got == []

    def test_unwait_missing_is_noop(self):
        sim = Simulator()
        Signal(sim, "s").unwait(lambda v: None)

    def test_fire_count_and_last_value(self):
        sim = Simulator()
        signal = Signal(sim, "s")
        signal.fire("a")
        signal.fire("b")
        assert signal.fire_count == 2
        assert signal.last_value == "b"
