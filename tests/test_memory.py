"""Block memory: geometry, regions, writes, snapshots, audit log."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AddressError, ConfigurationError, MemoryFault
from repro.sim.engine import Simulator
from repro.sim.memory import (
    Memory,
    MemoryImage,
    Region,
    benign_fill,
    content_fingerprint,
)
from repro.sim.mpu import FaultPolicy, MemoryProtectionUnit


def make_memory(block_count=8, block_size=16, **kwargs):
    return Memory(block_count, block_size, **kwargs)


class TestGeometry:
    def test_sizes(self):
        memory = make_memory(8, 16)
        assert memory.total_size == 128
        assert memory.total_sim_size == 128

    def test_sim_size_decoupled(self):
        memory = make_memory(8, 16, sim_block_size=1024)
        assert memory.total_size == 128
        assert memory.total_sim_size == 8 * 1024

    def test_sim_block_smaller_than_real_rejected(self):
        with pytest.raises(ConfigurationError):
            make_memory(8, 16, sim_block_size=8)

    def test_zero_blocks_rejected(self):
        with pytest.raises(ConfigurationError):
            make_memory(0, 16)

    def test_zero_block_size_rejected(self):
        with pytest.raises(ConfigurationError):
            make_memory(8, 0)


class TestBenignContents:
    def test_initialized_to_benign_image(self):
        memory = make_memory()
        assert memory.snapshot() == memory.benign_image()

    def test_benign_fill_deterministic(self):
        assert benign_fill(3, 16, 7) == benign_fill(3, 16, 7)

    def test_benign_fill_varies_by_block(self):
        assert benign_fill(0, 16, 7) != benign_fill(1, 16, 7)

    def test_benign_fill_varies_by_seed(self):
        assert benign_fill(0, 16, 7) != benign_fill(0, 16, 8)

    def test_no_dirty_blocks_initially(self):
        assert make_memory().dirty_blocks() == []


class TestReadWrite:
    def test_write_then_read(self):
        memory = make_memory()
        memory.write(2, b"\xAB" * 16, "tester")
        assert memory.read_block(2) == b"\xAB" * 16

    def test_write_wrong_size_rejected(self):
        with pytest.raises(AddressError):
            make_memory().write(0, b"short", "tester")

    def test_out_of_range_read(self):
        with pytest.raises(AddressError):
            make_memory(8).read_block(8)

    def test_out_of_range_write(self):
        with pytest.raises(AddressError):
            make_memory(8).write(-1, b"\x00" * 16, "t")

    def test_patch_partial(self):
        memory = make_memory()
        original = memory.read_block(1)
        memory.patch(1, 4, b"\xFF\xFF", "tester")
        patched = memory.read_block(1)
        assert patched[4:6] == b"\xFF\xFF"
        assert patched[:4] == original[:4]
        assert patched[6:] == original[6:]

    def test_patch_out_of_bounds(self):
        with pytest.raises(AddressError):
            make_memory().patch(0, 15, b"\x00\x00", "t")

    def test_dirty_blocks_reflect_writes(self):
        memory = make_memory()
        memory.write(5, b"\x01" * 16, "t")
        memory.write(2, b"\x02" * 16, "t")
        assert memory.dirty_blocks() == [2, 5]

    def test_write_back_benign_cleans(self):
        memory = make_memory()
        memory.write(5, b"\x01" * 16, "t")
        memory.write(5, memory.benign_block(5), "t")
        assert memory.dirty_blocks() == []


class TestWriteLog:
    def test_log_records_time_actor_fingerprint(self):
        sim = Simulator()
        memory = make_memory()
        memory._clock = lambda: sim.now
        sim.schedule(2.0, memory.write, 3, b"\xCD" * 16, "writer")
        sim.run()
        assert len(memory.write_log) == 1
        record = memory.write_log[0]
        assert record.time == 2.0
        assert record.block == 3
        assert record.actor == "writer"
        assert record.fingerprint == content_fingerprint(b"\xCD" * 16)

    def test_writes_in_window(self):
        sim = Simulator()
        memory = make_memory()
        memory._clock = lambda: sim.now
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, memory.write, 0, b"\x00" * 16, "w")
        sim.run()
        assert len(memory.writes_in(1.5, 2.5)) == 1

    def test_patch_logs_resulting_fingerprint(self):
        memory = make_memory()
        memory.patch(0, 0, b"\xFF", "w")
        expected = content_fingerprint(memory.read_block(0))
        assert memory.write_log[-1].fingerprint == expected


class TestMpuIntegration:
    def make_locked(self):
        sim = Simulator()
        memory = make_memory()
        memory.mpu = MemoryProtectionUnit(sim, 8, FaultPolicy.RAISE)
        memory.mpu.lock(3)
        return memory

    def test_locked_write_faults(self):
        memory = self.make_locked()
        with pytest.raises(MemoryFault):
            memory.write(3, b"\x00" * 16, "t")

    def test_locked_write_not_applied(self):
        memory = self.make_locked()
        before = memory.read_block(3)
        with pytest.raises(MemoryFault):
            memory.write(3, b"\x00" * 16, "t")
        assert memory.read_block(3) == before

    def test_locked_write_not_logged(self):
        memory = self.make_locked()
        with pytest.raises(MemoryFault):
            memory.write(3, b"\x00" * 16, "t")
        assert memory.write_log == []

    def test_try_write_returns_false_on_fault(self):
        memory = self.make_locked()
        assert memory.try_write(3, b"\x00" * 16, "t") is False
        assert memory.try_write(4, b"\x00" * 16, "t") is True

    def test_reads_never_blocked(self):
        memory = self.make_locked()
        memory.read_block(3)

    def test_drop_policy_discards_silently(self):
        sim = Simulator()
        memory = make_memory()
        memory.mpu = MemoryProtectionUnit(sim, 8, FaultPolicy.DROP)
        memory.mpu.lock(3)
        before = memory.read_block(3)
        memory.write(3, b"\x11" * 16, "t")  # no exception
        assert memory.read_block(3) == before
        assert memory.write_log == []


class TestRegions:
    def test_add_and_lookup(self):
        memory = make_memory()
        region = memory.add_region(Region("code", 0, 4))
        assert memory.region_of(2) is region
        assert memory.region_of(5) is None

    def test_contains(self):
        region = Region("r", 2, 3)
        assert 2 in region and 4 in region
        assert 5 not in region and 1 not in region

    def test_overlap_rejected(self):
        memory = make_memory()
        memory.add_region(Region("a", 0, 4))
        with pytest.raises(ConfigurationError):
            memory.add_region(Region("b", 3, 2))

    def test_out_of_range_rejected(self):
        memory = make_memory(8)
        with pytest.raises(AddressError):
            memory.add_region(Region("big", 4, 8))

    def test_region_blocks(self):
        assert list(Region("r", 2, 3).blocks()) == [2, 3, 4]


class TestSnapshots:
    def test_snapshot_is_immutable_copy(self):
        memory = make_memory()
        snap = memory.snapshot()
        memory.write(0, b"\xEE" * 16, "t")
        assert snap[0] != memory.read_block(0)

    def test_load_image_restores(self):
        memory = make_memory()
        snap = memory.snapshot()
        memory.write(0, b"\xEE" * 16, "t")
        memory.load_image(snap)
        assert memory.snapshot() == snap

    def test_load_image_wrong_count_rejected(self):
        memory = make_memory(8)
        with pytest.raises(ConfigurationError):
            memory.load_image(MemoryImage([b"\x00" * 16] * 7))

    def test_load_image_wrong_block_size_rejected(self):
        memory = make_memory(8, 16)
        with pytest.raises(ConfigurationError):
            memory.load_image(MemoryImage([b"\x00" * 15] * 8))

    def test_image_replace(self):
        image = MemoryImage([b"\x00" * 4, b"\x11" * 4])
        replaced = image.replace(1, b"\x22" * 4)
        assert replaced[1] == b"\x22" * 4
        assert image[1] == b"\x11" * 4

    def test_image_replace_out_of_range(self):
        with pytest.raises(AddressError):
            MemoryImage([b"\x00"]).replace(3, b"\x01")

    def test_image_equality_and_hash(self):
        a = MemoryImage([b"\x00", b"\x01"])
        b = MemoryImage([b"\x00", b"\x01"])
        assert a == b
        assert hash(a) == hash(b)
        assert a != MemoryImage([b"\x00", b"\x02"])

    def test_fingerprint_stable(self):
        image = MemoryImage([b"ab", b"cd"])
        assert image.fingerprint() == MemoryImage([b"ab", b"cd"]).fingerprint()

    @given(
        st.lists(st.binary(min_size=4, max_size=4), min_size=1, max_size=8),
    )
    def test_image_roundtrip_through_memory(self, blocks):
        memory = Memory(len(blocks), 4)
        memory.load_image(MemoryImage(blocks))
        assert list(memory.snapshot()) == [bytes(b) for b in blocks]

    @settings(max_examples=25)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=7),
                st.binary(min_size=16, max_size=16),
            ),
            max_size=20,
        )
    )
    def test_write_sequence_final_state_matches_last_writes(self, writes):
        memory = make_memory()
        last = {}
        for block, data in writes:
            memory.write(block, data, "h")
            last[block] = data
        for block in range(8):
            expected = last.get(block, memory.benign_block(block))
            assert memory.read_block(block) == expected
