"""Whole-program analyzer tests: symbols, call graph, taint, cache.

Each interprocedural rule gets a cross-file fixture trio: a true
positive the lexical rules cannot see (the hazard spans two modules),
the same positive suppressed inline, and a near-miss that must NOT
fire.  On top of that: call-graph resolution, taint-engine unit
semantics (injection, backflow, sanitizers, projections), the
content-hash cache (hit/invalidate), SARIF output, ``--explain`` and
``--changed``.
"""

import ast
import json
import subprocess

import pytest

from repro.staticlint import (
    LintConfig,
    ProjectIndex,
    TaintSpec,
    analyze_project,
    build_report,
    extract_module_summary,
    run_taint,
)
from repro.staticlint.cli import main
from repro.staticlint.dataflow import call_matcher
from repro.staticlint.symbols import module_name


def write_project(root, files):
    """Write ``{relpath: source}`` under ``root/src`` and return it."""
    src = root / "src"
    for rel, text in files.items():
        path = src / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
    return src


def live_findings(tmp_path, files, rule=None):
    src = write_project(tmp_path, files)
    config = LintConfig(select=(rule,) if rule else None)
    analysis = analyze_project([str(src)], config)
    return [f for f in analysis.findings if not f.suppressed]


def all_findings(tmp_path, files, rule=None):
    src = write_project(tmp_path, files)
    config = LintConfig(select=(rule,) if rule else None)
    return analyze_project([str(src)], config).findings


# ---------------------------------------------------------------------------
# symbols / call graph
# ---------------------------------------------------------------------------


class TestModuleName:
    def test_relative_to_root(self):
        assert (
            module_name("src/repro/fleet/clock.py", ["src"])
            == "repro.fleet.clock"
        )

    def test_package_init_collapses(self):
        assert module_name("src/repro/__init__.py", ["src"]) == "repro"

    def test_repro_anchor_without_root(self):
        assert (
            module_name("/x/y/repro/ra/verifier.py") == "repro.ra.verifier"
        )


def index_of(sources):
    """Build a ProjectIndex from ``{path: source}`` fixtures."""
    summaries = {}
    for path, text in sources.items():
        tree = ast.parse(text)
        summaries[path] = extract_module_summary(tree, path, ["src"])
    return ProjectIndex.build(summaries.values())


class TestCallGraph:
    SOURCES = {
        "src/pkg/a.py": (
            "from pkg.b import helper\n"
            "class Runner:\n"
            "    def go(self):\n"
            "        self.step()\n"
            "        helper()\n"
            "    def step(self):\n"
            "        unique_leaf()\n"
        ),
        "src/pkg/b.py": (
            "def helper():\n"
            "    return 1\n"
            "def unique_leaf():\n"
            "    return 2\n"
            "def drive(runner):\n"
            "    runner.step()\n"
        ),
    }

    def test_self_method_resolves_to_same_class(self):
        index = index_of(self.SOURCES)
        go = index.functions["pkg.a.Runner.go"]
        callee = index.resolve_call(go, go.calls[0])
        assert callee is not None
        assert callee.qual == "pkg.a.Runner.step"

    def test_import_dealiasing_resolves_cross_module(self):
        index = index_of(self.SOURCES)
        go = index.functions["pkg.a.Runner.go"]
        callee = index.resolve_call(go, go.calls[1])
        assert callee is not None
        assert callee.qual == "pkg.b.helper"

    def test_unique_method_fallback(self):
        # ``runner.step()``: the receiver type is unknown, but only
        # one class in the project defines a ``step`` method
        index = index_of(self.SOURCES)
        drive = index.functions["pkg.b.drive"]
        callee = index.resolve_call(drive, drive.calls[0])
        assert callee is not None
        assert callee.qual == "pkg.a.Runner.step"

    def test_bare_unknown_name_stays_unresolved(self):
        # a bare call to an unimported name is deliberately NOT
        # resolved through the unique-name fallback
        index = index_of(self.SOURCES)
        step = index.functions["pkg.a.Runner.step"]
        assert index.resolve_call(step, step.calls[0]) is None

    def test_render_lists_edges(self):
        index = index_of(self.SOURCES)
        rendered = index.render()
        assert "pkg.a.Runner.go" in rendered
        assert "pkg.b.helper" in rendered


# ---------------------------------------------------------------------------
# taint engine semantics
# ---------------------------------------------------------------------------


def taint_spec(**overrides):
    base = dict(
        rule_id="test-rule",
        call_sources=call_matcher(
            terminals=("taint_source",), describe="source {name}"
        ),
        sinks=call_matcher(terminals=("sink",), describe="{name}()"),
        sanitizers=call_matcher(terminals=("launder",)),
    )
    base.update(overrides)
    return TaintSpec(**base)


class TestTaintEngine:
    def test_cross_file_param_injection_and_ret_backflow(self):
        index = index_of({
            "src/t/a.py": (
                "from t.b import identity\n"
                "def top():\n"
                "    value = taint_source()\n"
                "    out = identity(value)\n"
                "    sink(out)\n"
            ),
            "src/t/b.py": (
                "def identity(x):\n"
                "    return x\n"
            ),
        })
        hits = run_taint(index, taint_spec())
        assert len(hits) == 1
        assert hits[0].function.qual == "t.a.top"
        trace = "\n".join(hits[0].trace)
        assert "passes tainted value into identity()" in trace
        assert "receives tainted return value from identity()" in trace

    def test_sanitizer_cuts_the_flow(self):
        index = index_of({
            "src/t/a.py": (
                "def top():\n"
                "    value = taint_source()\n"
                "    out = launder(value)\n"
                "    sink(out)\n"
            ),
        })
        assert run_taint(index, taint_spec()) == []

    def test_sanitizer_inside_return_expression_cuts_too(self):
        # the regression the call-mediated _expr_deps exists for:
        # ``return launder(value)`` must not leak a direct edge
        index = index_of({
            "src/t/a.py": (
                "from t.b import derive\n"
                "def top():\n"
                "    out = derive(taint_source())\n"
                "    sink(out)\n"
            ),
            "src/t/b.py": (
                "def derive(x):\n"
                "    return launder(x)\n"
            ),
        })
        assert run_taint(index, taint_spec()) == []

    def test_unknown_callee_taints_through(self):
        index = index_of({
            "src/t/a.py": (
                "def top():\n"
                "    out = external(taint_source())\n"
                "    sink(out)\n"
            ),
        })
        assert len(run_taint(index, taint_spec())) == 1

    def test_projection_filter_gates_container_reads(self):
        sources = {
            "src/t/a.py": (
                "def top():\n"
                "    box = external(taint_source())\n"
                "    sink(box.metadata)\n"
                "    sink(box.key)\n"
            ),
        }
        # default projection: both reads inherit the container taint
        hits = run_taint(index_of(sources), taint_spec())
        assert len(hits) == 2
        # a narrowed projection keeps .metadata clean
        narrowed = taint_spec(projection=lambda attr: attr == "key")
        hits = run_taint(index_of(sources), narrowed)
        assert len(hits) == 1
        assert hits[0].line == 4

    def test_name_sources_seed_parameters(self):
        index = index_of({
            "src/t/a.py": (
                "def handler(secret):\n"
                "    sink(secret)\n"
            ),
        })
        spec = taint_spec(
            name_sources=lambda func: [
                (f"param:{p}", f"parameter {p}")
                for p in func.params
                if p == "secret"
            ],
        )
        hits = run_taint(index, spec)
        assert len(hits) == 1
        assert "parameter secret" in hits[0].trace[0]


# ---------------------------------------------------------------------------
# det-taint-flow (cross-file)
# ---------------------------------------------------------------------------

DET_CLOCK = (
    "import time\n"
    "\n"
    "def wall_now():\n"
    "    return time.time()\n"
)


class TestDetTaintFlow:
    RULE = "det-taint-flow"

    def test_blessed_clock_value_reaching_scheduler_flagged(self, tmp_path):
        found = live_findings(tmp_path, {
            "repro/fleet/clock.py": DET_CLOCK,
            "repro/core/run.py": (
                "from repro.fleet.clock import wall_now\n"
                "\n"
                "def kickoff(sim):\n"
                "    t = wall_now()\n"
                "    sim.schedule(t, None)\n"
            ),
        })
        dets = [f for f in found if f.rule_id == self.RULE]
        assert len(dets) == 1
        assert dets[0].path.endswith("repro/core/run.py")
        assert dets[0].line == 5
        # the source lives in the allowlisted clock module, which the
        # lexical det-wall-clock rule deliberately ignores
        assert not any(f.rule_id == "det-wall-clock" for f in found)
        trace = "\n".join(dets[0].trace)
        assert "time.time" in trace
        assert "reaches sink" in trace

    def test_inline_suppression_honored(self, tmp_path):
        found = all_findings(tmp_path, {
            "repro/fleet/clock.py": DET_CLOCK,
            "repro/core/run.py": (
                "from repro.fleet.clock import wall_now\n"
                "\n"
                "def kickoff(sim):\n"
                "    t = wall_now()\n"
                "    sim.schedule(t, None)"
                "  # repro: allow[det-taint-flow] -- test rig\n"
            ),
        }, rule=self.RULE)
        assert [f.suppressed for f in found] == [True]

    def test_telemetry_envelope_not_flagged(self, tmp_path):
        # RunResult is the sanctioned wall-clock envelope
        found = live_findings(tmp_path, {
            "repro/fleet/clock.py": DET_CLOCK,
            "repro/core/run.py": (
                "from repro.fleet.clock import wall_now\n"
                "\n"
                "def kickoff(sim, results):\n"
                "    results.append(RunResult(started_at=wall_now()))\n"
                "    sim.schedule(0.0, None)\n"
            ),
        }, rule=self.RULE)
        assert found == []


# ---------------------------------------------------------------------------
# crypto-secret-leak (cross-file)
# ---------------------------------------------------------------------------

LEAK_KEYS = (
    "def expand_key(key):\n"
    "    return key\n"
)


class TestCryptoSecretLeak:
    RULE = "crypto-secret-leak"

    def test_key_material_reaching_fstring_flagged(self, tmp_path):
        found = live_findings(tmp_path, {
            "repro/crypto/keys.py": LEAK_KEYS,
            "repro/ra/emit.py": (
                "from repro.crypto.keys import expand_key\n"
                "\n"
                "def emit(logger, raw):\n"
                "    k = expand_key(raw)\n"
                "    msg = f'session {k}'\n"
                "    return msg\n"
            ),
        }, rule=self.RULE)
        assert len(found) == 1
        assert found[0].path.endswith("repro/ra/emit.py")
        assert "f-string" in found[0].message

    def test_inline_suppression_honored(self, tmp_path):
        found = all_findings(tmp_path, {
            "repro/crypto/keys.py": LEAK_KEYS,
            "repro/ra/emit.py": (
                "from repro.crypto.keys import expand_key\n"
                "\n"
                "def emit(logger, raw):\n"
                "    k = expand_key(raw)\n"
                "    msg = f'session {k}'"
                "  # repro: allow[crypto-secret-leak] -- fixture\n"
                "    return msg\n"
            ),
        }, rule=self.RULE)
        assert [f.suppressed for f in found] == [True]

    def test_fingerprint_of_key_not_flagged(self, tmp_path):
        found = live_findings(tmp_path, {
            "repro/crypto/keys.py": LEAK_KEYS,
            "repro/ra/emit.py": (
                "from repro.crypto.keys import expand_key\n"
                "\n"
                "def emit(logger, raw):\n"
                "    k = expand_key(raw)\n"
                "    logger.info(f'session {key_fingerprint(k)}')\n"
            ),
        }, rule=self.RULE)
        assert found == []

    def test_container_metadata_not_flagged(self, tmp_path):
        # a prover object holds a key, but reading .history off it
        # must not count as reading the key
        found = live_findings(tmp_path, {
            "repro/crypto/keys.py": LEAK_KEYS,
            "repro/ra/emit.py": (
                "from repro.crypto.keys import expand_key\n"
                "\n"
                "def emit(logger, raw):\n"
                "    prover = make_prover(expand_key(raw))\n"
                "    a = f'{prover.history}'\n"
                "    b = f'{prover.key}'\n"
                "    return a, b\n"
            ),
        }, rule=self.RULE)
        assert [f.line for f in found] == [6]


# ---------------------------------------------------------------------------
# ra-atomic-gap-interproc (cross-file)
# ---------------------------------------------------------------------------

ATOMIC_HELPERS = (
    "def prep(proc):\n"
    "    proc.sim.schedule(0.0, None)\n"
)


class TestAtomicGapInterproc:
    RULE = "ra-atomic-gap-interproc"

    def test_helper_scheduling_inside_window_flagged(self, tmp_path):
        found = live_findings(tmp_path, {
            "repro/ra/helpers.py": ATOMIC_HELPERS,
            "repro/ra/proc.py": (
                "from repro.ra.helpers import prep\n"
                "\n"
                "def run(self, proc):\n"
                "    yield Atomic(True)\n"
                "    prep(proc)\n"
                "    yield Compute(0.5)\n"
                "    yield Atomic(False)\n"
            ),
        })
        gaps = [f for f in found if f.rule_id == self.RULE]
        assert len(gaps) == 1
        assert gaps[0].path.endswith("repro/ra/proc.py")
        assert gaps[0].line == 5
        # the direct lexical rule cannot see through the call
        assert not any(f.rule_id == "ra-atomic-gap" for f in found)

    def test_inline_suppression_honored(self, tmp_path):
        found = all_findings(tmp_path, {
            "repro/ra/helpers.py": ATOMIC_HELPERS,
            "repro/ra/proc.py": (
                "from repro.ra.helpers import prep\n"
                "\n"
                "def run(self, proc):\n"
                "    yield Atomic(True)\n"
                "    prep(proc)  # repro: allow[ra-atomic-gap-interproc]\n"
                "    yield Compute(0.5)\n"
                "    yield Atomic(False)\n"
            ),
        }, rule=self.RULE)
        assert [f.suppressed for f in found] == [True]

    def test_helper_called_outside_window_not_flagged(self, tmp_path):
        found = live_findings(tmp_path, {
            "repro/ra/helpers.py": ATOMIC_HELPERS,
            "repro/ra/proc.py": (
                "from repro.ra.helpers import prep\n"
                "\n"
                "def run(self, proc):\n"
                "    yield Atomic(True)\n"
                "    yield Compute(0.5)\n"
                "    yield Atomic(False)\n"
                "    prep(proc)\n"
            ),
        }, rule=self.RULE)
        assert found == []

    def test_pure_helper_inside_window_not_flagged(self, tmp_path):
        found = live_findings(tmp_path, {
            "repro/ra/helpers.py": (
                "def pure(x):\n"
                "    return x + 1\n"
            ),
            "repro/ra/proc.py": (
                "from repro.ra.helpers import pure\n"
                "\n"
                "def run(self, proc):\n"
                "    yield Atomic(True)\n"
                "    pure(1)\n"
                "    yield Compute(0.5)\n"
                "    yield Atomic(False)\n"
            ),
        }, rule=self.RULE)
        assert found == []


# ---------------------------------------------------------------------------
# obs-span-leak-interproc (cross-file)
# ---------------------------------------------------------------------------

SPAN_OPENER = (
    "def open_phase(obs):\n"
    "    span = obs.begin_span('phase')\n"
    "    return span\n"
)


class TestSpanLeakInterproc:
    RULE = "obs-span-leak-interproc"

    def test_unbalanced_opener_call_flagged(self, tmp_path):
        found = live_findings(tmp_path, {
            "repro/obs/spans.py": SPAN_OPENER,
            "repro/core/work.py": (
                "from repro.obs.spans import open_phase\n"
                "\n"
                "def work(obs):\n"
                "    span = open_phase(obs)\n"
                "    use(span)\n"
            ),
        })
        leaks = [f for f in found if f.rule_id == self.RULE]
        assert len(leaks) == 1
        assert leaks[0].path.endswith("repro/core/work.py")
        # the opener itself transfers ownership via return: the
        # lexical obs-span-leak rule must stay silent on it
        assert not any(f.rule_id == "obs-span-leak" for f in found)

    def test_inline_suppression_honored(self, tmp_path):
        found = all_findings(tmp_path, {
            "repro/obs/spans.py": SPAN_OPENER,
            "repro/core/work.py": (
                "from repro.obs.spans import open_phase\n"
                "\n"
                "def work(obs):\n"
                "    span = open_phase(obs)"
                "  # repro: allow[obs-span-leak-interproc]\n"
                "    use(span)\n"
            ),
        }, rule=self.RULE)
        assert [f.suppressed for f in found] == [True]

    def test_caller_ending_span_not_flagged(self, tmp_path):
        found = live_findings(tmp_path, {
            "repro/obs/spans.py": SPAN_OPENER,
            "repro/core/work.py": (
                "from repro.obs.spans import open_phase\n"
                "\n"
                "def work(obs):\n"
                "    span = open_phase(obs)\n"
                "    obs.end_span(span)\n"
            ),
        }, rule=self.RULE)
        assert found == []

    def test_caller_returning_span_not_flagged(self, tmp_path):
        found = live_findings(tmp_path, {
            "repro/obs/spans.py": SPAN_OPENER,
            "repro/core/work.py": (
                "from repro.obs.spans import open_phase\n"
                "\n"
                "def work(obs):\n"
                "    return open_phase(obs)\n"
            ),
        }, rule=self.RULE)
        assert found == []


# ---------------------------------------------------------------------------
# the content-hash cache
# ---------------------------------------------------------------------------

CACHE_FILES = {
    "repro/fleet/clock.py": DET_CLOCK,
    "repro/core/run.py": (
        "from repro.fleet.clock import wall_now\n"
        "\n"
        "def kickoff(sim):\n"
        "    t = wall_now()\n"
        "    sim.schedule(t, None)\n"
    ),
}


class TestLintCache:
    def test_warm_run_hits_and_matches_cold(self, tmp_path):
        src = write_project(tmp_path, CACHE_FILES)
        cache = tmp_path / "cache.json"
        cold = analyze_project([str(src)], cache_path=str(cache))
        assert cold.cache_misses == 2 and cold.cache_hits == 0
        warm = analyze_project([str(src)], cache_path=str(cache))
        assert warm.cache_hits == 2 and warm.cache_misses == 0
        assert [f.fingerprint() for f in warm.findings] == [
            f.fingerprint() for f in cold.findings
        ]
        # the interprocedural trace survives the round-trip
        tainted = [f for f in warm.findings if f.rule_id == "det-taint-flow"]
        assert tainted and tainted[0].trace

    def test_changed_file_invalidates_only_itself(self, tmp_path):
        src = write_project(tmp_path, CACHE_FILES)
        cache = tmp_path / "cache.json"
        analyze_project([str(src)], cache_path=str(cache))
        target = src / "repro/core/run.py"
        target.write_text(
            CACHE_FILES["repro/core/run.py"].replace(
                "sim.schedule(t, None)", "sim.schedule(0.0, None)"
            ),
            encoding="utf-8",
        )
        after = analyze_project([str(src)], cache_path=str(cache))
        assert after.cache_hits == 1 and after.cache_misses == 1
        assert not any(
            f.rule_id == "det-taint-flow" for f in after.findings
        )

    def test_schema_change_invalidates_everything(self, tmp_path):
        src = write_project(tmp_path, CACHE_FILES)
        cache = tmp_path / "cache.json"
        analyze_project([str(src)], cache_path=str(cache))
        narrowed = LintConfig(select=("det-taint-flow",))
        again = analyze_project(
            [str(src)], narrowed, cache_path=str(cache)
        )
        assert again.cache_misses == 2


# ---------------------------------------------------------------------------
# SARIF
# ---------------------------------------------------------------------------


class TestSarif:
    def report(self, tmp_path, files=None):
        src = write_project(tmp_path, files or CACHE_FILES)
        return build_report([str(src)])

    def test_envelope_and_rules(self, tmp_path):
        doc = json.loads(self.report(tmp_path).render("sarif"))
        assert doc["version"] == "2.1.0"
        assert "sarif-2.1.0" in doc["$schema"]
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "det-taint-flow" in rule_ids

    def test_result_carries_fingerprint_and_code_flow(self, tmp_path):
        doc = json.loads(self.report(tmp_path).render("sarif"))
        results = doc["runs"][0]["results"]
        flows = [r for r in results if r["ruleId"] == "det-taint-flow"]
        assert len(flows) == 1
        result = flows[0]
        assert result["partialFingerprints"]["reproLintFingerprint"]
        locations = result["codeFlows"][0]["threadFlows"][0]["locations"]
        assert len(locations) >= 2
        first = locations[0]["location"]["physicalLocation"]
        assert first["artifactLocation"]["uri"].endswith(
            "repro/fleet/clock.py"
        )

    def test_suppressed_finding_marked(self, tmp_path):
        files = dict(CACHE_FILES)
        files["repro/core/run.py"] = files["repro/core/run.py"].replace(
            "sim.schedule(t, None)",
            "sim.schedule(t, None)  # repro: allow[det-taint-flow] -- rig",
        )
        doc = json.loads(self.report(tmp_path, files).render("sarif"))
        suppressed = [
            r for r in doc["runs"][0]["results"] if r.get("suppressions")
        ]
        assert len(suppressed) == 1
        assert (
            suppressed[0]["suppressions"][0]["kind"] == "inSource"
        )


# ---------------------------------------------------------------------------
# CLI: --explain, --changed, --call-graph
# ---------------------------------------------------------------------------


class TestCliWholeProgram:
    def test_explain_prints_source_to_sink_path(
        self, tmp_path, monkeypatch, capsys
    ):
        src = write_project(tmp_path, CACHE_FILES)
        monkeypatch.chdir(tmp_path)
        code = main([
            str(src), "--no-baseline", "--explain", "det-taint-flow",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "source:" in out
        assert "time.time" in out
        assert "reaches sink" in out

    def test_call_graph_renders(self, tmp_path, monkeypatch, capsys):
        src = write_project(tmp_path, CACHE_FILES)
        monkeypatch.chdir(tmp_path)
        code = main([str(src), "--no-baseline", "--call-graph"])
        out = capsys.readouterr().out
        assert code == 0
        assert "repro.core.run.kickoff" in out
        assert "repro.fleet.clock.wall_now" in out

    def test_changed_filters_to_modified_files(
        self, tmp_path, monkeypatch, capsys
    ):
        src = write_project(tmp_path, {
            "repro/sim/one.py": "import time\nx = time.time()\n",
            "repro/sim/two.py": "import time\ny = time.time()\n",
        })
        monkeypatch.chdir(tmp_path)
        git = ["git", "-c", "user.email=t@t", "-c", "user.name=t"]
        subprocess.run(["git", "init", "-q"], cwd=tmp_path, check=True)
        subprocess.run(git + ["add", "."], cwd=tmp_path, check=True)
        subprocess.run(
            git + ["commit", "-qm", "seed"], cwd=tmp_path, check=True
        )
        two = src / "repro/sim/two.py"
        two.write_text(
            "import time\ny = time.time()\nz = time.time()\n",
            encoding="utf-8",
        )
        code = main([str(src), "--no-baseline", "--changed", "HEAD"])
        out = capsys.readouterr().out
        assert code == 1
        assert "two.py" in out
        assert "one.py" not in out

    def test_changed_with_no_modifications_exits_clean(
        self, tmp_path, monkeypatch, capsys
    ):
        src = write_project(tmp_path, {
            "repro/sim/one.py": "VALUE = 1\n",
        })
        monkeypatch.chdir(tmp_path)
        git = ["git", "-c", "user.email=t@t", "-c", "user.name=t"]
        subprocess.run(["git", "init", "-q"], cwd=tmp_path, check=True)
        subprocess.run(git + ["add", "."], cwd=tmp_path, check=True)
        subprocess.run(
            git + ["commit", "-qm", "seed"], cwd=tmp_path, check=True
        )
        code = main([str(src), "--no-baseline", "--changed", "HEAD"])
        assert code == 0
        assert "nothing to lint" in capsys.readouterr().out


class TestSelfscanBench:
    def test_cached_selfscan_at_least_3x_faster(self, tmp_path):
        # the ISSUE-level acceptance bar for the cache: a warm
        # content-hash run must beat the cold parse+fixpoint by >= 3x.
        # Quick mode scans the staticlint package itself, so the cold
        # side is real work, not fixture noise.
        from repro.perf.bench import bench_lint_selfscan

        result = bench_lint_selfscan(True, tmp_path)
        payload = result["lint.selfscan"]
        assert payload["primary"] == "speedup"
        assert payload["direction"] == "higher"
        assert payload["speedup"] >= 3.0, (
            f"cached self-scan only {payload['speedup']:.1f}x faster "
            f"(cold {payload['cold_ms']:.1f}ms, "
            f"cached {payload['cached_ms']:.1f}ms)"
        )
