"""Serial vs epoch-batched verification: the byte-identity contract.

``Verifier.verify_batch`` must be a pure wall-clock optimization: for
any sequence of reports, batching may only amortize the expected-digest
recomputation, never change a verdict, a detail string, or a
per-record verdict.  This file pins that contract three ways:

* **per mechanism** -- reports captured from real Table-1 scenario
  runs (on-demand, ERASMUS collections, SeED pushes), re-verified
  against fresh verifiers serially and batched, including runs under a
  ``FaultPlan`` with loss + timer drift and a mid-run
  ``Device.reset()`` brownout;
* **per algorithm** -- the served-verifier storm produces
  byte-identical verdict ledgers with batch on and off for sha256,
  sha512 and blake2b record digests;
* **golden** -- the smoke preset's canonical ledger is committed at
  ``tests/golden/vserver_ledger.jsonl``; both drain modes must
  reproduce it byte-for-byte (the CI load-test smoke job diffs the
  same artifact).
"""

from pathlib import Path

import pytest

from repro.core.tradeoff import ScenarioConfig
from repro.ra.erasmus import COLLECT_STREAM, verify_collections_batch
from repro.ra.seed import PUSH_STREAM, verify_pushes_batch
from repro.ra.verifier import Verifier
from repro.resilience.retry import RetryPolicy
from repro.scenario import Scenario
from repro.sim.engine import Simulator
from repro.units import MiB
from repro.vserver import ServiceConfig, build_service_scenario

GOLDEN_LEDGER = Path(__file__).parent / "golden" / "vserver_ledger.jsonl"

ON_DEMAND = ["smart", "all-lock", "dec-lock", "inc-lock", "smarm"]


def run_scenario(mechanism, malware="transient", faults=None, seed=5):
    """One small but real Table-1 run; returns the finished scenario."""
    config = ScenarioConfig(
        block_count=8,
        sim_block_size=MiB,
        request_at=1.0,
        horizon=24.0,
        smarm_rounds=3,
        erasmus_period=4.0,
    )
    retry = None
    if faults:
        retry = RetryPolicy(
            timeout=2.0, max_retries=4, backoff=1.5, max_timeout=8.0,
            jitter=0.1, seed=b"equiv-retry",
        )
    scenario = Scenario.build(
        mechanism,
        malware=malware,
        faults=faults,
        config=config,
        seed=seed,
        retry=retry,
        fault_seed=b"equiv-faults",
        malware_options={"block": 2, "infect_at": 2.0, "dwell": 3.0,
                         "rng_seed": seed},
    )
    if scenario.driver is not None:
        scenario.schedule_request(
            1.0, rounds=3 if mechanism == "smarm" else 1
        )
    elif scenario.collector is not None:
        scenario.schedule_collections(8.0, 2)
    scenario.sim.run(until=config.horizon)
    return scenario


def captured_reports(scenario):
    """The reports the run actually sent, plus their verify kwargs."""
    if scenario.seed_service is not None:
        reports = list(scenario.seed_service.reports_sent)
        kwargs = {"enforce_counter": True, "counter_stream": PUSH_STREAM}
    elif scenario.collector is not None:
        reports = [c.report for c in scenario.collector.collections]
        kwargs = {"enforce_counter": True,
                  "counter_stream": COLLECT_STREAM}
    else:
        reports = list(scenario.service.reports_sent)
        kwargs = {}
    return reports, kwargs


def fresh_verifier(source):
    """A new verifier enrolled with the same profiles, clean state."""
    sim = Simulator()
    fresh = Verifier(sim, name=f"{source.name}-reverify")
    for name, profile in source.devices.items():
        fresh.enroll(
            name,
            key=profile.key,
            reference=profile.reference,
            region_map={k: list(v) for k, v in profile.region_map.items()},
            mutable_blocks=profile.mutable_blocks,
        )
    return fresh


def signature(results):
    """Everything deterministic about a verification outcome."""
    return [
        (
            result.device,
            result.verdict.value,
            result.detail,
            [verdict.value for verdict in result.record_verdicts],
            result.verified_at,
        )
        for result in results
    ]


def assert_equivalent(scenario):
    reports, kwargs = captured_reports(scenario)
    assert reports, "scenario produced no reports to re-verify"
    serial = fresh_verifier(scenario.verifier)
    serial_results = [
        serial.verify_report(report, **kwargs) for report in reports
    ]
    batched = fresh_verifier(scenario.verifier)
    if scenario.seed_service is not None:
        batched_results = verify_pushes_batch(batched, reports)
    elif scenario.collector is not None:
        batched_results = verify_collections_batch(batched, reports)
    else:
        batched_results = batched.verify_batch(
            [(report, kwargs) for report in reports]
        )
    assert signature(batched_results) == signature(serial_results)
    return serial_results


class TestMechanismEquivalence:
    @pytest.mark.parametrize("mechanism", ON_DEMAND)
    def test_on_demand_reports(self, mechanism):
        scenario = run_scenario(mechanism)
        assert_equivalent(scenario)

    def test_erasmus_collections(self):
        scenario = run_scenario("erasmus")
        results = assert_equivalent(scenario)
        # history re-ships are where batching amortizes: make sure the
        # workload actually contains multi-record reports
        assert any(len(r.record_verdicts) > 1 for r in results)

    def test_seed_pushes(self):
        scenario = run_scenario("seed")
        assert_equivalent(scenario)

    def test_faulted_channel_with_loss_and_drift(self):
        scenario = run_scenario(
            "smart", faults="loss=0.25@0:12;drift=0.02@2"
        )
        assert_equivalent(scenario)

    def test_mid_run_brownout_reset(self):
        # Device.reset() wipes volatile attestation state mid-run; the
        # replayed/stale reports it provokes must classify identically
        # in both drain modes.
        scenario = run_scenario(
            "seed", faults="loss=0.2@0:10;reset@5"
        )
        assert scenario.device.reset_count > 0
        assert_equivalent(scenario)

    def test_batch_rejects_replays_like_serial(self):
        scenario = run_scenario("seed")
        reports, kwargs = captured_reports(scenario)
        doubled = reports + reports  # every report replayed once
        serial = fresh_verifier(scenario.verifier)
        serial_results = [
            serial.verify_report(report, **kwargs) for report in doubled
        ]
        batched = fresh_verifier(scenario.verifier)
        batched_results = verify_pushes_batch(batched, doubled)
        assert signature(batched_results) == signature(serial_results)
        assert any(
            result.verdict.value == "replay" for result in batched_results
        )


def service_ledger(algorithm, batch, provers=12):
    config = ServiceConfig.parse(
        f"preset=smoke;provers={provers};algorithm={algorithm};"
        f"batch={'on' if batch else 'off'}"
    )
    scenario = build_service_scenario(config)
    scenario.run()
    assert scenario.server.unaccounted == 0
    return scenario.ledger_lines()


class TestServiceLedgerIdentity:
    @pytest.mark.parametrize(
        "algorithm", ["sha256", "sha512", "blake2b"]
    )
    def test_batched_equals_serial_per_algorithm(self, algorithm):
        batched = service_ledger(algorithm, batch=True)
        serial = service_ledger(algorithm, batch=False)
        assert batched == serial
        assert any('"status":"verified"' in line for line in batched)

    def test_golden_smoke_ledger_both_modes(self):
        golden = GOLDEN_LEDGER.read_text(encoding="utf-8").splitlines()
        for batch in (True, False):
            config = ServiceConfig.parse(
                f"preset=smoke;batch={'on' if batch else 'off'}"
            )
            scenario = build_service_scenario(config)
            scenario.run()
            assert scenario.ledger_lines() == golden, (
                f"smoke ledger diverged from golden (batch={batch})"
            )
