"""The measurement process MP: traversal, records, interruption."""

import pytest

from repro.errors import ConfigurationError
from repro.malware.observer import MeasurementObserver
from repro.ra.locking import AllLock
from repro.ra.measurement import (
    MeasurementConfig,
    MeasurementProcess,
    derive_order_seed,
    expected_digest,
    traversal_order,
)
from repro.sim.device import Device
from repro.sim.engine import Simulator
from repro.sim.task import PeriodicTask


def run_measurement(device, config, nonce=b"n", counter=1, until=100.0):
    mp = MeasurementProcess(device, config, nonce=nonce, counter=counter,
                            mechanism="test")
    device.cpu.spawn("mp", mp.run, priority=config.priority)
    device.sim.run(until=until)
    assert mp.record is not None
    return mp.record


def make_device(block_count=8, **kwargs):
    sim = Simulator()
    device = Device(sim, block_count=block_count, block_size=32, **kwargs)
    return device


class TestOrderDerivation:
    def test_sequential_order(self):
        assert traversal_order([0, 1, 2], "sequential", b"") == [0, 1, 2]

    def test_shuffled_order_is_permutation(self):
        order = traversal_order(list(range(32)), "shuffled", b"seed")
        assert sorted(order) == list(range(32))
        assert order != list(range(32))  # 1/32! chance of flaking

    def test_shuffled_order_deterministic_per_seed(self):
        blocks = list(range(16))
        assert traversal_order(blocks, "shuffled", b"s") == traversal_order(
            blocks, "shuffled", b"s"
        )

    def test_order_seed_depends_on_everything(self):
        base = derive_order_seed(b"key", b"nonce", 1)
        assert base != derive_order_seed(b"other", b"nonce", 1)
        assert base != derive_order_seed(b"key", b"other", 1)
        assert base != derive_order_seed(b"key", b"nonce", 2)


class TestRecordContents:
    def test_digest_matches_expected_digest(self):
        device = make_device()
        config = MeasurementConfig(algorithm="sha256")
        record = run_measurement(device, config, nonce=b"nonce")
        expected = expected_digest(
            device.attestation_key,
            list(device.memory.benign_image()),
            "sha256",
            b"nonce",
            1,
            list(range(device.block_count)),
            "sequential",
            b"",
        )
        assert record.digest == expected

    def test_shuffled_digest_recomputable(self):
        device = make_device()
        config = MeasurementConfig(order="shuffled")
        record = run_measurement(device, config, nonce=b"abc")
        assert record.order_seed == derive_order_seed(
            device.attestation_key, b"abc", 1
        )
        expected = expected_digest(
            device.attestation_key,
            list(device.memory.benign_image()),
            record.algorithm,
            record.nonce,
            record.counter,
            list(range(device.block_count)),
            "shuffled",
            record.order_seed,
        )
        assert record.digest == expected

    def test_timing_fields(self):
        device = make_device(sim_block_size=1024 * 1024)
        record = run_measurement(device, MeasurementConfig())
        per_block = device.block_measure_time("blake2s")
        assert record.duration >= per_block * device.block_count
        assert record.t_end > record.t_start

    def test_audit_fields_populated(self):
        device = make_device()
        record = run_measurement(device, MeasurementConfig())
        assert len(record.audit_block_times) == device.block_count
        assert all(t >= 0 for t in record.audit_block_times)
        assert all(h for h in record.audit_block_hashes)

    def test_audit_times_monotone_in_sequential_order(self):
        device = make_device()
        record = run_measurement(device, MeasurementConfig())
        times = list(record.audit_block_times)
        assert times == sorted(times)

    def test_process_result_is_record(self):
        device = make_device()
        config = MeasurementConfig()
        mp = MeasurementProcess(device, config, nonce=b"n")
        proc = device.cpu.spawn("mp", mp.run, priority=50)
        device.sim.run(until=100)
        assert proc.result is mp.record


class TestRegions:
    def test_region_restriction(self):
        device = make_device()
        device.standard_layout()
        config = MeasurementConfig(region="code")
        record = run_measurement(device, config)
        code = device.memory.regions["code"]
        assert record.block_count == code.length
        assert record.region == "code"
        # Only code blocks have audit entries.
        measured = [
            i for i, t in enumerate(record.audit_block_times) if t >= 0
        ]
        assert measured == list(code.blocks())

    def test_unknown_region_rejected(self):
        device = make_device()
        config = MeasurementConfig(region="ghost")
        mp = MeasurementProcess(device, config, nonce=b"n")
        device.cpu.spawn("mp", mp.run, priority=50)
        with pytest.raises(ConfigurationError):
            device.sim.run(until=10)


class TestNormalization:
    def test_normalized_digest_ignores_data_writes(self):
        device = make_device()
        device.standard_layout()
        data_block = device.memory.regions["data"].start
        device.memory.write(data_block, b"\x77" * 32, "app")
        config = MeasurementConfig(normalize_mutable=True)
        record = run_measurement(device, config, nonce=b"z")
        reference = list(device.memory.benign_image())
        mutable = frozenset(device.memory.regions["data"].blocks())
        expected = expected_digest(
            device.attestation_key, reference, record.algorithm,
            b"z", 1, list(range(device.block_count)), "sequential", b"",
            normalized_blocks=mutable,
        )
        assert record.digest == expected
        assert record.normalized

    def test_unnormalized_digest_sees_data_writes(self):
        device = make_device()
        device.standard_layout()
        data_block = device.memory.regions["data"].start
        device.memory.write(data_block, b"\x77" * 32, "app")
        record = run_measurement(device, MeasurementConfig(), nonce=b"z")
        expected_clean = expected_digest(
            device.attestation_key,
            list(device.memory.benign_image()),
            record.algorithm, b"z", 1,
            list(range(device.block_count)), "sequential", b"",
        )
        assert record.digest != expected_clean

    def test_normalization_does_not_hide_code_changes(self):
        device = make_device()
        device.standard_layout()
        device.memory.write(0, b"\x66" * 32, "malware")  # code block
        config = MeasurementConfig(normalize_mutable=True)
        record = run_measurement(device, config, nonce=b"z")
        reference = list(device.memory.benign_image())
        mutable = frozenset(device.memory.regions["data"].blocks())
        clean = expected_digest(
            device.attestation_key, reference, record.algorithm,
            b"z", 1, list(range(device.block_count)), "sequential", b"",
            normalized_blocks=mutable,
        )
        assert record.digest != clean


class TestInterruption:
    def test_atomic_mp_never_interrupted(self):
        device = make_device(sim_block_size=4 * 1024 * 1024)
        PeriodicTask(device.cpu, "task", period=0.05, wcet=0.001,
                     priority=100)
        config = MeasurementConfig(atomic=True)
        record = run_measurement(device, config)
        assert record.interruptions == 0

    def test_interruptible_mp_preempted_by_task(self):
        device = make_device(sim_block_size=4 * 1024 * 1024)
        PeriodicTask(device.cpu, "task", period=0.05, wcet=0.001,
                     priority=100)
        config = MeasurementConfig(atomic=False, priority=50)
        record = run_measurement(device, config)
        assert record.interruptions > 0

    def test_lock_ops_extend_duration(self):
        device = make_device()
        plain = run_measurement(make_device(), MeasurementConfig())
        locked = run_measurement(
            device, MeasurementConfig(locking=AllLock())
        )
        assert locked.duration > plain.duration


class TestMalwareVisibility:
    def test_observer_sees_progress_counts_only(self):
        device = make_device()
        observer = MeasurementObserver(device)
        run_measurement(device, MeasurementConfig(order="shuffled"))
        events = observer.progress_events()
        assert [e.progress for e in events] == list(
            range(1, device.block_count + 1)
        )
        # Nothing in the event reveals which block was measured.
        assert not hasattr(events[0], "block_index")

    def test_atomic_flag_visible_to_malware(self):
        device = make_device()
        observer = MeasurementObserver(device)
        run_measurement(device, MeasurementConfig(atomic=True))
        assert all(not e.interruptible for e in observer.starts())

    def test_notifications_suppressed_when_configured(self):
        device = make_device()
        observer = MeasurementObserver(device)
        run_measurement(device, MeasurementConfig(notify_malware=False))
        assert observer.events == []


class TestConfigValidation:
    def test_bad_order_rejected(self):
        with pytest.raises(ConfigurationError):
            MeasurementConfig(order="spiral")

    def test_negative_release_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            MeasurementConfig(release_delay=-1.0)
