"""Every shipped example must run clean (they contain assertions of
their own headline claims)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_present():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 7


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip()  # examples narrate what they show
