"""Incremental fleet campaigns: fingerprinting, the result store, and
byte-identical artifact reuse.

``--incremental`` is only safe because three layers agree: the source
fingerprint pins the code tree, ``RunResultStore.cached`` refuses
anything but prior *ok* results under a matching fingerprint, and
``cache_hit`` stays volatile so reused results serialize exactly as
freshly computed ones.
"""

import json

import pytest

from repro import fleet
from repro.fleet.campaign import RunSpec
from repro.fleet.results import (
    CampaignManifest,
    artifact_paths,
    read_manifest,
    summarize,
    write_artifacts,
)
from repro.fleet.store import RunResultStore, source_fingerprint
from repro.fleet.telemetry import (
    STATUS_ERROR,
    VOLATILE_FIELDS,
    RunResult,
)


# -- source fingerprint ----------------------------------------------------


class TestSourceFingerprint:
    def make_tree(self, tmp_path, contents):
        for name, text in contents.items():
            path = tmp_path / name
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text, encoding="utf-8")

    def test_deterministic(self, tmp_path):
        self.make_tree(tmp_path, {"a.py": "x = 1\n", "sub/b.py": "y = 2\n"})
        assert source_fingerprint(tmp_path) == source_fingerprint(tmp_path)

    def test_content_change_changes_fingerprint(self, tmp_path):
        self.make_tree(tmp_path, {"a.py": "x = 1\n"})
        before = source_fingerprint(tmp_path)
        (tmp_path / "a.py").write_text("x = 2\n", encoding="utf-8")
        assert source_fingerprint(tmp_path) != before

    def test_path_change_changes_fingerprint(self, tmp_path):
        self.make_tree(tmp_path, {"a.py": "x = 1\n"})
        before = source_fingerprint(tmp_path)
        (tmp_path / "a.py").rename(tmp_path / "b.py")
        assert source_fingerprint(tmp_path) != before

    def test_non_python_files_ignored(self, tmp_path):
        self.make_tree(tmp_path, {"a.py": "x = 1\n"})
        before = source_fingerprint(tmp_path)
        (tmp_path / "notes.md").write_text("irrelevant", encoding="utf-8")
        assert source_fingerprint(tmp_path) == before

    def test_default_root_is_repro_package(self):
        assert len(source_fingerprint()) == 64


# -- RunResultStore partitioning ------------------------------------------


def result_for(spec, status="ok"):
    return RunResult(run_id=spec.run_id, spec=spec.to_dict(), status=status)


@pytest.fixture
def specs():
    return [
        RunSpec(campaign="inc-test", mechanism="smart", seed=s)
        for s in range(3)
    ]


@pytest.fixture
def campaign_dir(tmp_path, specs):
    campaign = fleet.canned_campaign("faults", seed_count=1)
    campaign.name = "inc-test"
    results = [result_for(spec) for spec in specs]
    write_artifacts(tmp_path, campaign, results,
                    code_fingerprint="fp-current")
    return tmp_path


class TestRunResultStore:
    def test_empty_store_runs_everything(self, tmp_path, specs):
        store = RunResultStore(tmp_path, "inc-test")
        hits, pending = store.cached(specs, "fp-current")
        assert hits == [] and pending == specs
        assert len(store) == 0

    def test_fingerprint_mismatch_runs_everything(self, campaign_dir, specs):
        store = RunResultStore(campaign_dir, "inc-test")
        hits, pending = store.cached(specs, "fp-other")
        assert hits == [] and len(pending) == 3

    def test_empty_fingerprint_never_hits(self, campaign_dir, specs):
        store = RunResultStore(campaign_dir, "inc-test")
        hits, pending = store.cached(specs, "")
        assert hits == [] and len(pending) == 3

    def test_matching_store_hits_and_marks(self, campaign_dir, specs):
        store = RunResultStore(campaign_dir, "inc-test")
        assert len(store) == 3
        assert store.code_fingerprint == "fp-current"
        hits, pending = store.cached(specs, "fp-current")
        assert len(hits) == 3 and pending == []
        assert all(hit.cache_hit for hit in hits)

    def test_failed_results_rerun(self, tmp_path, specs):
        campaign = fleet.canned_campaign("faults", seed_count=1)
        campaign.name = "inc-test"
        results = [result_for(specs[0]),
                   result_for(specs[1], status=STATUS_ERROR)]
        write_artifacts(tmp_path, campaign, results,
                        code_fingerprint="fp-current")
        store = RunResultStore(tmp_path, "inc-test")
        hits, pending = store.cached(specs, "fp-current")
        assert [hit.run_id for hit in hits] == [specs[0].run_id]
        # the failed run and the never-run spec both re-execute
        assert {spec.run_id for spec in pending} == {
            specs[1].run_id, specs[2].run_id,
        }


# -- serialization invariants ---------------------------------------------


class TestVolatility:
    def test_cache_hit_is_volatile(self):
        assert "cache_hit" in VOLATILE_FIELDS
        spec = RunSpec(campaign="v", seed=1)
        fresh = result_for(spec)
        reused = result_for(spec)
        reused.cache_hit = True
        assert fresh.to_json_line() == reused.to_json_line()

    def test_manifest_from_dict_tolerates_old_and_new_keys(self):
        old = CampaignManifest(
            version=1, campaign="c", spec_hash="h", run_count=0,
            status_counts={}, mode="serial", workers=1, shard_count=1,
            degraded_shards=0, wall_clock=0.0, created_at=0.0,
            artifacts={},
        ).to_dict()
        old.pop("code_fingerprint")
        old.pop("cache_hits")
        old["future_key"] = "ignored"
        manifest = CampaignManifest.from_dict(old)
        assert manifest.code_fingerprint == ""
        assert manifest.cache_hits == 0

    def test_summary_counts_hits_but_omits_from_dict(self):
        spec = RunSpec(campaign="v", seed=1)
        hit = result_for(spec)
        hit.cache_hit = True
        summary = summarize([hit, result_for(RunSpec(campaign="v", seed=2))],
                            campaign="v")
        groups = [g for g in summary.groups.values() if g.cache_hits]
        assert groups and groups[0].cache_hits == 1
        payload = json.dumps(summary.to_dict())
        assert "cache_hits" not in payload


# -- end-to-end: real campaign, incremental rerun -------------------------


class TestEndToEnd:
    def test_incremental_rerun_is_identical_and_skips_all(self, tmp_path):
        campaign = fleet.canned_campaign("faults", seed_count=1)
        specs = campaign.plan()[:2]
        config = fleet.ExecutorConfig(mode="serial")
        fingerprint = fleet.source_fingerprint()

        report = fleet.execute_campaign(specs, config)
        paths = fleet.write_artifacts(tmp_path, campaign, report.results,
                                      report, code_fingerprint=fingerprint)
        runs_before = paths.runs.read_bytes()
        summary_before = paths.summary_json.read_bytes()

        store = RunResultStore(tmp_path, campaign.name)
        hits, pending = store.cached(specs, fingerprint)
        assert len(hits) == len(specs) and pending == []
        report2 = fleet.execute_campaign(pending, config)
        fleet.write_artifacts(tmp_path, campaign, hits + report2.results,
                              report2, code_fingerprint=fingerprint)

        assert paths.runs.read_bytes() == runs_before
        assert paths.summary_json.read_bytes() == summary_before
        manifest = read_manifest(paths.manifest)
        assert manifest.cache_hits == len(specs)
        assert manifest.code_fingerprint == fingerprint

    def test_manifest_always_carries_fingerprint(self, tmp_path):
        """Plain (non-incremental) artifact writes stamp the fingerprint
        too, so any prior out-dir seeds a later --incremental pass."""
        campaign = fleet.canned_campaign("faults", seed_count=1)
        specs = campaign.plan()[:1]
        report = fleet.execute_campaign(
            specs, fleet.ExecutorConfig(mode="serial")
        )
        paths = fleet.write_artifacts(tmp_path, campaign, report.results,
                                      report)
        manifest = read_manifest(paths.manifest)
        assert manifest.code_fingerprint == fleet.source_fingerprint()
