"""Edge cases not covered by the module-focused suites."""

import pytest

from repro.ra.locking import make_policy
from repro.ra.measurement import MeasurementConfig, MeasurementProcess
from repro.ra.verifier import Verifier
from repro.sim.device import Device
from repro.sim.engine import Simulator
from repro.sim.network import Channel


class TestReleaseTrace:
    def test_extended_lock_release_traced(self):
        sim = Simulator()
        device = Device(sim, block_count=6, block_size=16)
        config = MeasurementConfig(
            locking=make_policy("all-lock-ext"), release_delay=2.0,
        )
        mp = MeasurementProcess(device, config, nonce=b"n")
        device.cpu.spawn("mp", mp.run, priority=50)
        sim.run(until=30)
        release = device.trace.first("mp.release")
        assert release is not None
        assert release.time == pytest.approx(mp.record.t_release)


class TestChannelTrace:
    def test_sends_and_drops_recorded(self):
        from repro.sim.trace import Trace
        from repro.sim.network import DropAdversary

        sim = Simulator()
        trace = Trace()
        channel = Channel(sim, latency=0.01, trace=trace)
        channel.add_filter(
            DropAdversary(probability=1.0, kind="secret",
                          base_latency=0.01)
        )
        a = channel.make_endpoint("a")
        channel.make_endpoint("b")
        a.send("b", "hello", None)
        a.send("b", "secret", None)
        sim.run()
        assert len(trace.filter(kind="net.send")) == 1
        assert len(trace.filter(kind="net.drop")) == 1


class TestVerifierDetails:
    def test_nonce_length_parameter(self):
        sim = Simulator()
        device = Device(sim, block_count=4, block_size=16)
        verifier = Verifier(sim)
        verifier.enroll(device)
        assert len(verifier.new_nonce(device.name, length=24)) == 24
        profile = verifier.profile(device.name)
        assert profile.outstanding_nonce is not None

    def test_trace_hook_records_verdicts(self):
        from repro.ra.report import AttestationReport
        from repro.sim.trace import Trace

        sim = Simulator()
        device = Device(sim, block_count=4, block_size=16)
        trace = Trace()
        verifier = Verifier(sim, trace=trace)
        verifier.enroll(device)
        report = AttestationReport.authenticate(
            device.attestation_key, device.name, []
        )
        verifier.verify_report(report)
        assert len(trace.filter(kind="vrf.verdict")) == 1


class TestMemoryClockDefault:
    def test_unwired_memory_timestamps_zero(self):
        from repro.sim.memory import Memory

        memory = Memory(4, 16)
        memory.write(0, b"\x00" * 16, "w")
        assert memory.write_log[0].time == 0.0


class TestInterRoundGap:
    def test_smarm_rounds_spaced_by_gap(self):
        from repro.ra.service import AttestationService, OnDemandVerifier

        sim = Simulator()
        device = Device(sim, block_count=8, block_size=16)
        channel = Channel(sim, latency=0.002)
        device.attach_network(channel)
        verifier = Verifier(sim)
        verifier.enroll(device)
        service = AttestationService(
            device,
            MeasurementConfig(order="shuffled", priority=50),
            mechanism="smarm",
            inter_round_gap=0.5,
        )
        service.install()
        driver = OnDemandVerifier(verifier, channel)
        exchange = driver.request(device.name, rounds=3)
        sim.run(until=60)
        records = exchange.report.records
        for earlier, later in zip(records, records[1:]):
            assert later.t_start - earlier.t_end >= 0.5 - 1e-9


class TestUpdateServiceGuards:
    def test_needs_nic(self):
        from repro.errors import ConfigurationError
        from repro.ra.update import UpdateService

        sim = Simulator()
        device = Device(sim, block_count=4, block_size=16)
        with pytest.raises(ConfigurationError):
            UpdateService(device)


class TestSwarmResultQueries:
    def test_result_for_unknown_nonce(self):
        from repro.ra.verifier import Verifier as Vrf
        from repro.swarm import SwarmAttestation, make_topology

        sim = Simulator()
        topology = make_topology(sim, count=3, shape="star")
        swarm = SwarmAttestation(topology, Vrf(sim))
        assert swarm.result_for(b"nope") is None
