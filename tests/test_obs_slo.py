"""Sim-time SLO engine: DSL validation, multi-window burn-rate alert
semantics on engineered traffic, and byte-level determinism of the
summary under the seeded storm (via the fleet's ``RunSpec.slo`` axis).
"""

import pytest

from repro.errors import ConfigurationError
from repro.obs.core import Observability
from repro.obs.slo import (
    SLO_PRESETS,
    SLObjective,
    SLOEngine,
    parse_objectives,
)
from repro.sim.engine import Simulator


class TestDsl:
    def test_latency_clause(self):
        (obj,) = parse_objectives("latency:ra.round_trip.latency<0.5@0.99")
        assert obj.kind == "latency"
        assert obj.source == "ra.round_trip.latency"
        assert obj.threshold == 0.5
        assert obj.target == 0.99

    def test_ratio_clause_with_windows(self):
        (obj,) = parse_objectives(
            "ratio:vserver.verified/vserver.admitted@0.95!1/5"
        )
        assert obj.kind == "ratio"
        assert obj.source == "vserver.verified"
        assert obj.total_source == "vserver.admitted"
        assert (obj.short_window, obj.long_window) == (1.0, 5.0)

    def test_probe_clause(self):
        (obj,) = parse_objectives("probe:deadline@0.999")
        assert obj.kind == "probe"
        assert obj.source == "deadline"

    def test_window_suffix_default_long(self):
        (obj,) = parse_objectives("probe:deadline@0.9!2")
        assert (obj.short_window, obj.long_window) == (2.0, 10.0)

    def test_preset_expansion(self):
        objectives = parse_objectives("firealarm")
        assert [o.kind for o in objectives] == ["latency", "probe"]
        # every shipped preset must itself parse
        for name in SLO_PRESETS:
            assert parse_objectives(name)

    def test_preset_mixed_with_clause(self):
        objectives = parse_objectives("exchange,probe:deadline@0.99")
        assert len(objectives) == 2

    @pytest.mark.parametrize("junk", [
        "",
        "latency:x<0.5",              # missing @target
        "latency:x@0.99",             # missing <threshold
        "latency:x<banana@0.99",      # bad threshold
        "ratio:x@0.9",                # missing /total
        "probe:deadline@1.5",         # target out of (0,1)
        "probe:deadline@0.9!0/5",     # zero short window
        "probe:deadline@0.9!5/1",     # long < short
        "gauge:x@0.9",                # unknown kind
        "probe:d@0.9,probe:d@0.8",    # duplicate objective
        "deadline@0.9",               # kind:source missing
    ])
    def test_junk_rejected(self, junk):
        with pytest.raises(ConfigurationError):
            parse_objectives(junk)

    def test_objective_validation(self):
        with pytest.raises(ConfigurationError):
            SLObjective(name="x", kind="weird", target=0.9, source="x")
        with pytest.raises(ConfigurationError):
            SLObjective(name="x", kind="ratio", target=0.9, source="x")
        with pytest.raises(ConfigurationError):
            SLObjective(name="x", kind="latency", target=0.9, source="x")


def engineered_run(good_gap_start=4.0, good_gap_end=8.0, horizon=12.0):
    """One seeded run: a request counter ticks every 0.25s; inside the
    gap window every request is bad, outside every request is good.
    Returns (engine, obs) after the run."""
    obs = Observability.enabled()
    sim = Simulator(obs=obs)
    good = obs.metrics.counter("svc.good", "good requests")
    total = obs.metrics.counter("svc.total", "all requests")

    def request() -> None:
        total.inc()
        if not good_gap_start <= sim.now < good_gap_end:
            good.inc()
        if sim.now + 0.25 <= horizon:
            sim.schedule(0.25, request)

    sim.schedule(0.25, request)
    engine = SLOEngine(
        obs, parse_objectives("ratio:svc.good/svc.total@0.9!1/5")
    )
    engine.attach(sim, until=horizon)
    sim.run(until=horizon)
    return engine, obs


class TestBurnRateAlerts:
    def test_alert_fires_and_resolves_on_engineered_burn(self):
        """100% errors against a 10% budget is a 10x burn -- both
        windows cross the 2x threshold once the long window fills, and
        the alert resolves after the traffic heals."""
        engine, obs = engineered_run()
        transitions = [a["transition"] for a in engine.alerts]
        assert "firing" in transitions
        assert "resolved" in transitions
        firing = next(a for a in engine.alerts if a["transition"] == "firing")
        assert firing["objective"] == "svc.good"
        assert firing["burn_short"] >= 2.0
        assert firing["burn_long"] >= 2.0
        # the alert fires inside (or just after) the bad window, never
        # before traffic went bad
        assert firing["at"] >= 4.0

    def test_alerts_are_first_class_spans(self):
        engine, obs = engineered_run()
        alert_spans = [s for s in obs.spans if s.category == "slo"]
        assert len(alert_spans) == len(engine.alerts)
        span = alert_spans[0]
        assert span.name == "slo.alert.svc.good"
        assert span.start == span.end  # instantaneous event
        assert span.args["transition"] == "firing"
        assert span.args["target"] == 0.9

    def test_healthy_traffic_never_alerts(self):
        engine, _ = engineered_run(good_gap_start=99.0, good_gap_end=99.0)
        assert engine.alerts == []
        summary = engine.summary()
        objective = summary["objectives"]["svc.good"]
        assert objective["met"] is True
        assert objective["compliance"] == 1.0
        assert objective["alerts"] == 0

    def test_summary_reports_compliance_and_worst_burn(self):
        engine, _ = engineered_run()
        objective = engine.summary()["objectives"]["svc.good"]
        assert objective["kind"] == "ratio"
        assert 0.0 < objective["compliance"] < 1.0
        assert objective["worst_burn_short"] >= 2.0
        assert objective["alerts"] >= 1

    def test_deterministic_across_identical_runs(self):
        first, _ = engineered_run()
        second, _ = engineered_run()
        assert first.alerts == second.alerts
        assert first.summary() == second.summary()

    def test_probe_objective(self):
        """Probes bridge sim-state the registry does not carry."""
        obs = Observability.enabled()
        sim = Simulator(obs=obs)
        state = {"good": 0, "total": 0}

        def job() -> None:
            state["total"] += 1
            if state["total"] % 4:  # every 4th job misses its deadline
                state["good"] += 1
            if sim.now + 0.2 <= 10.0:
                sim.schedule(0.2, job)

        sim.schedule(0.2, job)
        engine = SLOEngine(obs, parse_objectives("probe:deadline@0.99"))
        engine.register_probe(
            "deadline", lambda: (state["good"], state["total"])
        )
        engine.attach(sim, until=10.0)
        sim.run(until=10.0)
        objective = engine.summary()["objectives"]["deadline"]
        assert objective["total"] == state["total"]
        assert objective["met"] is False  # 75% << 99%
        assert engine.alerts and engine.alerts[0]["transition"] == "firing"

    def test_engine_requires_objectives_and_sane_interval(self):
        obs = Observability.enabled()
        with pytest.raises(ConfigurationError):
            SLOEngine(obs, ())
        with pytest.raises(ConfigurationError):
            SLOEngine(
                obs, parse_objectives("probe:d@0.9"), interval=0.0
            )


class TestFleetIntegration:
    def test_runspec_slo_validates_at_construction(self):
        from repro.fleet.campaign import RunSpec

        with pytest.raises(ConfigurationError):
            RunSpec(mechanism="smart", adversary="none", slo="nope@bad")

    def test_runspec_slo_axis_is_identity_stable(self):
        """An empty slo axis serializes to nothing -- pre-existing
        run_ids (and therefore golden artifacts) are unchanged."""
        from repro.fleet.campaign import RunSpec

        bare = RunSpec(mechanism="smart", adversary="none")
        assert "slo" not in bare.to_dict()
        armed = bare.with_overrides(slo="firealarm")
        assert armed.to_dict()["slo"] == "firealarm"
        assert armed.run_id != bare.run_id

    def test_seeded_storm_alerts_deterministically(self):
        """The same spec executes twice to byte-identical results,
        SLO summary included -- burn-rate alerts are simulation facts,
        not wall-clock ones."""
        from repro.fleet import canned_campaign
        from repro.fleet.executor import execute_run

        spec = canned_campaign("faults", seed_count=1).plan()[0]
        spec = spec.with_overrides(slo="exchange,probe:deadline@0.999")

        def run_once():
            return execute_run(spec, obs=Observability.enabled())

        first, second = run_once(), run_once()
        assert first.slo
        assert first.slo == second.slo
        assert first.to_json_line() == second.to_json_line()
        for objective in first.slo["objectives"].values():
            assert set(objective) >= {
                "compliance", "met", "alerts", "firing",
            }
