"""LISA-alpha: per-device swarm attestation and the QoSA trade."""

import pytest

from repro.malware.transient import TransientMalware
from repro.ra.report import Verdict
from repro.ra.verifier import Verifier
from repro.sim.engine import Simulator
from repro.swarm import (
    LisaAlphaAttestation,
    SwarmAttestation,
    make_topology,
)


def lisa_rig(count=7, shape="tree"):
    sim = Simulator()
    topology = make_topology(sim, count=count, shape=shape)
    verifier = Verifier(sim)
    lisa = LisaAlphaAttestation(topology, verifier)
    return sim, topology, verifier, lisa


class TestLisaAlpha:
    def test_all_devices_report_individually(self):
        sim, topology, verifier, lisa = lisa_rig()
        nonce = lisa.attest()
        sim.run(until=30)
        result = lisa.result_for(nonce)
        assert result.complete
        assert set(result.per_device) == {
            device.name for device in topology.devices
        }
        assert result.healthy_count == 7

    def test_per_device_verdicts(self):
        sim, topology, verifier, lisa = lisa_rig()
        TransientMalware(topology.devices[3], target_block=3,
                         infect_at=0.0, name="m3")
        TransientMalware(topology.devices[6], target_block=3,
                         infect_at=0.0, name="m6")
        nonce = lisa.attest()
        sim.run(until=30)
        result = lisa.result_for(nonce)
        assert result.dirty_nodes == ["node3", "node6"]
        assert result.per_device["node3"] is Verdict.COMPROMISED
        assert result.per_device["node0"] is Verdict.HEALTHY

    def test_flood_duplicates_ignored(self):
        """On a random (cyclic) topology the attest flood may revisit
        nodes; each node must measure exactly once per nonce."""
        pytest.importorskip("networkx")
        sim, topology, verifier, lisa = lisa_rig(count=8, shape="random")
        nonce = lisa.attest()
        sim.run(until=30)
        result = lisa.result_for(nonce)
        assert result.complete
        assert result.healthy_count == 8

    def test_offline_node_leaves_round_incomplete(self):
        sim, topology, verifier, lisa = lisa_rig()
        lisa.nodes[5].online = False
        nonce = lisa.attest()
        sim.run(until=30)
        result = lisa.result_for(nonce)
        assert not result.complete
        assert "node5" not in result.per_device

    def test_successive_rounds_independent(self):
        sim, topology, verifier, lisa = lisa_rig(count=4, shape="star")
        first = lisa.attest()
        sim.run(until=20)
        second = lisa.attest()
        sim.run(until=40)
        assert lisa.result_for(first).complete
        assert lisa.result_for(second).complete


class TestQosaTrade:
    """LISA-alpha vs the aggregated (LISA-s / SEDA flavour) protocol:
    more information costs more traffic."""

    def run_both(self, count=15):
        # LISA-alpha
        sim_a = Simulator()
        topo_a = make_topology(sim_a, count=count, shape="tree")
        vrf_a = Verifier(sim_a)
        lisa = LisaAlphaAttestation(topo_a, vrf_a)
        nonce_a = lisa.attest()
        sim_a.run(until=60)
        alpha_result = lisa.result_for(nonce_a)
        alpha_messages = len(topo_a.channel.log)

        # aggregated
        sim_s = Simulator()
        topo_s = make_topology(sim_s, count=count, shape="tree")
        vrf_s = Verifier(sim_s)
        swarm = SwarmAttestation(topo_s, vrf_s)
        nonce_s = swarm.attest()
        sim_s.run(until=60)
        agg_result = swarm.result_for(nonce_s)
        agg_messages = len(topo_s.channel.log)
        return (alpha_result, alpha_messages), (agg_result, agg_messages)

    def test_alpha_carries_more_information(self):
        (alpha, _), (agg, _) = self.run_both()
        # Alpha: a full per-device verdict map.  Aggregated: counts
        # (our implementation also names dirty nodes, but each node's
        # *individual authenticated report* only exists under alpha).
        assert len(alpha.per_device) == 15
        assert agg.healthy == alpha.healthy_count

    def test_alpha_costs_more_messages(self):
        (_, alpha_messages), (_, agg_messages) = self.run_both()
        assert alpha_messages > agg_messages

    def test_both_agree_on_dirty_nodes(self):
        sim_a = Simulator()
        topo_a = make_topology(sim_a, count=7, shape="tree")
        vrf_a = Verifier(sim_a)
        lisa = LisaAlphaAttestation(topo_a, vrf_a)
        TransientMalware(topo_a.devices[2], target_block=3,
                         infect_at=0.0)
        nonce = lisa.attest()
        sim_a.run(until=30)

        sim_s = Simulator()
        topo_s = make_topology(sim_s, count=7, shape="tree")
        vrf_s = Verifier(sim_s)
        swarm = SwarmAttestation(topo_s, vrf_s)
        TransientMalware(topo_s.devices[2], target_block=3,
                         infect_at=0.0)
        nonce_s = swarm.attest()
        sim_s.run(until=30)

        assert lisa.result_for(nonce).dirty_nodes == ["node2"]
        assert swarm.result_for(nonce_s).dirty_nodes == ["node2"]
