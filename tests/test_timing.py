"""Calibrated ODROID-XU4 timing model (Figure 2 / Section 2.4)."""

import pytest

from repro.crypto.timing import (
    HASH_NAMES,
    SIGNATURE_NAMES,
    HashCost,
    OdroidXU4Model,
    SignatureCost,
    TimingModel,
    figure2_sizes,
)
from repro.errors import ParameterError
from repro.units import GiB, KiB, MiB

MODEL = OdroidXU4Model()


class TestAnchors:
    """The in-text numbers of Section 2.4."""

    def test_100mb_sha256_about_point9_seconds(self):
        assert MODEL.hash_time("sha256", 100 * 10**6) == pytest.approx(
            0.9, rel=0.05
        )

    def test_2gib_fastest_hash_about_14_seconds(self):
        fastest = min(
            MODEL.hash_time(name, 2 * GiB) for name in HASH_NAMES
        )
        assert fastest == pytest.approx(14.0, rel=0.05)

    def test_1mib_exceeds_10ms_within_tolerance(self):
        t = MODEL.hash_time("sha256", MiB)
        assert 0.005 < t < 0.02

    def test_1gib_firealarm_about_7_seconds(self):
        fastest = min(MODEL.hash_time(name, GiB) for name in HASH_NAMES)
        assert fastest == pytest.approx(7.0, rel=0.05)


class TestModelShape:
    def test_all_figure2_algorithms_present(self):
        for name in HASH_NAMES:
            MODEL.hash_time(name, 1000)
        for name in SIGNATURE_NAMES:
            MODEL.sign_time(name)
            MODEL.verify_time(name)

    def test_monotonic_in_size(self):
        sizes = [KiB, MiB, 100 * MiB, GiB]
        for name in HASH_NAMES:
            times = [MODEL.hash_time(name, s) for s in sizes]
            assert times == sorted(times)
            assert times[0] < times[-1]

    def test_signature_cost_size_independent(self):
        small = MODEL.hash_and_sign_time("rsa2048", KiB)
        large = MODEL.hash_and_sign_time("rsa2048", GiB)
        sign = MODEL.sign_time("rsa2048")
        # The signing component is identical; only hashing grows.
        assert large - small == pytest.approx(
            MODEL.hash_time("sha256", GiB) - MODEL.hash_time("sha256", KiB),
            rel=1e-6,
        )
        assert sign == MODEL.sign_time("rsa2048")

    def test_rsa_sign_cost_ordering(self):
        assert (
            MODEL.sign_time("rsa1024")
            < MODEL.sign_time("rsa2048")
            < MODEL.sign_time("rsa4096")
        )

    def test_rsa_verify_cheaper_than_sign(self):
        for name in ("rsa1024", "rsa2048", "rsa4096"):
            assert MODEL.verify_time(name) < MODEL.sign_time(name)

    def test_ecdsa_verify_more_expensive_than_sign(self):
        for name in ("ecdsa160", "ecdsa224", "ecdsa256"):
            assert MODEL.verify_time(name) > MODEL.sign_time(name)

    def test_sha512_slowest_blake2s_fastest(self):
        size = 10 * MiB
        times = {name: MODEL.hash_time(name, size) for name in HASH_NAMES}
        assert max(times, key=times.get) == "sha512"
        assert min(times, key=times.get) == "blake2s"

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ParameterError):
            MODEL.hash_time("md5", 100)
        with pytest.raises(ParameterError):
            MODEL.sign_time("dsa")

    def test_negative_size_rejected(self):
        with pytest.raises(ParameterError):
            MODEL.hash_time("sha256", -1)


class TestComposites:
    def test_mac_slightly_above_hash(self):
        size = MiB
        hash_time = MODEL.hash_time("sha256", size)
        mac_time = MODEL.mac_time("sha256", size)
        assert mac_time > hash_time
        # Outer hash is negligible (the Section 2.4 observation).
        assert (mac_time - hash_time) / hash_time < 0.01

    def test_hash_and_sign_sum(self):
        size = 10 * MiB
        assert MODEL.hash_and_sign_time("ecdsa256", size) == pytest.approx(
            MODEL.hash_time("sha256", size) + MODEL.sign_time("ecdsa256")
        )

    def test_measurement_time_dispatch(self):
        size = MiB
        assert MODEL.measurement_time(size) == MODEL.mac_time(
            "sha256", size
        )
        assert MODEL.measurement_time(
            size, signature="rsa1024"
        ) == MODEL.hash_and_sign_time("rsa1024", size)


class TestCrossover:
    def test_crossover_near_1mib_for_most_signatures(self):
        """The Section 2.4 claim: above ~1 MB hashing dominates "most"
        signature algorithms."""
        below_4mib = 0
        for signature in SIGNATURE_NAMES:
            size = MODEL.crossover_size("sha256", signature)
            if size < 4 * MiB:
                below_4mib += 1
        assert below_4mib >= 4  # "most"

    def test_rsa4096_has_largest_crossover(self):
        sizes = {
            signature: MODEL.crossover_size("sha256", signature)
            for signature in SIGNATURE_NAMES
        }
        assert max(sizes, key=sizes.get) == "rsa4096"

    def test_crossover_consistency(self):
        """At the crossover size, hashing and signing cost the same."""
        size = MODEL.crossover_size("sha256", "rsa2048")
        assert MODEL.hash_time("sha256", int(size)) == pytest.approx(
            MODEL.sign_time("rsa2048"), rel=0.01
        )


class TestSweeps:
    def test_figure2_sizes_span_1kib_to_2gib(self):
        sizes = figure2_sizes()
        assert sizes[0] == KiB
        assert sizes[-1] == 2 * GiB
        assert sizes == sorted(sizes)

    def test_sweep_series_shape(self):
        sizes = [KiB, MiB]
        series = MODEL.sweep(sizes, hash_algorithm="sha256")
        assert [s for s, _ in series] == sizes
        assert series[0][1] < series[1][1]


class TestCustomModel:
    def test_custom_tables(self):
        model = TimingModel(
            hash_costs={"sha256": HashCost(fixed=0.0, throughput=1e6)},
            signature_costs={
                "rsa1024": SignatureCost(sign=0.5, verify=0.1)
            },
            name="toy",
        )
        assert model.hash_time("sha256", 10**6) == pytest.approx(1.0)
        assert model.crossover_size("sha256", "rsa1024") == pytest.approx(
            0.5 * 1e6
        )

    def test_lock_and_switch_costs_exposed(self):
        assert MODEL.lock_op_cost > 0
        assert MODEL.context_switch_cost > 0


class TestCalibration:
    def test_calibrate_from_anchors(self):
        from repro.crypto.timing import calibrate_from_anchors

        model = calibrate_from_anchors(
            {"sha256": (100 * 10**6, 0.9), "blake2s": (2 * GiB, 14.0)},
            {"rsa2048": (5.6e-3, 0.18e-3)},
            name="my-board",
        )
        assert model.name == "my-board"
        assert model.hash_time("sha256", 100 * 10**6) == pytest.approx(
            0.9, rel=1e-6
        )
        assert model.hash_time("blake2s", 2 * GiB) == pytest.approx(
            14.0, rel=1e-6
        )
        assert model.sign_time("rsa2048") == 5.6e-3

    def test_calibrated_model_composes(self):
        from repro.crypto.timing import calibrate_from_anchors

        model = calibrate_from_anchors(
            {"sha256": (MiB, 0.01)}, {"ecdsa256": (1e-3, 4e-3)},
        )
        assert model.hash_and_sign_time("ecdsa256", MiB) == pytest.approx(
            model.hash_time("sha256", MiB) + 1e-3
        )

    def test_device_accepts_calibrated_model(self):
        from repro.crypto.timing import calibrate_from_anchors
        from repro.sim.device import Device
        from repro.sim.engine import Simulator

        model = calibrate_from_anchors(
            {"blake2s": (MiB, 0.02)}, {},
        )
        device = Device(Simulator(), block_count=4, block_size=16,
                        sim_block_size=MiB, timing=model)
        assert device.block_measure_time("blake2s") == pytest.approx(
            0.02, rel=1e-3
        )

    def test_bad_anchor_rejected(self):
        from repro.crypto.timing import calibrate_from_anchors

        with pytest.raises(ParameterError):
            calibrate_from_anchors({"sha256": (0, 1.0)}, {})
        with pytest.raises(ParameterError):
            calibrate_from_anchors({"sha256": (100, 1e-9)}, {})
        with pytest.raises(ParameterError):
            calibrate_from_anchors({}, {"rsa1024": (0.0, 1.0)})
