"""QoA closed forms, cross-checked against Monte-Carlo simulation."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.analysis.qoa_math import (
    detection_probability,
    expected_detection_latency,
    required_t_m,
    undetected_window_fraction,
    worst_detection_latency,
)
from repro.errors import ParameterError


class TestDetectionProbability:
    def test_boundaries(self):
        assert detection_probability(0.0, 4.0) == 0.0
        assert detection_probability(4.0, 4.0) == 1.0
        assert detection_probability(9.0, 4.0) == 1.0

    def test_linear_below_period(self):
        assert detection_probability(1.0, 4.0) == pytest.approx(0.25)
        assert detection_probability(3.0, 4.0) == pytest.approx(0.75)

    def test_validation(self):
        with pytest.raises(ParameterError):
            detection_probability(-1.0, 4.0)
        with pytest.raises(ParameterError):
            detection_probability(1.0, 0.0)

    def test_monte_carlo_agreement(self):
        """Random-phase infections against a measurement grid."""
        rng = random.Random(7)
        t_m, dwell, trials = 4.0, 1.5, 4000
        hits = 0
        for _ in range(trials):
            phase = rng.uniform(0, t_m)
            # Infection [phase, phase + dwell); grid points k * t_m.
            first_grid = t_m  # the next measurement after t=0
            covered = phase <= first_grid <= phase + dwell or phase == 0.0
            if covered:
                hits += 1
        assert hits / trials == pytest.approx(
            detection_probability(dwell, t_m), abs=0.03
        )

    @given(
        st.floats(min_value=0.0, max_value=50.0),
        st.floats(min_value=0.1, max_value=50.0),
    )
    def test_complement(self, dwell, t_m):
        assert undetected_window_fraction(dwell, t_m) == pytest.approx(
            1.0 - detection_probability(dwell, t_m)
        )


class TestLatencies:
    def test_worst_case_sum(self):
        assert worst_detection_latency(4.0, 16.0) == 20.0

    def test_expected_latency_halves(self):
        # Long dwell: expect T_M/2 + T_C/2.
        assert expected_detection_latency(100.0, 4.0, 16.0) == (
            pytest.approx(2.0 + 8.0)
        )
        # Short dwell: conditional offset is dwell/2.
        assert expected_detection_latency(1.0, 4.0, 16.0) == (
            pytest.approx(0.5 + 8.0)
        )

    def test_validation(self):
        with pytest.raises(ParameterError):
            worst_detection_latency(0.0, 1.0)
        with pytest.raises(ParameterError):
            expected_detection_latency(1.0, 1.0, 0.0)
        with pytest.raises(ParameterError):
            expected_detection_latency(-1.0, 1.0, 1.0)


class TestSizing:
    def test_required_t_m(self):
        # To catch 2-second residencies with 80% probability, measure
        # at least every 2.5 s.
        assert required_t_m(2.0, 0.8) == pytest.approx(2.5)
        assert detection_probability(2.0, 2.5) == pytest.approx(0.8)

    def test_certain_detection_needs_t_m_at_most_dwell(self):
        assert required_t_m(3.0, 1.0) == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            required_t_m(0.0, 0.5)
        with pytest.raises(ParameterError):
            required_t_m(1.0, 1.5)
