"""The fault-matrix campaign against its golden artifact.

``fault_matrix_campaign`` sweeps the on-demand mechanisms across a
clean channel, a loss burst, and loss plus a prover brownout.  The
whole point of the seeded fault layer is that this sweep is
*reproducible*: the canonical ``runs.jsonl`` projection must match the
checked-in golden byte for byte (CI re-runs the same diff via
``repro fleet run --campaign faults``), and the ``faults=""`` cells
must be indistinguishable from a run that never imported the
resilience layer at all."""

import json
from pathlib import Path

from repro.fleet import canned_campaign, execute_run

GOLDEN = Path(__file__).parent / "golden" / "fault_matrix_runs.jsonl"


def run_matrix():
    campaign = canned_campaign("faults", seed_count=1)
    results = sorted(
        (execute_run(spec) for spec in campaign.plan()),
        key=lambda r: r.run_id,
    )
    return campaign, results


class TestFaultMatrixGolden:
    def test_runs_jsonl_matches_golden_byte_for_byte(self):
        _, results = run_matrix()
        produced = "\n".join(r.to_json_line() for r in results) + "\n"
        assert produced == GOLDEN.read_text(encoding="utf-8")

    def test_matrix_shape_and_degradation_content(self):
        _, results = run_matrix()
        assert len(results) == 9
        assert all(r.status == "ok" for r in results)
        by_faults = {}
        for result in results:
            by_faults.setdefault(result.spec.get("faults", ""), []).append(
                result
            )
        # the clean cells are the byte-identity control: no outcome
        # ledger, no retry telemetry -- nothing betrays that the
        # resilience layer exists
        for result in by_faults[""]:
            assert not result.outcomes
            line = json.loads(result.to_json_line())
            assert "outcomes" not in line
        # the lossy cells degrade gracefully: retries happened, yet
        # every exchange still completed
        for faults, cells in by_faults.items():
            if not faults:
                continue
            for result in cells:
                assert result.outcomes["completion_rate"] == 1.0
                assert result.outcomes["retries"] > 0
        # the brownout cells attribute their reset
        for result in by_faults["loss=0.25@0:20;reset@4"]:
            assert result.outcomes["resets"] == 1

    def test_clean_cells_match_a_campaign_without_fault_axis(self):
        """Dropping the ``faults`` axis entirely must reproduce the
        ``faults=""`` cells exactly -- the opt-in guarantee, end to
        end through the executor."""
        campaign, results = run_matrix()
        clean = {
            r.run_id: r for r in results if not r.spec.get("faults", "")
        }
        from repro.fleet import CampaignSpec

        control = CampaignSpec(
            name=campaign.name,
            base={
                k: v for k, v in campaign.base.items()
            },
            axes={"mechanism": campaign.axes["mechanism"]},
            seeds=campaign.seeds,
        )
        for spec in control.plan():
            twin = execute_run(spec)
            match = next(
                r for r in clean.values()
                if r.spec["mechanism"] == spec.mechanism
            )
            produced = json.loads(twin.to_json_line())
            expected = json.loads(match.to_json_line())
            # run ids (spec hashes) legitimately differ -- the control
            # spec has no faults field swept; everything measured must
            # be identical
            for volatile in ("run_id", "spec"):
                produced.pop(volatile)
                expected.pop(volatile)
            assert produced == expected
