"""Locking delay closed forms, cross-checked against the simulator."""

import pytest

from repro.analysis.locking_math import (
    expected_block_delay,
    lock_exposure,
    mean_delay_over_blocks,
)
from repro.errors import ParameterError
from repro.ra.locking import make_policy
from repro.ra.measurement import MeasurementConfig, MeasurementProcess
from repro.sim.device import Device
from repro.sim.engine import Simulator
from repro.units import MiB


class TestLockExposure:
    def test_no_lock_zero(self):
        assert lock_exposure("no-lock", 8, 3, 0.1) == 0.0

    def test_all_lock_full_window(self):
        assert lock_exposure("all-lock", 8, 3, 0.1) == pytest.approx(0.8)

    def test_dec_lock_grows_with_position(self):
        exposures = [
            lock_exposure("dec-lock", 8, position, 0.1)
            for position in range(8)
        ]
        assert exposures == sorted(exposures)
        assert exposures[0] == pytest.approx(0.1)
        assert exposures[-1] == pytest.approx(0.8)

    def test_inc_lock_shrinks_with_position(self):
        exposures = [
            lock_exposure("inc-lock", 8, position, 0.1)
            for position in range(8)
        ]
        assert exposures == sorted(exposures, reverse=True)
        assert exposures[-1] == pytest.approx(0.1)

    def test_dec_plus_inc_equals_all_plus_one_block(self):
        # A block locked [t_s, measured] plus [measured, t_e] covers
        # the window once, with the measured block counted twice.
        n, d = 8, 0.1
        for position in range(n):
            total = lock_exposure("dec-lock", n, position, d) + (
                lock_exposure("inc-lock", n, position, d)
            )
            assert total == pytest.approx(n * d + d)

    def test_validation(self):
        with pytest.raises(ParameterError):
            lock_exposure("all-lock", 8, 9, 0.1)
        with pytest.raises(ParameterError):
            lock_exposure("mega-lock", 8, 0, 0.1)
        with pytest.raises(ParameterError):
            lock_exposure("all-lock", 0, 0, 0.1)


class TestExpectedDelay:
    def test_all_lock_uniform_arrival(self):
        # L = T: expected delay = T/2.
        assert expected_block_delay("all-lock", 8, 0, 0.1) == (
            pytest.approx(0.4)
        )

    def test_no_lock_zero(self):
        assert expected_block_delay("no-lock", 8, 4, 0.1) == 0.0

    def test_inc_lock_late_blocks_cheap(self):
        early = expected_block_delay("inc-lock", 8, 0, 0.1)
        late = expected_block_delay("inc-lock", 8, 7, 0.1)
        assert late < early

    def test_mean_over_blocks_ordering(self):
        # availability damage: all-lock > dec-lock = inc-lock > no-lock
        n, d = 16, 0.05
        all_lock = mean_delay_over_blocks("all-lock", n, d)
        dec = mean_delay_over_blocks("dec-lock", n, d)
        inc = mean_delay_over_blocks("inc-lock", n, d)
        none = mean_delay_over_blocks("no-lock", n, d)
        assert none == 0.0
        assert dec == pytest.approx(inc)  # mirror images
        assert none < dec < all_lock


class TestSimulationCrossCheck:
    def run_probe_delays(self, policy_name, n=8, arrivals=24):
        """Measure actual commit delays of uniform arrivals in [t_s, t_e]."""
        sim = Simulator()
        device = Device(sim, block_count=n, block_size=32,
                        sim_block_size=4 * MiB)
        per_block = device.block_measure_time("blake2s")
        duration = per_block * n
        t_start = 1.0
        config = MeasurementConfig(
            locking=make_policy(policy_name), priority=50,
        )
        mp = MeasurementProcess(device, config, nonce=b"n")
        sim.schedule_at(
            t_start, lambda: device.cpu.spawn("mp", mp.run, priority=50)
        )
        delays = []
        payload = b"\x99" * 32

        def attempt(block, released):
            committed = device.memory.try_write(block, payload, "probe")
            if committed:
                delays.append(sim.now - released)
            else:
                device.mpu.release_signal.wait(
                    lambda _v, b=block, r=released: attempt(b, r)
                )

        for index in range(arrivals):
            at = t_start + duration * (index + 0.5) / arrivals
            block = index % n
            sim.schedule_at(at, attempt, block, at)
        sim.run(until=60)
        assert len(delays) == arrivals  # every write commits eventually
        return sum(delays) / len(delays), per_block

    def test_all_lock_mean_delay_matches_model(self):
        observed, per_block = self.run_probe_delays("all-lock")
        predicted = mean_delay_over_blocks("all-lock", 8, per_block)
        assert observed == pytest.approx(predicted, rel=0.35)

    def test_dec_lock_cheaper_than_all_lock(self):
        dec, _ = self.run_probe_delays("dec-lock")
        full, _ = self.run_probe_delays("all-lock")
        assert dec < full

    def test_no_lock_zero_delay(self):
        observed, _ = self.run_probe_delays("no-lock")
        assert observed == pytest.approx(0.0, abs=1e-9)
