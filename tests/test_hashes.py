"""Hash registry: metadata and known-answer checks."""

import hashlib

import pytest
from hypothesis import given, strategies as st

from repro.crypto.hashes import (
    HASH_ALGORITHMS,
    digest,
    digest_chain,
    get_algorithm,
    hash_new,
)
from repro.errors import ParameterError


class TestRegistry:
    def test_the_four_figure2_hashes_present(self):
        assert set(HASH_ALGORITHMS) == {
            "sha256", "sha512", "blake2b", "blake2s",
        }

    def test_digest_sizes(self):
        assert HASH_ALGORITHMS["sha256"].digest_size == 32
        assert HASH_ALGORITHMS["sha512"].digest_size == 64
        assert HASH_ALGORITHMS["blake2b"].digest_size == 64
        assert HASH_ALGORITHMS["blake2s"].digest_size == 32

    def test_block_sizes_for_hmac(self):
        assert HASH_ALGORITHMS["sha256"].block_size == 64
        assert HASH_ALGORITHMS["sha512"].block_size == 128

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ParameterError):
            get_algorithm("md5")


class TestKnownAnswers:
    def test_sha256_empty(self):
        assert digest("sha256", b"").hex() == (
            "e3b0c44298fc1c149afbf4c8996fb924"
            "27ae41e4649b934ca495991b7852b855"
        )

    def test_sha256_abc(self):
        assert digest("sha256", b"abc").hex() == (
            "ba7816bf8f01cfea414140de5dae2223"
            "b00361a396177a9cb410ff61f20015ad"
        )

    def test_sha512_abc_prefix(self):
        assert digest("sha512", b"abc").hex().startswith("ddaf35a19361")

    @pytest.mark.parametrize("name", sorted(HASH_ALGORITHMS))
    def test_matches_hashlib(self, name):
        data = b"attestation report payload" * 7
        assert digest(name, data) == hashlib.new(name, data).digest()

    def test_streaming_equals_one_shot(self):
        h = hash_new("blake2s")
        h.update(b"part one")
        h.update(b"part two")
        assert h.digest() == digest("blake2s", b"part onepart two")

    def test_digest_chain(self):
        chunks = [b"a", b"bc", b"def"]
        assert digest_chain("sha256", chunks) == digest("sha256", b"abcdef")

    @given(st.binary(max_size=256), st.binary(max_size=256))
    def test_chain_concatenation_property(self, left, right):
        assert digest_chain("sha256", [left, right]) == digest(
            "sha256", left + right
        )
