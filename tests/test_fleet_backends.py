"""Executor backends: serial, process pool, and the worker spool."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.fleet import (
    ProcessPoolBackend,
    RunResult,
    RunSpec,
    SerialBackend,
    SpoolBackend,
    SpoolWorker,
    make_shards,
    resolve_backend,
)
from repro.fleet.backends import SpoolJob
from repro.units import MiB


def fast_spec(**overrides) -> RunSpec:
    fields = dict(
        mechanism="smart",
        adversary="none",
        block_count=8,
        sim_block_size=MiB,
        horizon=10.0,
    )
    fields.update(overrides)
    return RunSpec(**fields)


def synthetic_runner(spec: RunSpec) -> RunResult:
    return RunResult(
        run_id=spec.run_id,
        spec=spec.to_dict(),
        detected=spec.seed % 2 == 0,
        measurements=1,
    )


def run_backend(backend, specs, shard_size=2, runner=synthetic_runner):
    shards = make_shards(specs, shard_size)
    return list(backend.execute(shards, runner=runner))


class TestMakeShards:
    def test_partitions_in_plan_order(self):
        specs = [fast_spec(seed=i) for i in range(7)]
        shards = make_shards(specs, 3)
        assert [shard.index for shard in shards] == [0, 1, 2]
        assert [len(shard) for shard in shards] == [3, 3, 1]
        assert [s.run_id for shard in shards for s in shard.specs] == [
            s.run_id for s in specs
        ]

    def test_invalid_shard_size(self):
        with pytest.raises(ConfigurationError):
            make_shards([fast_spec()], 0)


class TestSerialBackend:
    def test_yields_outcomes_in_order(self):
        specs = [fast_spec(seed=i) for i in range(5)]
        outcomes = run_backend(SerialBackend(), specs)
        assert [o.shard.index for o in outcomes] == [0, 1, 2]
        assert all(not o.degraded for o in outcomes)
        flat = [r.run_id for o in outcomes for r in o.results]
        assert flat == [s.run_id for s in specs]


class TestProcessPoolBackend:
    def test_pool_unavailable_degrades_to_serial(self):
        def no_pool(workers):
            raise OSError("no processes for you")

        backend = ProcessPoolBackend(workers=4, pool_factory=no_pool)
        specs = [fast_spec(seed=i) for i in range(3)]
        outcomes = run_backend(backend, specs)
        assert backend.mode == "serial"
        assert backend.workers == 1
        assert all(o.degraded for o in outcomes)
        # degradation loses no results and keeps order
        flat = [r.run_id for o in outcomes for r in o.results]
        assert flat == [s.run_id for s in specs]

    def test_degraded_results_match_serial(self):
        def no_pool(workers):
            raise OSError("nope")

        specs = [fast_spec(seed=i) for i in range(4)]
        degraded = run_backend(
            ProcessPoolBackend(workers=2, pool_factory=no_pool), specs
        )
        serial = run_backend(SerialBackend(), specs)
        assert [
            r.to_json_line() for o in degraded for r in o.results
        ] == [r.to_json_line() for o in serial for r in o.results]


class TestSpoolProtocol:
    def test_job_round_trip(self):
        specs = [fast_spec(seed=i) for i in range(2)]
        job = SpoolJob(
            shard_index=3, retries=2,
            specs=[s.to_dict() for s in specs],
        )
        clone = SpoolJob.from_json(job.to_json())
        assert clone == job

    def test_worker_claims_and_produces_results(self, tmp_path):
        worker = SpoolWorker(tmp_path, runner=synthetic_runner)
        specs = [fast_spec(seed=i) for i in range(2)]
        job = SpoolJob(
            shard_index=0, retries=1,
            specs=[s.to_dict() for s in specs],
        )
        (tmp_path / "inbox" / "shard-000000.json").write_text(
            job.to_json(), encoding="utf-8"
        )
        assert worker.process_one() is True
        assert worker.process_one() is False  # inbox drained
        out = tmp_path / "outbox" / "shard-000000.jsonl"
        lines = out.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        # the wire form is the NON-deterministic projection: volatile
        # execution telemetry survives to the aggregating side
        first = json.loads(lines[0])
        assert first["run_id"] == specs[0].run_id
        assert "attempts" in first and first["attempts"] >= 1
        assert not (tmp_path / "claimed" / "shard-000000.json").exists()

    def test_competing_worker_loses_the_rename(self, tmp_path):
        first = SpoolWorker(tmp_path, runner=synthetic_runner)
        second = SpoolWorker(tmp_path, runner=synthetic_runner)
        job = SpoolJob(
            shard_index=0, retries=1, specs=[fast_spec().to_dict()]
        )
        (tmp_path / "inbox" / "shard-000000.json").write_text(
            job.to_json(), encoding="utf-8"
        )
        claimed = first.claim_one()
        assert claimed is not None
        assert second.claim_one() is None

    def test_run_once_drains_inbox(self, tmp_path):
        worker = SpoolWorker(tmp_path, runner=synthetic_runner)
        for index in range(3):
            job = SpoolJob(
                shard_index=index, retries=1,
                specs=[fast_spec(seed=index).to_dict()],
            )
            (tmp_path / "inbox" / f"shard-{index:06d}.json").write_text(
                job.to_json(), encoding="utf-8"
            )
        assert worker.run(once=True) == 3
        assert sorted(
            p.name for p in (tmp_path / "outbox").glob("*.jsonl")
        ) == [f"shard-{i:06d}.jsonl" for i in range(3)]


class TestSpoolBackend:
    def test_self_serve_end_to_end(self, tmp_path):
        specs = [fast_spec(seed=i) for i in range(5)]
        outcomes = run_backend(SpoolBackend(tmp_path), specs)
        serial = run_backend(SerialBackend(), specs)
        assert [o.shard.index for o in outcomes] == [0, 1, 2]
        assert [
            r.to_json_line() for o in outcomes for r in o.results
        ] == [r.to_json_line() for o in serial for r in o.results]

    def test_external_worker_results_are_consumed(self, tmp_path):
        # simulate a remote worker completing a shard before the
        # backend starts polling: the backend must pick up the file
        backend = SpoolBackend(tmp_path, self_serve=False, timeout=5.0)
        specs = [fast_spec(seed=1)]
        worker = SpoolWorker(tmp_path, runner=synthetic_runner)
        shards = make_shards(specs, 2)

        iterator = backend.execute(shards, runner=synthetic_runner)
        # jobs are spooled lazily on first next(); drive the worker
        # from a pre-seeded inbox instead
        job = SpoolJob(
            shard_index=0, retries=1,
            specs=[s.to_dict() for s in specs],
        )
        (tmp_path / "inbox" / "shard-000000.json").write_text(
            job.to_json(), encoding="utf-8"
        )
        worker.run(once=True)
        outcomes = list(iterator)
        assert len(outcomes) == 1
        assert outcomes[0].results[0].run_id == specs[0].run_id

    def test_no_worker_times_out(self, tmp_path):
        backend = SpoolBackend(
            tmp_path, self_serve=False, poll_interval=0.01, timeout=0.05
        )
        shards = make_shards([fast_spec()], 2)
        with pytest.raises(TimeoutError):
            list(backend.execute(shards, runner=synthetic_runner))


class TestResolveBackend:
    def test_serial(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)

    def test_process_with_worker_count(self):
        backend = resolve_backend("process:5")
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.workers == 5

    def test_process_defaults_to_cpu_count(self):
        backend = resolve_backend("process")
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.workers >= 2

    def test_spool_requires_directory(self, tmp_path):
        backend = resolve_backend(f"spool:{tmp_path}")
        assert isinstance(backend, SpoolBackend)
        with pytest.raises(ConfigurationError):
            resolve_backend("spool")

    def test_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            resolve_backend("quantum")
        with pytest.raises(ConfigurationError):
            resolve_backend("serial:2")
