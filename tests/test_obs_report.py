"""The causal-exchange read side: exchange records, the canonical
timeline (serial vs batched byte-identity, pinned by a golden file),
the mergeable ExchangeSketch, the fleet reducer fold, the per-exchange
Perfetto regrouping, the verify-cost model, and the ``repro obs
report`` / ``repro obs timeline`` CLI surface."""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.fleet.results import GroupSummary, summarize
from repro.fleet.telemetry import (
    SKETCH_BUCKETS,
    SKETCH_TOP_K,
    ExchangeSketch,
    RunResult,
)
from repro.obs.chrome import chrome_trace_events
from repro.obs.core import Observability
from repro.obs.report import (
    causal_timeline,
    exchange_records,
    exemplar_table,
    resolve_quantile,
    trace_ids,
)
from repro.obs.spans import SpanTracker
from repro.vserver.service import build_service_scenario, service_preset

GOLDEN_TIMELINE = Path(__file__).parent / "golden" / "causal_timeline.jsonl"
GOLDEN_LEDGER = Path(__file__).parent / "golden" / "vserver_ledger.jsonl"


def hand_capture() -> SpanTracker:
    """A small span capture: two exchanges plus untraced noise."""
    spans = SpanTracker()
    spans.add_span("engine.loop", 0.0, 9.0, category="engine")
    spans.add_span(
        "ra.measurement", 1.1, 1.6, category="ra.prover",
        trace_id="aaaa000011112222", device="dev0",
    )
    spans.add_span(
        "ra.round_trip", 1.0, 2.0, category="ra.verifier",
        trace_id="aaaa000011112222", device="dev0", verdict="healthy",
    )
    spans.add_span(
        "ra.round_trip", 3.0, 3.25, category="ra.verifier",
        trace_id="bbbb000011112222", device="dev1", verdict="compromised",
    )
    return spans


class TestExchangeRecords:
    def test_rows_only_for_finished_terminal_spans(self):
        rows = exchange_records(hand_capture())
        assert [r["trace_id"] for r in rows] == [
            "aaaa000011112222", "bbbb000011112222"
        ]
        first = rows[0]
        assert first["name"] == "ra.round_trip"
        assert first["device"] == "dev0"
        assert first["verdict"] == "healthy"
        assert first["latency"] == pytest.approx(1.0)

    def test_trace_ids_sorted_distinct(self):
        assert trace_ids(hand_capture()) == [
            "aaaa000011112222", "bbbb000011112222"
        ]


class TestCausalTimeline:
    def test_lines_are_canonical_json(self):
        lines = causal_timeline(hand_capture())
        # untraced engine.loop is excluded; traced spans sorted by
        # (trace, start)
        rows = [json.loads(line) for line in lines]
        assert [row["name"] for row in rows] == [
            "ra.round_trip", "ra.measurement", "ra.round_trip"
        ]
        assert all("trace_id" not in row["args"] for row in rows)
        assert all("span_id" not in row for row in rows)
        # canonical separators: no spaces, sorted keys
        assert lines[0] == json.dumps(
            json.loads(lines[0]), sort_keys=True, separators=(",", ":")
        )

    def test_single_trace_filter(self):
        lines = causal_timeline(hand_capture(), trace_id="bbbb000011112222")
        assert len(lines) == 1
        assert json.loads(lines[0])["args"]["verdict"] == "compromised"


def smoke_timeline(batch: bool):
    config = dataclasses.replace(service_preset("smoke"), batch=batch)
    obs = Observability.enabled()
    scenario = build_service_scenario(config, obs=obs)
    scenario.run()
    return causal_timeline(obs.spans)


class TestServedVerifierTimeline:
    def test_serial_and_batched_drains_same_causal_timeline(self):
        """Epoch batching reorders span *recording*, never causality:
        the canonical timeline is byte-identical either way, and both
        match the committed golden artifact."""
        batched = smoke_timeline(batch=True)
        serial = smoke_timeline(batch=False)
        assert batched == serial
        golden = GOLDEN_TIMELINE.read_text(encoding="utf-8").splitlines()
        assert batched == golden

    def test_every_smoke_submission_is_one_trace(self):
        obs = Observability.enabled()
        scenario = build_service_scenario(service_preset("smoke"), obs=obs)
        stats = scenario.run()
        assert len(trace_ids(obs.spans)) == stats["submitted"]


class TestExchangeSketch:
    def test_observe_and_quantile(self):
        sketch = ExchangeSketch()
        for i in range(1, 101):
            sketch.observe(i / 100.0, trace_id=f"t{i:03d}")
        assert sketch.count == 100
        assert sketch.mean == pytest.approx(0.505)
        assert sketch.min == pytest.approx(0.01)
        assert sketch.max == pytest.approx(1.0)
        # bucket-resolution: p50 lands in the (0.1, 0.5] bucket
        assert sketch.quantile(0.5) == 0.5
        assert sketch.quantile(0.99) == 1.0
        assert len(sketch.top) == SKETCH_TOP_K
        assert sketch.top[0][:2] == [1.0, "t100"]

    def test_empty_sketch(self):
        sketch = ExchangeSketch()
        assert sketch.quantile(0.99) == 0.0
        assert sketch.mean == 0.0
        data = sketch.to_dict()
        assert data["count"] == 0
        assert data["min"] == 0.0 and data["max"] == 0.0

    def test_top_k_tie_break_is_deterministic(self):
        a, b = ExchangeSketch(), ExchangeSketch()
        for sketch, order in ((a, "abcdef"), (b, "fedcba")):
            for ch in order:
                sketch.observe(0.25, trace_id=ch)
        assert a.to_dict() == b.to_dict()
        assert [row[1] for row in a.top] == ["a", "b", "c", "d", "e"]

    def test_merge_is_associative_and_commutative(self):
        def build(seed, n):
            sketch = ExchangeSketch()
            for i in range(n):
                sketch.observe(((seed * 31 + i) % 97) / 10.0,
                               trace_id=f"{seed}-{i}")
            return sketch

        left = build(1, 40).merge(build(2, 40)).merge(build(3, 40))
        right = build(3, 40).merge(
            build(2, 40).merge(build(1, 40))
        )
        assert left.to_dict() == right.to_dict()
        assert left.count == 120
        assert sum(left.bucket_counts) == 120

    def test_dict_roundtrip(self):
        sketch = ExchangeSketch()
        for i in range(7):
            sketch.observe(0.1 * (i + 1), trace_id=f"t{i}", label="smart")
        data = sketch.to_dict()
        again = ExchangeSketch.from_dict(data)
        assert again.to_dict() == data
        assert len(data["buckets"]) == len(SKETCH_BUCKETS) + 1


class TestFleetReducer:
    def run_traced(self, slo=""):
        from repro.fleet import canned_campaign
        from repro.fleet.executor import execute_run

        spec = canned_campaign("faults", seed_count=1).plan()[0]
        if slo:
            spec = spec.with_overrides(slo=slo)
        return execute_run(spec, obs=Observability.enabled())

    def test_trace_summary_folded_into_run_result(self):
        result = self.run_traced()
        summary = result.trace_summary
        assert summary["traces"] >= 1
        assert summary["spans"] > summary["traces"]
        sketch = ExchangeSketch.from_dict(summary["exchanges"])
        assert sketch.count == summary["traces"]
        assert all(row[1] for row in sketch.top)  # trace ids present
        assert "ra.round_trip.latency" in summary["exemplars"]

    def test_default_runs_keep_historical_artifact_bytes(self):
        """No obs -> no trace_summary/slo keys anywhere in the
        deterministic projection; golden runs.jsonl stays stable."""
        from repro.fleet import canned_campaign
        from repro.fleet.executor import execute_run

        spec = canned_campaign("faults", seed_count=1).plan()[0]
        result = execute_run(spec)
        assert result.trace_summary == {}
        line = result.to_json_line()
        assert "trace_summary" not in line and '"slo"' not in line

    def test_group_summary_merges_shards(self):
        results = []
        for shard in range(3):
            sketch = ExchangeSketch()
            for i in range(4):
                sketch.observe(0.05 * (shard + 1) * (i + 1),
                               trace_id=f"s{shard}-{i}")
            results.append(RunResult(
                run_id=f"run-{shard}",
                spec={"mechanism": "smart", "adversary": "none"},
                trace_summary={
                    "spans": 10, "traces": 4,
                    "exchanges": sketch.to_dict(),
                },
                slo={
                    "interval": 0.33,
                    "objectives": {
                        "svc": {"met": shard != 2, "alerts": shard},
                    },
                    "alerts": [
                        {"transition": "firing"} for _ in range(shard)
                    ],
                },
            ))
        summary = summarize(results, campaign="x")
        group = summary.group("smart", "none")
        assert group.traces == 12
        assert group.exchange_sketch.count == 12
        assert group.slo_alerts == 3  # 0 + 1 + 2 firing transitions
        assert group.slo_violations == 1
        data = group.to_dict()
        assert data["exchanges"]["count"] == 12
        assert data["slo_alerts"] == 3

    def test_untraced_group_serializes_historically(self):
        group = GroupSummary("smart", "none")
        data = group.to_dict()
        for key in ("exchanges", "exchange_sketch", "traces",
                    "slo_alerts", "slo_violations"):
            assert key not in data


class TestChromeByExchange:
    def test_one_track_per_traced_exchange(self):
        events = chrome_trace_events(hand_capture(), by_exchange=True)
        names = {
            e["args"]["name"] for e in events
            if e.get("name") == "thread_name"
        }
        assert "xchg:aaaa000011112222" in names
        assert "xchg:bbbb000011112222" in names
        # the untraced engine span keeps its category track
        assert any(not n.startswith("xchg:") for n in names)

    def test_default_grouping_unchanged(self):
        spans = hand_capture()
        default = chrome_trace_events(spans)
        names = {
            e["args"]["name"] for e in default
            if e.get("name") == "thread_name"
        }
        assert not any(n.startswith("xchg:") for n in names)


class TestExemplars:
    def test_exemplar_table_and_quantile_resolution(self):
        obs = Observability.enabled()
        hist = obs.metrics.histogram("x.latency", "test")
        hist.observe(0.02, exemplar="t-fast")
        hist.observe(0.3, exemplar="t-slow")
        table = exemplar_table(obs.metrics)
        assert "x.latency" in table
        assert {e["trace_id"] for e in table["x.latency"]} == {
            "t-fast", "t-slow"
        }
        hit = resolve_quantile(obs.metrics, "x.latency", 0.99)
        assert hit["trace_id"] == "t-slow"
        assert resolve_quantile(obs.metrics, "missing", 0.99) is None


class TestVerifyCostModel:
    def test_smoke_cost_is_pure_deferral(self):
        """Arming the verify-cost model defers conclusions (verdicts
        interleave differently in time) but never changes them: same
        stats, same ledger entries as a set, and the costless ledger
        still matches the golden byte-for-byte."""
        base = build_service_scenario(service_preset("smoke"))
        base_stats = base.run()
        cost = build_service_scenario(service_preset("smoke-cost"))
        cost_stats = cost.run()
        for key in ("submitted", "verified", "rejected", "unaccounted"):
            assert cost_stats[key] == base_stats[key]
        assert base_stats["unaccounted"] == 0
        base_lines = base.ledger_lines()
        assert sorted(cost.ledger_lines()) == sorted(base_lines)
        golden = GOLDEN_LEDGER.read_text(encoding="utf-8").splitlines()
        assert base_lines == golden

    def test_verify_stage_observes_nonzero_cost(self):
        scenario = build_service_scenario(service_preset("smoke-cost"))
        stats = scenario.run()
        (hist,) = [
            inst for inst in scenario.obs.metrics.instruments()
            if inst.name == "vserver.stage.verify"
        ]
        assert hist.count == stats["verified"]
        assert hist.sum > 0.0

    def test_default_smoke_verify_stage_is_free(self):
        scenario = build_service_scenario(service_preset("smoke"))
        scenario.run()
        (hist,) = [
            inst for inst in scenario.obs.metrics.instruments()
            if inst.name == "vserver.stage.verify"
        ]
        assert hist.sum == 0.0


class TestCli:
    def test_timeline_matches_golden(self, capsys):
        assert main(["obs", "timeline", "--service", "smoke"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        golden = GOLDEN_TIMELINE.read_text(encoding="utf-8").splitlines()
        assert out == golden

    def test_report_json(self, capsys):
        assert main([
            "obs", "report", "--campaign", "faults", "--runs", "1",
            "--slo", "exchange", "--format", "json",
        ]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["campaign"] == "faults"
        assert data["traces"] >= 1
        assert data["exchanges"]["count"] == data["traces"]
        (run,) = data["runs"]
        assert run["slo"]["objectives"]
        assert any(
            row["metric"] == "ra.round_trip.latency"
            for row in data["p99_exemplars"]
        )

    def test_report_terminal(self, capsys):
        assert main([
            "obs", "report", "--campaign", "faults", "--runs", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "traced exchange(s)" in out
        assert "slowest exchanges:" in out
        assert "trace=" in out
