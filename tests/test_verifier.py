"""The verifier: reference database, verdicts, replay defenses."""

import warnings

import pytest

from repro.errors import ConfigurationError
from repro.ra.measurement import MeasurementConfig, MeasurementProcess
from repro.ra.report import AttestationReport, Verdict
from repro.ra.verifier import Verifier
from repro.sim.device import Device
from repro.sim.engine import Simulator


def measured_record(device, nonce=b"n", counter=1, **config_kwargs):
    config = MeasurementConfig(**config_kwargs)
    mp = MeasurementProcess(device, config, nonce=nonce, counter=counter)
    device.cpu.spawn("mp", mp.run, priority=50)
    device.sim.run(until=device.sim.now + 100)
    return mp.record


def fresh_stack():
    sim = Simulator()
    device = Device(sim, block_count=8, block_size=32)
    device.standard_layout()
    verifier = Verifier(sim)
    verifier.enroll(device)
    return sim, device, verifier


class TestRegistry:
    def test_enroll_captures_reference(self):
        _, device, verifier = fresh_stack()
        profile = verifier.profile(device.name)
        assert len(profile.reference) == device.block_count
        assert profile.key == device.attestation_key
        assert set(profile.region_map) == {"code", "data"}
        assert profile.mutable_blocks == frozenset(
            device.memory.regions["data"].blocks()
        )

    def test_enroll_idempotent_and_attaches_signing(self):
        _, device, verifier = fresh_stack()
        first = verifier.profile(device.name)
        marker = object()
        again = verifier.enroll(device, signing=marker)
        assert again is first
        assert first.public_identity is marker

    def test_register_shims_still_work_and_warn(self):
        """Coverage for the deprecated registry trio: same profile as
        enroll, plus the historical duplicate-registration error."""
        import repro.ra.verifier as verifier_module

        sim = Simulator()
        device = Device(sim, block_count=8, block_size=32)
        device.standard_layout()
        verifier = Verifier(sim)
        verifier_module._DEPRECATION_WARNED.discard("register_from_device")
        with pytest.warns(DeprecationWarning):
            profile = verifier.register_from_device(device)
        assert profile.key == device.attestation_key
        # warn-once: a second deprecated call stays quiet but still
        # enforces the old duplicate-registration contract
        with pytest.raises(ConfigurationError):
            verifier.register_from_device(device)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            verifier.register_signing_identity(device.name, "pub")
        assert verifier.profile(device.name).public_identity == "pub"

    def test_unknown_device_rejected(self):
        sim = Simulator()
        verifier = Verifier(sim)
        with pytest.raises(ConfigurationError):
            verifier.profile("ghost")

    def test_nonces_unique(self):
        _, device, verifier = fresh_stack()
        nonces = {verifier.new_nonce(device.name) for _ in range(50)}
        assert len(nonces) == 50


class TestRecordVerdicts:
    def test_clean_device_healthy(self):
        _, device, verifier = fresh_stack()
        record = measured_record(device)
        assert verifier.verify_record(record) is Verdict.HEALTHY

    def test_dirty_code_block_compromised(self):
        _, device, verifier = fresh_stack()
        device.memory.write(1, b"\xBA" * 32, "malware")
        record = measured_record(device)
        assert verifier.verify_record(record) is Verdict.COMPROMISED

    def test_shuffled_record_verifiable(self):
        _, device, verifier = fresh_stack()
        record = measured_record(device, order="shuffled")
        assert verifier.verify_record(record) is Verdict.HEALTHY

    def test_normalized_record_with_data_writes_healthy(self):
        _, device, verifier = fresh_stack()
        data_block = device.memory.regions["data"].start
        device.memory.write(data_block, b"\x12" * 32, "app")
        record = measured_record(device, normalize_mutable=True)
        assert verifier.verify_record(record) is Verdict.HEALTHY

    def test_region_record_verifiable(self):
        _, device, verifier = fresh_stack()
        record = measured_record(device, region="code")
        assert verifier.verify_record(record) is Verdict.HEALTHY

    def test_region_record_blind_to_other_regions(self):
        _, device, verifier = fresh_stack()
        data_block = device.memory.regions["data"].start
        device.memory.write(data_block, b"\xBA" * 32, "malware")
        record = measured_record(device, region="code")
        assert verifier.verify_record(record) is Verdict.HEALTHY

    def test_unknown_region_rejected(self):
        import dataclasses

        _, device, verifier = fresh_stack()
        record = measured_record(device)
        forged = dataclasses.replace(record, region="ghost")
        with pytest.raises(ConfigurationError):
            verifier.verify_record(forged)


class TestReportVerdicts:
    def make_report(self, device, records, counter=1):
        return AttestationReport.authenticate(
            device.attestation_key, device.name, records,
            sent_counter=counter,
        )

    def test_healthy_report(self):
        _, device, verifier = fresh_stack()
        record = measured_record(device)
        result = verifier.verify_report(self.make_report(device, [record]))
        assert result.verdict is Verdict.HEALTHY
        assert result.freshness is not None

    def test_empty_report_invalid(self):
        _, device, verifier = fresh_stack()
        result = verifier.verify_report(self.make_report(device, []))
        assert result.verdict is Verdict.INVALID

    def test_bad_tag_invalid(self):
        _, device, verifier = fresh_stack()
        record = measured_record(device)
        report = AttestationReport(
            device.name, (record,), b"\x00" * 32, 1
        )
        result = verifier.verify_report(report)
        assert result.verdict is Verdict.INVALID

    def test_nonce_mismatch_is_replay(self):
        _, device, verifier = fresh_stack()
        record = measured_record(device, nonce=b"old")
        result = verifier.verify_report(
            self.make_report(device, [record]), expected_nonce=b"new"
        )
        assert result.verdict is Verdict.REPLAY

    def test_nonce_reuse_is_replay(self):
        _, device, verifier = fresh_stack()
        record = measured_record(device, nonce=b"once")
        report = self.make_report(device, [record])
        first = verifier.verify_report(report, expected_nonce=b"once")
        assert first.verdict is Verdict.HEALTHY
        second = verifier.verify_report(report, expected_nonce=b"once")
        assert second.verdict is Verdict.REPLAY

    def test_counter_regression_is_replay(self):
        _, device, verifier = fresh_stack()
        record = measured_record(device)
        newer = self.make_report(device, [record], counter=5)
        older = self.make_report(device, [record], counter=4)
        assert verifier.verify_report(
            newer, enforce_counter=True
        ).verdict is Verdict.HEALTHY
        assert verifier.verify_report(
            older, enforce_counter=True
        ).verdict is Verdict.REPLAY

    def test_mixed_record_report_compromised(self):
        _, device, verifier = fresh_stack()
        clean = measured_record(device, counter=1)
        device.memory.write(0, b"\xBA" * 32, "malware")
        dirty = measured_record(device, nonce=b"m", counter=2)
        result = verifier.verify_report(
            self.make_report(device, [clean, dirty])
        )
        assert result.verdict is Verdict.COMPROMISED
        assert result.record_verdicts == [
            Verdict.HEALTHY, Verdict.COMPROMISED,
        ]

    def test_results_history_and_counts(self):
        _, device, verifier = fresh_stack()
        record = measured_record(device)
        verifier.verify_report(self.make_report(device, [record]))
        verifier.verify_report(self.make_report(device, []))
        counts = verifier.verdict_counts()
        assert counts == {"healthy": 1, "invalid": 1}
