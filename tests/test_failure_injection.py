"""Failure injection across protocols: dead nodes, stale clocks,
replayed pushes under the clock defense."""

import pytest

from repro.errors import ConfigurationError
from repro.ra.report import Verdict
from repro.ra.seed import SeedMonitor, SeedService
from repro.ra.verifier import Verifier
from repro.sim.device import Device
from repro.sim.engine import Simulator
from repro.sim.network import Channel, ReplayAdversary
from repro.swarm import SwarmAttestation, make_topology


class TestSwarmNodeFailure:
    def build(self, dead_node=None):
        sim = Simulator()
        topology = make_topology(sim, count=7, shape="tree")
        verifier = Verifier(sim)
        swarm = SwarmAttestation(topology, verifier)
        if dead_node is not None:
            swarm.services[dead_node].online = False
        return sim, swarm

    def test_healthy_round_beats_deadline(self):
        sim, swarm = self.build()
        nonce = swarm.attest(timeout=10.0)
        sim.run(until=30)
        result = swarm.result_for(nonce)
        assert not result.timed_out
        assert result.all_healthy

    def test_dead_leaf_times_out_whole_round(self):
        sim, swarm = self.build(dead_node=6)
        nonce = swarm.attest(timeout=10.0)
        sim.run(until=30)
        result = swarm.result_for(nonce)
        assert result.timed_out
        assert not result.all_healthy

    def test_dead_interior_node_times_out(self):
        sim, swarm = self.build(dead_node=1)  # parent of 3 and 4
        nonce = swarm.attest(timeout=10.0)
        sim.run(until=30)
        assert swarm.result_for(nonce).timed_out

    def test_dead_root_times_out(self):
        sim, swarm = self.build(dead_node=0)
        nonce = swarm.attest(timeout=10.0)
        sim.run(until=30)
        assert swarm.result_for(nonce).timed_out

    def test_late_aggregate_after_deadline_ignored(self):
        """Once a round timed out, a straggling aggregate does not
        create a second, contradictory result."""
        sim, swarm = self.build()
        nonce = swarm.attest(timeout=0.001)  # everything is 'late'
        sim.run(until=30)
        matching = [r for r in swarm.results if r.nonce == nonce]
        assert len(matching) == 1
        assert matching[0].timed_out


class TestSeedClockDefense:
    def build(self, replay_defense, filters=(), skew_bound=1.0):
        sim = Simulator()
        device = Device(sim, block_count=10, block_size=32)
        device.standard_layout()
        channel = Channel(sim, latency=0.002)
        for filter_fn in filters:
            channel.add_filter(filter_fn)
        device.attach_network(channel)
        verifier = Verifier(sim)
        verifier.enroll(device)
        seed_bytes = b"clock-defense"
        service = SeedService(device, seed_bytes, min_gap=3.0,
                              max_gap=5.0, trigger_count=4)
        monitor = SeedMonitor(
            verifier, channel, device.name, seed_bytes,
            min_gap=3.0, max_gap=5.0, trigger_count=4, grace=1.5,
            replay_defense=replay_defense, clock_skew_bound=skew_bound,
        )
        service.start()
        return sim, verifier, monitor

    def test_clock_defense_accepts_fresh_reports(self):
        sim, verifier, monitor = self.build("clock")
        sim.run(until=60)
        assert monitor.verdict_series() == ["healthy"] * 4
        assert monitor.missing_count() == 0

    def test_clock_defense_flags_replays(self):
        replayer = ReplayAdversary("seed_report", replay_delay=3.0,
                                   copies=1, base_latency=0.002)
        sim, verifier, monitor = self.build(
            "clock", filters=[replayer], skew_bound=1.0
        )
        sim.run(until=60)
        replays = [
            r for r in verifier.results
            if r.verdict is Verdict.REPLAY and "stale" in r.detail
        ]
        assert len(replays) == 4

    def test_counter_defense_unaffected_by_clock_bound(self):
        replayer = ReplayAdversary("seed_report", replay_delay=3.0,
                                   copies=1, base_latency=0.002)
        sim, verifier, monitor = self.build(
            "counter", filters=[replayer]
        )
        sim.run(until=60)
        replays = [
            r for r in verifier.results if r.verdict is Verdict.REPLAY
        ]
        assert len(replays) == 4

    def test_unknown_defense_rejected(self):
        with pytest.raises(ConfigurationError):
            self.build("vibes")
