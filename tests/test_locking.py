"""Locking policies: lock-state trajectories per mechanism."""

import pytest

from repro.errors import ConfigurationError
from repro.ra.locking import (
    POLICY_NAMES,
    AllLock,
    DecLock,
    IncLock,
    NoLock,
    make_policy,
)
from repro.ra.measurement import MeasurementConfig, MeasurementProcess
from repro.sim.device import Device
from repro.sim.engine import Simulator


def make_device(block_count=6):
    sim = Simulator()
    return Device(sim, block_count=block_count, block_size=16)


class TestFactory:
    def test_all_names_constructible(self):
        for name in POLICY_NAMES:
            policy = make_policy(name)
            assert policy.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy("mega-lock")

    def test_extended_flags(self):
        assert make_policy("all-lock-ext").holds_after_end
        assert make_policy("inc-lock-ext").holds_after_end
        assert not make_policy("all-lock").holds_after_end
        assert not make_policy("dec-lock").holds_after_end


class TestNoLock:
    def test_never_locks(self):
        device = make_device()
        policy = NoLock()
        policy.reset(device, range(6))
        assert policy.on_start() == 0
        assert policy.before_block(0) == 0
        assert policy.after_block(0) == 0
        assert policy.on_end() == 0
        assert device.mpu.locked_count() == 0


class TestAllLock:
    def test_locks_everything_at_start(self):
        device = make_device()
        policy = AllLock()
        policy.reset(device, range(6))
        ops = policy.on_start()
        assert ops == 6
        assert device.mpu.locked_count() == 6

    def test_releases_everything_at_end(self):
        device = make_device()
        policy = AllLock()
        policy.reset(device, range(6))
        policy.on_start()
        policy.on_end()
        assert device.mpu.locked_count() == 0

    def test_extended_holds_until_release(self):
        device = make_device()
        policy = AllLock(extended=True)
        policy.reset(device, range(6))
        policy.on_start()
        assert policy.on_end() == 0
        assert device.mpu.locked_count() == 6
        policy.on_release()
        assert device.mpu.locked_count() == 0


class TestDecLock:
    def test_releases_blocks_as_measured(self):
        device = make_device()
        policy = DecLock()
        policy.reset(device, range(6))
        policy.on_start()
        assert device.mpu.locked_count() == 6
        policy.after_block(0)
        assert not device.mpu.is_locked(0)
        assert device.mpu.locked_count() == 5
        policy.after_block(1)
        assert device.mpu.locked_count() == 4

    def test_fully_unlocked_after_traversal(self):
        device = make_device()
        policy = DecLock()
        policy.reset(device, range(6))
        policy.on_start()
        for block in range(6):
            policy.before_block(block)
            policy.after_block(block)
        policy.on_end()
        assert device.mpu.locked_count() == 0


class TestIncLock:
    def test_locks_blocks_as_measured(self):
        device = make_device()
        policy = IncLock()
        policy.reset(device, range(6))
        policy.on_start()
        assert device.mpu.locked_count() == 0
        policy.before_block(0)
        assert device.mpu.is_locked(0)
        policy.before_block(1)
        assert device.mpu.locked_count() == 2

    def test_all_locked_at_end_then_released(self):
        device = make_device()
        policy = IncLock()
        policy.reset(device, range(6))
        policy.on_start()
        for block in range(6):
            policy.before_block(block)
            policy.after_block(block)
        assert device.mpu.locked_count() == 6
        policy.on_end()
        assert device.mpu.locked_count() == 0

    def test_extended_holds_until_release(self):
        device = make_device()
        policy = IncLock(extended=True)
        policy.reset(device, range(6))
        for block in range(6):
            policy.before_block(block)
        assert policy.on_end() == 0
        assert device.mpu.locked_count() == 6
        policy.on_release()
        assert device.mpu.locked_count() == 0


class TestAbort:
    def test_abort_releases_held_locks(self):
        device = make_device()
        policy = DecLock()
        policy.reset(device, range(6))
        policy.on_start()
        policy.after_block(0)
        policy.abort()
        assert device.mpu.locked_count() == 0

    def test_abort_before_reset_is_noop(self):
        DecLock().abort()


class TestEndToEndLockTrajectories:
    """Whole measurements: the MPU history tells the mechanism apart."""

    def run_with(self, policy_name, release_delay=0.0):
        device = make_device()
        config = MeasurementConfig(
            locking=make_policy(policy_name),
            release_delay=release_delay,
        )
        mp = MeasurementProcess(device, config, nonce=b"n", counter=1,
                                mechanism=policy_name)
        device.cpu.spawn("mp", mp.run, priority=50)
        device.sim.run(until=100)
        return device, mp.record

    def test_no_lock_no_ops(self):
        device, _ = self.run_with("no-lock")
        assert device.mpu.lock_ops == 0

    def test_all_lock_intervals_span_measurement(self):
        device, record = self.run_with("all-lock")
        assert len(device.mpu.lock_history) == 6
        for interval in device.mpu.lock_history:
            assert interval.locked_at <= record.t_start + 1e-6
            assert interval.released_at >= record.t_end - 1e-6

    def test_dec_lock_durations_increase_with_position(self):
        device, _ = self.run_with("dec-lock")
        by_block = {i.block: i.duration for i in device.mpu.lock_history}
        durations = [by_block[i] for i in range(6)]
        assert durations == sorted(durations)

    def test_inc_lock_durations_decrease_with_position(self):
        device, _ = self.run_with("inc-lock")
        by_block = {i.block: i.duration for i in device.mpu.lock_history}
        durations = [by_block[i] for i in range(6)]
        assert durations == sorted(durations, reverse=True)

    def test_extended_release_at_tr(self):
        device, record = self.run_with("all-lock-ext", release_delay=5.0)
        assert record.t_release == pytest.approx(record.t_end + 5.0)
        for interval in device.mpu.lock_history:
            assert interval.released_at == pytest.approx(record.t_release)

    def test_inc_lock_ext_release_at_tr(self):
        device, record = self.run_with("inc-lock-ext", release_delay=2.0)
        assert record.t_release == pytest.approx(record.t_end + 2.0)
        assert device.mpu.locked_count() == 0
