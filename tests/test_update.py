"""Secure update and secure erasure built on RA (Section 1's services)."""

import pytest

from repro.errors import ConfigurationError
from repro.malware.transient import TransientMalware
from repro.ra.report import Verdict
from repro.ra.update import (
    UpdateCoordinator,
    UpdateService,
    erasure_fill,
)
from repro.ra.verifier import Verifier
from repro.sim.device import Device
from repro.sim.engine import Simulator
from repro.sim.network import Channel


def update_rig():
    sim = Simulator()
    device = Device(sim, block_count=12, block_size=32)
    device.standard_layout()
    channel = Channel(sim, latency=0.002)
    device.attach_network(channel)
    verifier = Verifier(sim)
    verifier.enroll(device)
    service = UpdateService(device)
    service.install()
    coordinator = UpdateCoordinator(verifier, channel)
    return sim, device, verifier, service, coordinator


def new_firmware(device, blocks):
    return {
        index: bytes([0xF0 + index % 16]) * device.memory.block_size
        for index in blocks
    }


class TestSecureUpdate:
    def test_update_applied_and_attested(self):
        sim, device, verifier, service, coordinator = update_rig()
        firmware = new_firmware(device, [1, 2])
        outcome = coordinator.push_update(device.name, firmware)
        sim.run(until=30)
        assert outcome.installed
        assert outcome.result.verdict is Verdict.HEALTHY
        for index, content in firmware.items():
            assert device.memory.read_block(index) == content
        assert service.updates_applied == 1

    def test_receipt_is_challenge_bound(self):
        sim, device, verifier, service, coordinator = update_rig()
        outcome = coordinator.push_update(
            device.name, new_firmware(device, [3])
        )
        sim.run(until=30)
        assert outcome.confirmed_at is not None
        assert outcome.confirmed_at > outcome.requested_at

    def test_unapplied_update_fails_verification(self):
        """A prover that silently skips the update cannot fake the
        receipt: the verifier expects the *new* image."""
        sim, device, verifier, service, coordinator = update_rig()

        # Sabotage: the device's update handler is replaced by a no-op
        # that still runs the attestation.
        original = service._apply_update

        def skip_writes(proc, message):
            payload = message.payload
            yield from service._measure_and_reply(
                proc, payload["nonce"], message.src, "update"
            )

        service._apply_update = skip_writes
        outcome = coordinator.push_update(
            device.name, new_firmware(device, [1])
        )
        sim.run(until=30)
        assert not outcome.installed
        assert outcome.result.verdict is Verdict.COMPROMISED

    def test_out_of_range_update_rejected(self):
        sim, device, verifier, service, coordinator = update_rig()
        with pytest.raises(ConfigurationError):
            coordinator.push_update(device.name, {99: b"\x00" * 32})

    def test_wrong_size_update_rejected(self):
        sim, device, verifier, service, coordinator = update_rig()
        with pytest.raises(ConfigurationError):
            coordinator.push_update(device.name, {1: b"short"})

    def test_subsequent_attestations_use_new_reference(self):
        """After a confirmed update the new image is the healthy state."""
        from repro.ra.service import OnDemandVerifier
        from repro.ra.smart import SmartAttestation

        sim, device, verifier, service, coordinator = update_rig()
        SmartAttestation(device).install()
        driver = OnDemandVerifier(verifier, channel=coordinator.channel,
                                  endpoint_name="vrf-od")
        coordinator.push_update(device.name, new_firmware(device, [1]))
        exchanges = []
        sim.schedule_at(
            10.0, lambda: exchanges.append(driver.request(device.name))
        )
        sim.run(until=30)
        assert exchanges[0].result.verdict is Verdict.HEALTHY


class TestSecureErasure:
    def test_erasure_fills_and_attests(self):
        sim, device, verifier, service, coordinator = update_rig()
        outcome = coordinator.push_erasure(device.name, seed=b"wipe")
        sim.run(until=30)
        assert outcome.installed
        for index in range(device.block_count):
            assert device.memory.read_block(index) == erasure_fill(
                b"wipe", index, device.memory.block_size
            )

    def test_erasure_destroys_resident_malware(self):
        """The PoSE argument: filling *all* memory leaves malware
        nowhere to hide -- its payload is verifiably gone."""
        sim, device, verifier, service, coordinator = update_rig()
        malware = TransientMalware(device, target_block=5, infect_at=0.0)
        sim.run(until=1.0)
        assert device.memory.read_block(5) == malware.payload
        outcome = coordinator.push_erasure(device.name, seed=b"wipe")
        sim.run(until=30)
        assert outcome.installed
        assert device.memory.read_block(5) != malware.payload

    def test_partial_erasure_detected(self):
        """A cheating prover that spares one block (to preserve its
        malware) fails the proof."""
        sim, device, verifier, service, coordinator = update_rig()
        TransientMalware(device, target_block=5, infect_at=0.0)

        def cheating_erasure(proc, message):
            from repro.ra.update import erasure_fill as fill
            from repro.sim.process import Compute

            payload = message.payload
            seed = payload["seed"]
            memory = device.memory
            for block_index in range(memory.block_count):
                if block_index == 5:
                    continue  # keep the malware alive
                yield Compute(service.write_time_per_block)
                memory.write(
                    block_index,
                    fill(seed, block_index, memory.block_size),
                    "erase",
                )
            yield from service._measure_and_reply(
                proc, payload["nonce"], message.src, "erasure"
            )

        service._apply_erasure = cheating_erasure
        outcome = coordinator.push_erasure(device.name, seed=b"wipe")
        sim.run(until=30)
        assert not outcome.installed
        assert outcome.result.verdict is Verdict.COMPROMISED

    def test_erasure_fill_deterministic_and_distinct(self):
        a = erasure_fill(b"s", 0, 32)
        assert a == erasure_fill(b"s", 0, 32)
        assert a != erasure_fill(b"s", 1, 32)
        assert a != erasure_fill(b"t", 0, 32)

    def test_random_seed_generated_when_omitted(self):
        sim, device, verifier, service, coordinator = update_rig()
        outcome = coordinator.push_erasure(device.name)
        sim.run(until=30)
        assert outcome.installed
