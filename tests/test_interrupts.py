"""Interrupt controller: dispatch, masking, latency accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.device import Device
from repro.sim.engine import Simulator
from repro.sim.process import Atomic, Compute


def make_device():
    sim = Simulator()
    return sim, Device(sim, block_count=4, block_size=16)


class TestDispatch:
    def test_handler_runs_with_payload(self):
        sim, device = make_device()
        seen = []

        def handler(proc, payload):
            yield Compute(0.001)
            seen.append((payload, sim.now))

        device.irq.register("sensor", handler, priority=100)
        sim.schedule(1.0, device.irq.raise_irq, "sensor", 42)
        sim.run()
        assert seen == [(42, pytest.approx(1.001))]

    def test_duplicate_registration_rejected(self):
        _, device = make_device()
        device.irq.register("line", lambda p, v: iter(()))
        with pytest.raises(ConfigurationError):
            device.irq.register("line", lambda p, v: iter(()))

    def test_unknown_line_rejected(self):
        _, device = make_device()
        with pytest.raises(ConfigurationError):
            device.irq.raise_irq("ghost")

    def test_each_raise_spawns_fresh_handler(self):
        sim, device = make_device()
        count = []

        def handler(proc, payload):
            count.append(payload)
            yield Compute(0.0)

        line = device.irq.register("tick", handler)
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, device.irq.raise_irq, "tick", t)
        sim.run()
        assert count == [1.0, 2.0, 3.0]
        assert line.stats.raised == 3
        assert line.stats.handled == 3


class TestMaskingLatency:
    def test_atomic_section_delays_handler(self):
        """The fire-alarm problem in miniature: an IRQ raised during an
        atomic measurement waits until the atomic section ends."""
        sim, device = make_device()
        handled_at = []

        def handler(proc, payload):
            handled_at.append(sim.now)
            yield Compute(0.0)

        line = device.irq.register("fire", handler, priority=1000)

        def atomic_mp(proc):
            yield Atomic(True)
            yield Compute(5.0)
            yield Atomic(False)

        device.cpu.spawn("mp", atomic_mp, priority=1)
        sim.schedule(2.0, device.irq.raise_irq, "fire")
        sim.run()
        assert handled_at == [pytest.approx(5.0)]
        assert line.stats.worst_latency == pytest.approx(3.0)

    def test_latency_zero_when_cpu_free(self):
        sim, device = make_device()

        def handler(proc, payload):
            yield Compute(0.0)

        line = device.irq.register("fast", handler, priority=1000)
        sim.schedule(1.0, device.irq.raise_irq, "fast")
        sim.run()
        assert line.stats.worst_latency == pytest.approx(0.0)
        assert line.stats.mean_latency == pytest.approx(0.0)

    def test_mean_latency_accumulates(self):
        sim, device = make_device()

        def handler(proc, payload):
            yield Compute(0.0)

        line = device.irq.register("line", handler, priority=1000)

        def atomic_hog(proc):
            yield Atomic(True)
            yield Compute(4.0)
            yield Atomic(False)

        device.cpu.spawn("hog", atomic_hog, priority=1)
        sim.schedule(1.0, device.irq.raise_irq, "line")  # waits 3
        sim.schedule(3.0, device.irq.raise_irq, "line")  # waits 1
        sim.run()
        assert line.stats.mean_latency == pytest.approx(2.0)
