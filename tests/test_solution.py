"""Table 1 and Figure 3 as data."""

from repro.core.solution import (
    Feature,
    SOLUTIONS,
    render_taxonomy,
    solution_by_key,
    solution_table,
    taxonomy_tree,
)


class TestFeature:
    def test_marks(self):
        assert Feature.YES.mark == "Y"
        assert Feature.NO.mark == "x"
        assert Feature.PARTIAL.mark == "~"


class TestSolutions:
    def test_six_rows_like_the_paper(self):
        assert len(SOLUTIONS) == 6

    def test_baseline_first(self):
        assert "SMART" in SOLUTIONS[0].name
        assert SOLUTIONS[0].runtime_overhead == "baseline"

    def test_transcribed_detection_cells(self):
        by_key = {s.mechanism_key: s for s in SOLUTIONS}
        assert by_key["smart"].detects_transient is Feature.YES
        assert by_key["inc-lock"].detects_transient is Feature.NO
        assert by_key["dec-lock"].detects_transient is Feature.YES
        assert by_key["smarm"].detects_relocating is Feature.PARTIAL
        assert by_key["smarm"].detects_transient is Feature.NO
        assert by_key["erasmus"].unattended is Feature.YES

    def test_only_self_measurement_handles_unattended(self):
        unattended = [
            s for s in SOLUTIONS if s.unattended is Feature.YES
        ]
        assert len(unattended) == 1
        assert unattended[0].mechanism_key == "erasmus"

    def test_lookup_by_key(self):
        assert solution_by_key("smarm").reference == "[7]"
        assert solution_by_key("nonexistent") is None


class TestRendering:
    def test_table_has_all_rows(self):
        table = solution_table()
        for solution in SOLUTIONS:
            assert solution.name.split(" (")[0] in table

    def test_table_has_header_and_rule(self):
        lines = solution_table().splitlines()
        assert "Solution" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_taxonomy_two_families(self):
        tree = taxonomy_tree()
        assert len(tree) == 2
        assert any("self-measurement" in k for k in tree)

    def test_taxonomy_renders_all_mechanisms(self):
        text = render_taxonomy()
        for token in ("SMARM", "ERASMUS", "SeED", "Dec-Lock", "TyTAN"):
            assert token in text
