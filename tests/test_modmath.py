"""Number theory: egcd, inverses, primality, CRT."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.drbg import HmacDrbg
from repro.crypto.modmath import (
    bit_length_bytes,
    bytes_to_int,
    crt_pair,
    egcd,
    generate_prime,
    int_to_bytes,
    is_probable_prime,
    modinv,
)
from repro.errors import ParameterError

CARMICHAEL_NUMBERS = [561, 1105, 1729, 2465, 2821, 6601, 8911]
KNOWN_PRIMES = [2, 3, 5, 101, 7919, 104729, (1 << 61) - 1]
KNOWN_COMPOSITES = [1, 4, 100, 7917, 104730, (1 << 61) - 3]


class TestEgcd:
    def test_basic(self):
        g, x, y = egcd(240, 46)
        assert g == 2
        assert 240 * x + 46 * y == 2

    @given(
        st.integers(min_value=1, max_value=10**9),
        st.integers(min_value=1, max_value=10**9),
    )
    def test_bezout_identity(self, a, b):
        g, x, y = egcd(a, b)
        assert a * x + b * y == g
        assert a % g == 0 and b % g == 0


class TestModInv:
    def test_basic(self):
        assert modinv(3, 11) == 4

    def test_non_coprime_rejected(self):
        with pytest.raises(ParameterError):
            modinv(6, 9)

    @given(st.integers(min_value=1, max_value=10**6))
    def test_inverse_property_mod_prime(self, a):
        p = 1_000_003
        if a % p == 0:
            return
        inv = modinv(a, p)
        assert (a * inv) % p == 1


class TestPrimality:
    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_known_primes(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("n", KNOWN_COMPOSITES)
    def test_known_composites(self, n):
        assert not is_probable_prime(n)

    @pytest.mark.parametrize("n", CARMICHAEL_NUMBERS)
    def test_carmichael_numbers_rejected(self, n):
        """Carmichael numbers fool Fermat but not Miller-Rabin."""
        assert not is_probable_prime(n)

    def test_negative_and_small(self):
        assert not is_probable_prime(-7)
        assert not is_probable_prime(0)
        assert not is_probable_prime(1)

    def test_large_prime(self):
        # 2^127 - 1 is a Mersenne prime, above the deterministic bound.
        assert is_probable_prime((1 << 127) - 1)

    def test_large_composite(self):
        assert not is_probable_prime(((1 << 127) - 1) * ((1 << 89) - 1))

    @given(st.integers(min_value=2, max_value=50_000))
    @settings(max_examples=60)
    def test_agrees_with_trial_division(self, n):
        def trial(n):
            if n < 2:
                return False
            d = 2
            while d * d <= n:
                if n % d == 0:
                    return False
                d += 1
            return True

        assert is_probable_prime(n) == trial(n)


class TestGeneratePrime:
    def test_bit_length_exact(self):
        drbg = HmacDrbg(b"primes")
        for bits in (16, 32, 64):
            p = generate_prime(bits, drbg)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_deterministic_from_seed(self):
        a = generate_prime(32, HmacDrbg(b"x"))
        b = generate_prime(32, HmacDrbg(b"x"))
        assert a == b

    def test_too_small_rejected(self):
        with pytest.raises(ParameterError):
            generate_prime(4, HmacDrbg(b"x"))


class TestCrt:
    def test_basic(self):
        x = crt_pair(2, 3, 3, 5)
        assert x % 3 == 2 and x % 5 == 3

    def test_non_coprime_rejected(self):
        with pytest.raises(ParameterError):
            crt_pair(1, 6, 2, 9)

    @given(
        st.integers(min_value=0, max_value=10**6),
    )
    def test_roundtrip(self, x):
        m1, m2 = 10**6 + 3, 10**6 + 33  # coprime (both prime-ish picks)
        solved = crt_pair(x % m1, m1, x % m2, m2)
        assert solved % m1 == x % m1
        assert solved % m2 == x % m2


class TestEncoding:
    def test_int_to_bytes_minimal(self):
        assert int_to_bytes(0) == b"\x00"
        assert int_to_bytes(255) == b"\xff"
        assert int_to_bytes(256) == b"\x01\x00"

    def test_int_to_bytes_fixed_length(self):
        assert int_to_bytes(1, 4) == b"\x00\x00\x00\x01"

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            int_to_bytes(-1)

    @given(st.integers(min_value=0, max_value=1 << 128))
    def test_roundtrip(self, value):
        assert bytes_to_int(int_to_bytes(value)) == value

    def test_bit_length_bytes(self):
        assert bit_length_bytes(1) == 1
        assert bit_length_bytes(8) == 1
        assert bit_length_bytes(9) == 2
        assert bit_length_bytes(1024) == 128
