"""HMAC-DRBG: determinism and sampler correctness."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.drbg import HmacDrbg
from repro.errors import ParameterError


class TestDeterminism:
    def test_same_seed_same_stream(self):
        assert HmacDrbg(b"s").generate(64) == HmacDrbg(b"s").generate(64)

    def test_different_seed_different_stream(self):
        assert HmacDrbg(b"s1").generate(32) != HmacDrbg(b"s2").generate(32)

    def test_stream_advances(self):
        drbg = HmacDrbg(b"s")
        assert drbg.generate(32) != drbg.generate(32)

    def test_chunked_reads_differ_from_restart(self):
        # generate() finalizes state per call (SP 800-90A update), so
        # two 16-byte reads are not the same as one 32-byte read --
        # but both are reproducible.
        a = HmacDrbg(b"s")
        chunked = a.generate(16) + a.generate(16)
        b = HmacDrbg(b"s")
        chunked2 = b.generate(16) + b.generate(16)
        assert chunked == chunked2

    def test_reseed_changes_stream(self):
        plain = HmacDrbg(b"s")
        reseeded = HmacDrbg(b"s")
        reseeded.reseed(b"extra entropy")
        assert plain.generate(32) != reseeded.generate(32)

    def test_bytes_generated_counter(self):
        drbg = HmacDrbg(b"s")
        drbg.generate(10)
        drbg.generate(22)
        assert drbg.bytes_generated == 32

    def test_negative_length_rejected(self):
        with pytest.raises(ParameterError):
            HmacDrbg(b"s").generate(-1)

    def test_zero_length(self):
        assert HmacDrbg(b"s").generate(0) == b""


class TestSamplers:
    def test_randbelow_range(self):
        drbg = HmacDrbg(b"s")
        for _ in range(200):
            assert 0 <= drbg.randbelow(7) < 7

    def test_randbelow_covers_all_values(self):
        drbg = HmacDrbg(b"s")
        seen = {drbg.randbelow(4) for _ in range(200)}
        assert seen == {0, 1, 2, 3}

    def test_randbelow_invalid(self):
        with pytest.raises(ParameterError):
            HmacDrbg(b"s").randbelow(0)

    def test_randrange(self):
        drbg = HmacDrbg(b"s")
        for _ in range(100):
            assert 10 <= drbg.randrange(10, 15) < 15

    def test_randrange_empty_rejected(self):
        with pytest.raises(ParameterError):
            HmacDrbg(b"s").randrange(5, 5)

    def test_randint_bits(self):
        drbg = HmacDrbg(b"s")
        for _ in range(50):
            assert 0 <= drbg.randint_bits(12) < 4096

    def test_randint_bits_invalid(self):
        with pytest.raises(ParameterError):
            HmacDrbg(b"s").randint_bits(0)

    def test_uniform_in_unit_interval(self):
        drbg = HmacDrbg(b"s")
        values = [drbg.uniform() for _ in range(300)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert 0.3 < sum(values) / len(values) < 0.7  # sanity, not rigor

    def test_choice(self):
        drbg = HmacDrbg(b"s")
        items = ["a", "b", "c"]
        assert drbg.choice(items) in items

    def test_choice_empty_rejected(self):
        with pytest.raises(ParameterError):
            HmacDrbg(b"s").choice([])

    def test_exponential_positive(self):
        drbg = HmacDrbg(b"s")
        values = [drbg.exponential(2.0) for _ in range(200)]
        assert all(v >= 0 for v in values)
        assert 1.0 < sum(values) / len(values) < 3.5

    def test_exponential_invalid_mean(self):
        with pytest.raises(ParameterError):
            HmacDrbg(b"s").exponential(0.0)


class TestPermutations:
    def test_permutation_is_valid(self):
        perm = HmacDrbg(b"s").permutation(20)
        assert sorted(perm) == list(range(20))

    def test_permutation_deterministic(self):
        assert HmacDrbg(b"s").permutation(16) == HmacDrbg(b"s").permutation(16)

    def test_different_seeds_differ(self):
        # With 16! possibilities a collision would be a bug.
        assert HmacDrbg(b"a").permutation(16) != HmacDrbg(b"b").permutation(16)

    def test_shuffle_in_place(self):
        items = list(range(10))
        result = HmacDrbg(b"s").shuffle(items)
        assert result is items
        assert sorted(items) == list(range(10))

    @settings(max_examples=30)
    @given(st.integers(min_value=1, max_value=64), st.binary(max_size=16))
    def test_permutation_property(self, n, seed):
        perm = HmacDrbg(seed).permutation(n)
        assert sorted(perm) == list(range(n))

    def test_permutations_not_biased_at_zero(self):
        """First element of the permutation covers all positions."""
        seen = set()
        for i in range(120):
            seen.add(HmacDrbg(b"seed%d" % i).permutation(8)[0])
        assert seen == set(range(8))
