"""TraceContext: deterministic minting, immutability, and the causal
thread surviving everything the resilience layer throws at it --
retransmission, prover brownout, payload corruption.  One exchange,
one trace_id, however many attempts it takes."""

import pytest

from repro.core.tradeoff import ScenarioConfig
from repro.obs.core import Observability
from repro.obs.tracectx import TraceContext, mint_trace_id
from repro.resilience import FaultPlan, RetryPolicy
from repro.scenario import Scenario
from repro.units import MiB


def small_config(**overrides) -> ScenarioConfig:
    fields = dict(block_count=8, sim_block_size=MiB, horizon=30.0)
    fields.update(overrides)
    return ScenarioConfig(**fields)


def traced_ids(obs) -> set:
    return {
        span.args["trace_id"]
        for span in obs.spans
        if "trace_id" in span.args
    }


class TestMinting:
    def test_mint_is_deterministic(self):
        a = mint_trace_id("ondemand", "dev", b"\x01\x02")
        b = mint_trace_id("ondemand", "dev", b"\x01\x02")
        assert a == b
        assert len(a) == 16
        assert int(a, 16) >= 0  # hex digits only

    def test_distinct_coordinates_distinct_ids(self):
        assert mint_trace_id("ondemand", "dev", b"\x01") != mint_trace_id(
            "ondemand", "dev", b"\x02"
        )
        assert mint_trace_id("swarm", b"n") != mint_trace_id("lisa", b"n")

    def test_bytes_parts_are_hex_encoded_unambiguously(self):
        # b"ab" hex-encodes to "6162"; the str "ab" must not collide
        assert mint_trace_id(b"ab") != mint_trace_id("ab")

    def test_mint_classmethod_carries_baggage(self):
        ctx = TraceContext.mint("ondemand", "dev0", b"\x07", mech="smart")
        assert ctx.trace_id == mint_trace_id("ondemand", "dev0", b"\x07")
        assert ctx.baggage_dict() == {"mech": "smart"}


class TestContextObject:
    def test_immutable(self):
        ctx = TraceContext("a" * 16)
        with pytest.raises(AttributeError):
            ctx.trace_id = "b" * 16
        with pytest.raises(AttributeError):
            ctx.parent_span_id = 3

    def test_child_keeps_trace_changes_parent(self):
        ctx = TraceContext("c" * 16, baggage={"hop": 0})
        child = ctx.child(parent_span_id=42, hop=1)
        assert child.trace_id == ctx.trace_id
        assert child.parent_span_id == 42
        assert child.baggage_dict() == {"hop": 1}
        # the original is untouched
        assert ctx.parent_span_id is None
        assert ctx.baggage_dict() == {"hop": 0}

    def test_child_inherits_parent_when_not_overridden(self):
        ctx = TraceContext("d" * 16, parent_span_id=7)
        assert ctx.child().parent_span_id == 7

    def test_baggage_is_sorted_and_hashable(self):
        ctx = TraceContext("e" * 16, baggage={"b": 2, "a": 1})
        assert ctx.baggage == (("a", 1), ("b", 2))
        assert hash(ctx) == hash(
            TraceContext("e" * 16, baggage={"a": 1, "b": 2})
        )

    def test_equality(self):
        assert TraceContext("f" * 16) == TraceContext("f" * 16)
        assert TraceContext("f" * 16) != TraceContext("0" * 16)
        assert TraceContext("f" * 16) != "f" * 16

    def test_to_dict_drops_empty_fields(self):
        assert TraceContext("a" * 16).to_dict() == {"trace_id": "a" * 16}
        full = TraceContext("a" * 16, parent_span_id=1, baggage={"k": "v"})
        assert full.to_dict() == {
            "trace_id": "a" * 16,
            "parent_span_id": 1,
            "baggage": {"k": "v"},
        }

    def test_short_prefix(self):
        assert TraceContext("0123456789abcdef").short == "01234567"


class TestNullObsStaysContextFree:
    def test_no_obs_means_no_minting(self):
        """Default (NULL_OBS) runs never allocate a TraceContext --
        message ctx stays None and the exchange records none."""
        scenario = Scenario.build(mechanism="smart", config=small_config())
        scenario.schedule_request(1.0)
        scenario.run()
        (exchange,) = scenario.driver.exchanges
        assert exchange.status == "verified"
        assert exchange.ctx is None


class TestPropagation:
    def test_retransmissions_share_one_trace(self):
        """Reports are eaten until t=3; the retry layer retransmits the
        challenge with the *same* context, so every traced span of the
        multi-attempt exchange lands in a single trace."""
        obs = Observability.enabled()
        plan = FaultPlan(seed=b"t1").loss(
            1.0, start=0.0, end=3.0, match="att_report"
        )
        scenario = Scenario.build(
            mechanism="smart",
            faults=plan,
            config=small_config(),
            retry=RetryPolicy(timeout=1.0, max_retries=5, seed=b"t1-r"),
            obs=obs,
        )
        scenario.schedule_request(1.0)
        scenario.run()

        (exchange,) = scenario.driver.exchanges
        assert exchange.status == "verified"
        assert exchange.attempts >= 2
        assert exchange.ctx is not None
        assert traced_ids(obs) == {exchange.ctx.trace_id}
        round_trips = [s for s in obs.spans if s.name == "ra.round_trip"]
        assert len(round_trips) == 1
        assert round_trips[0].args["trace_id"] == exchange.ctx.trace_id
        assert round_trips[0].args["attempts"] == exchange.attempts

    def test_trace_survives_prover_reset(self):
        """A brownout mid-exchange wipes the prover's volatile state;
        the retransmitted challenge re-measures, but causally it is
        still the same exchange: one trace_id end to end."""
        obs = Observability.enabled()
        plan = FaultPlan(seed=b"t-reset").reset(at=2.0)
        scenario = Scenario.build(
            mechanism="smart",
            faults=plan,
            config=small_config(),
            retry=RetryPolicy(timeout=2.0, max_retries=5, seed=b"t-rst-r"),
            obs=obs,
        )
        scenario.schedule_request(1.0)
        scenario.run()

        (exchange,) = scenario.driver.exchanges
        assert exchange.status == "verified"
        assert exchange.ctx is not None
        assert traced_ids(obs) == {exchange.ctx.trace_id}

    def test_trace_survives_corruption(self):
        """Tampered reports fail MAC verification and get retried; the
        damaged message still carries its context, so even the failed
        hops stay attributable to the exchange's trace."""
        obs = Observability.enabled()
        plan = FaultPlan(seed=b"t-corrupt").corrupt(
            1.0, start=0.0, end=4.0, match="att_report"
        )
        scenario = Scenario.build(
            mechanism="smart",
            faults=plan,
            config=small_config(),
            retry=RetryPolicy(timeout=1.5, max_retries=6, seed=b"t-c-r"),
            obs=obs,
        )
        scenario.schedule_request(1.0)
        scenario.run()

        (exchange,) = scenario.driver.exchanges
        assert exchange.attempts >= 2
        assert exchange.ctx is not None
        assert traced_ids(obs) == {exchange.ctx.trace_id}

    def test_distinct_exchanges_distinct_traces(self):
        obs = Observability.enabled()
        scenario = Scenario.build(
            mechanism="smart", config=small_config(), obs=obs
        )
        scenario.schedule_request(1.0)
        scenario.schedule_request(8.0)
        scenario.run()

        first, second = scenario.driver.exchanges
        assert first.ctx is not None and second.ctx is not None
        assert first.ctx.trace_id != second.ctx.trace_id
        assert traced_ids(obs) == {
            first.ctx.trace_id, second.ctx.trace_id
        }

    def test_exemplar_resolves_to_the_exchange(self):
        """The round-trip histogram's exemplar is the trace_id of the
        slowest exchange in its bucket -- the metrics->trace bridge."""
        obs = Observability.enabled()
        scenario = Scenario.build(
            mechanism="smart", config=small_config(), obs=obs
        )
        scenario.schedule_request(1.0)
        scenario.run()

        (exchange,) = scenario.driver.exchanges
        histograms = [
            inst for inst in obs.metrics.instruments()
            if inst.name == "ra.round_trip.latency"
        ]
        assert len(histograms) == 1
        exemplars = histograms[0].exemplars()
        assert exemplars
        assert {e["trace_id"] for e in exemplars} == {
            exchange.ctx.trace_id
        }
