"""Engine fast-path semantics: coalesced advances and batch draining.

``can_coalesce``/``coalesce_advance`` let a process burn a Compute
delay inline instead of round-tripping the heap; ``run`` drains
co-scheduled same-instant events in a batch.  Both are pure wall-clock
moves, so the tests pin the *observable* contract: when coalescing is
legal, when it must be refused, and that traces and firing order never
change.
"""

import pytest

from repro.errors import SchedulingError
from repro.sim.device import Device
from repro.sim.engine import Simulator
from repro.sim.process import Compute, Process


class TestCanCoalesce:
    def test_refused_outside_run(self):
        sim = Simulator()
        assert not sim.can_coalesce(1.0)

    def test_refused_past_until_bound(self):
        sim = Simulator()
        seen = []

        def probe():
            seen.append((sim.can_coalesce(3.0), sim.can_coalesce(6.0)))

        sim.schedule_at(4.0, probe)
        sim.run(until=10.0)
        # 4.0+3.0=7.0 <= 10.0 ok; 4.0+6.0=10.0 is exactly the bound
        # (allowed); past-the-bound refused below
        assert seen == [(True, True)]
        seen.clear()
        sim2 = Simulator()
        sim2.schedule_at(
            4.0, lambda: seen.append(sim2.can_coalesce(7.0))
        )
        sim2.run(until=10.0)
        assert seen == [False]

    def test_refused_at_equal_time_head(self):
        sim = Simulator()
        seen = []

        def probe():
            # a pending event at exactly now+2.0 was scheduled earlier,
            # so it holds the smaller seq and must fire first
            seen.append(sim.can_coalesce(2.0))

        sim.schedule_at(1.0, probe)
        sim.schedule_at(3.0, lambda: None)
        sim.run(until=10.0)
        assert seen == [False]

    def test_allowed_when_head_strictly_later(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(1.0, lambda: seen.append(sim.can_coalesce(2.0)))
        sim.schedule_at(3.5, lambda: None)
        sim.run(until=10.0)
        assert seen == [True]

    def test_cancelled_head_is_skipped(self):
        sim = Simulator()
        seen = []

        def probe():
            handle.cancel()
            seen.append(sim.can_coalesce(2.0))

        sim.schedule_at(1.0, probe)
        handle = sim.schedule_at(3.0, lambda: None)
        sim.schedule_at(5.0, lambda: None)
        sim.run(until=10.0)
        assert seen == [True]

    def test_refused_after_stop(self):
        sim = Simulator()
        seen = []

        def probe():
            sim.stop()
            seen.append(sim.can_coalesce(1.0))

        sim.schedule_at(1.0, probe)
        sim.run(until=10.0)
        assert seen == [False]


class TestCoalesceAdvance:
    def test_burns_sequence_number(self):
        """A coalesced advance must consume a seq so later same-time
        scheduling tie-breaks exactly as the event-queue path would."""
        sim = Simulator()
        trail = []

        def probe():
            before = sim._seq
            assert sim.can_coalesce(2.0)
            sim.coalesce_advance(2.0)
            trail.append((sim.now, sim._seq - before))

        sim.schedule_at(1.0, probe)
        sim.run(until=10.0)
        assert trail == [(3.0, 1)]

    def test_clock_advances_inline(self):
        sim = Simulator()
        times = []

        def probe():
            sim.coalesce_advance(0.5)
            times.append(sim.now)
            sim.schedule_at(sim.now + 1.0, lambda: times.append(sim.now))

        sim.schedule_at(2.0, probe)
        end = sim.run(until=10.0)
        assert times == [2.5, 3.5]
        assert end == 10.0


class TestPeekAndBatchDrain:
    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        first.cancel()
        assert sim.peek_time() == 2.0
        assert sim.pending_count() == 1

    def test_peek_time_empty(self):
        sim = Simulator()
        assert sim.peek_time() is None

    def test_same_instant_fifo_order(self):
        sim = Simulator()
        order = []
        for tag in range(5):
            sim.schedule_at(3.0, order.append, tag)
        sim.schedule_at(1.0, order.append, "early")
        sim.run(until=10.0)
        assert order == ["early", 0, 1, 2, 3, 4]

    def test_batch_respects_stop(self):
        sim = Simulator()
        order = []
        sim.schedule_at(3.0, order.append, "a")
        sim.schedule_at(3.0, sim.stop)
        sim.schedule_at(3.0, order.append, "never")
        sim.run(until=10.0)
        assert order == ["a"]

    def test_reentrant_run_rejected(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run(until=5.0)
            except SchedulingError as exc:
                errors.append(exc)

        sim.schedule_at(1.0, reenter)
        sim.run(until=10.0)
        assert len(errors) == 1


class TestComputeCoalesce:
    """``Compute(d, coalesce=True)`` must be trace-identical to the
    event-queue path -- it is a hint, never a semantic change."""

    def run_proc(self, coalesce):
        sim = Simulator()
        device = Device(sim, block_count=4, block_size=32)
        device.standard_layout()

        def body(proc):
            for _ in range(6):
                yield Compute(0.25, coalesce=coalesce)

        device.cpu.spawn("p", body, priority=10)
        sim.run(until=5.0)
        return device.trace.render(), sim.now

    def test_trace_identical(self):
        plain, t_plain = self.run_proc(False)
        fast, t_fast = self.run_proc(True)
        assert plain == fast
        assert t_plain == t_fast

    def test_coalesce_with_contending_event(self):
        """An interleaved timer forces the fallback path part-way."""

        def run(coalesce):
            sim = Simulator()
            device = Device(sim, block_count=4, block_size=32)
            device.standard_layout()
            ticks = []

            def body(proc):
                for _ in range(8):
                    yield Compute(0.25, coalesce=coalesce)

            device.cpu.spawn("p", body, priority=10)
            sim.schedule_at(1.1, ticks.append, "tick")
            sim.run(until=5.0)
            return device.trace.render(), ticks

        plain = run(False)
        fast = run(True)
        assert plain == fast
