"""SeED: secret triggers, pushed reports, replay and drop defenses."""

import pytest

from repro.errors import ConfigurationError
from repro.malware.observer import MeasurementObserver
from repro.malware.transient import TransientMalware
from repro.ra.report import Verdict
from repro.ra.seed import SeedMonitor, SeedService, trigger_schedule
from repro.ra.verifier import Verifier
from repro.sim.device import Device
from repro.sim.engine import Simulator
from repro.sim.network import Channel, DropAdversary, ReplayAdversary


def seed_rig(trigger_count=5, min_gap=2.0, max_gap=4.0, grace=1.0,
             filters=()):
    sim = Simulator()
    device = Device(sim, block_count=10, block_size=32)
    device.standard_layout()
    channel = Channel(sim, latency=0.002)
    for filter_fn in filters:
        channel.add_filter(filter_fn)
    device.attach_network(channel)
    verifier = Verifier(sim)
    verifier.enroll(device)
    shared_seed = b"shared-seed-material"
    service = SeedService(
        device, shared_seed, min_gap=min_gap, max_gap=max_gap,
        trigger_count=trigger_count,
    )
    monitor = SeedMonitor(
        verifier, channel, device.name, shared_seed,
        min_gap=min_gap, max_gap=max_gap, trigger_count=trigger_count,
        grace=grace,
    )
    return sim, device, verifier, service, monitor


class TestTriggerSchedule:
    def test_deterministic_from_seed(self):
        a = trigger_schedule(b"s", 1.0, 3.0, 10)
        b = trigger_schedule(b"s", 1.0, 3.0, 10)
        assert a == b

    def test_different_seeds_differ(self):
        assert trigger_schedule(b"s1", 1.0, 3.0, 10) != trigger_schedule(
            b"s2", 1.0, 3.0, 10
        )

    def test_gaps_within_bounds(self):
        times = trigger_schedule(b"s", 2.0, 5.0, 20)
        previous = 0.0
        for t in times:
            gap = t - previous
            assert 2.0 <= gap <= 5.0
            previous = t

    def test_invalid_gaps_rejected(self):
        with pytest.raises(ConfigurationError):
            trigger_schedule(b"s", 0.0, 3.0, 5)
        with pytest.raises(ConfigurationError):
            trigger_schedule(b"s", 3.0, 2.0, 5)

    def test_both_sides_derive_identical_schedules(self):
        sim, device, verifier, service, monitor = seed_rig()
        assert service.schedule == [
            slot.trigger_time for slot in monitor.expected
        ]


class TestHappyPath:
    def test_all_reports_arrive_and_verify(self):
        sim, device, verifier, service, monitor = seed_rig(trigger_count=5)
        service.start()
        sim.run(until=60)
        assert len(service.reports_sent) == 5
        assert monitor.missing_count() == 0
        assert monitor.verdict_series() == ["healthy"] * 5

    def test_counters_strictly_increase(self):
        sim, device, verifier, service, monitor = seed_rig(trigger_count=4)
        service.start()
        sim.run(until=60)
        counters = [r.sent_counter for r in service.reports_sent]
        assert counters == [1, 2, 3, 4]

    def test_compromise_visible_in_pushed_reports(self):
        sim, device, verifier, service, monitor = seed_rig(trigger_count=5)
        service.start()
        # Dwell-based malware resident across the middle of the run.
        TransientMalware(device, target_block=2, infect_at=4.0,
                         leave_at=11.0)
        sim.run(until=60)
        verdicts = monitor.verdict_series()
        assert "compromised" in verdicts
        assert verdicts[0] == "healthy"


class TestSecrecy:
    def test_no_advance_warning_to_software(self):
        """Malware hears about a SeED measurement only when MP actually
        starts -- there is no armed-process side channel beforehand."""
        sim, device, verifier, service, monitor = seed_rig(trigger_count=3)
        observer = MeasurementObserver(device)
        service.start()
        sim.run(until=0.5)  # before the first trigger (min_gap = 2)
        assert observer.measurement_count() == 0
        sim.run(until=60)
        assert observer.measurement_count() == 3
        for event, trigger_time in zip(
            observer.starts(), service.schedule
        ):
            assert event.time >= trigger_time


class TestCommunicationAdversary:
    def test_dropped_reports_flagged_missing(self):
        dropper = DropAdversary(probability=1.0, kind="seed_report",
                                base_latency=0.002)
        sim, device, verifier, service, monitor = seed_rig(
            trigger_count=4, filters=[dropper]
        )
        service.start()
        sim.run(until=60)
        assert dropper.dropped_count == 4
        assert monitor.missing_count() == 4
        missing = [
            r for r in verifier.results if r.verdict is Verdict.MISSING
        ]
        assert len(missing) == 4

    def test_partial_drop(self):
        import random

        dropper = DropAdversary(probability=0.5, kind="seed_report",
                                base_latency=0.002,
                                rng=random.Random(42))
        sim, device, verifier, service, monitor = seed_rig(
            trigger_count=8, filters=[dropper]
        )
        service.start()
        sim.run(until=120)
        assert monitor.missing_count() == dropper.dropped_count
        assert 0 < monitor.missing_count() < 8

    def test_replayed_reports_rejected_by_counter(self):
        replayer = ReplayAdversary("seed_report", replay_delay=0.5,
                                   copies=1, base_latency=0.002)
        sim, device, verifier, service, monitor = seed_rig(
            trigger_count=3, filters=[replayer]
        )
        service.start()
        sim.run(until=60)
        replays = [
            r for r in verifier.results if r.verdict is Verdict.REPLAY
        ]
        assert len(replays) == 3  # one per duplicated report
        assert monitor.missing_count() == 0
