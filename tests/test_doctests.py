"""Run the doctests embedded in module documentation.

Keeps the usage examples in docstrings honest.
"""

import doctest

import pytest

import repro.crypto.drbg
import repro.crypto.hmac
import repro.crypto.timing
import repro.units

MODULES = [
    repro.units,
    repro.crypto.hmac,
    repro.crypto.drbg,
    repro.crypto.timing,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=[m.__name__ for m in MODULES]
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0  # the module really has examples
