"""On-demand protocol plumbing: request/reply over the network."""

import pytest

from repro.errors import ConfigurationError
from repro.ra.measurement import MeasurementConfig
from repro.ra.report import Verdict
from repro.ra.service import AttestationService, listen
from repro.sim.device import Device
from repro.sim.engine import Simulator
from repro.sim.network import Channel

from tests.conftest import make_stack


def install_service(stack, **config_kwargs):
    config = MeasurementConfig(**config_kwargs)
    service = AttestationService(stack.device, config, mechanism="test")
    service.install()
    return service


class TestRoundTrip:
    def test_healthy_exchange(self):
        stack = make_stack()
        install_service(stack)
        exchange = stack.driver.request(stack.device.name)
        stack.sim.run(until=60)
        assert exchange.result is not None
        assert exchange.result.verdict is Verdict.HEALTHY
        assert exchange.round_trip > 0

    def test_timeline_ordering(self):
        stack = make_stack(latency=0.01)
        install_service(stack)
        exchange = stack.driver.request(stack.device.name)
        stack.sim.run(until=60)
        record = exchange.report.records[0]
        assert (
            exchange.requested_at
            < record.t_start
            < record.t_end
            <= exchange.report_received_at
            < exchange.result.verified_at
        )

    def test_network_latency_visible(self):
        stack = make_stack(latency=0.5)
        install_service(stack)
        exchange = stack.driver.request(stack.device.name)
        stack.sim.run(until=60)
        record = exchange.report.records[0]
        assert record.t_start >= exchange.requested_at + 0.5
        assert exchange.report_received_at >= record.t_end + 0.5

    def test_multiple_rounds_in_one_report(self):
        stack = make_stack()
        service = install_service(stack, order="shuffled")
        exchange = stack.driver.request(stack.device.name, rounds=4)
        stack.sim.run(until=120)
        assert len(exchange.report.records) == 4
        counters = [r.counter for r in exchange.report.records]
        assert counters == sorted(counters)
        # Each round gets an independent secret order.
        seeds = {r.order_seed for r in exchange.report.records}
        assert len(seeds) == 4

    def test_queued_requests_all_answered(self):
        stack = make_stack()
        service = install_service(stack)
        first = stack.driver.request(stack.device.name)
        second = stack.driver.request(stack.device.name)
        stack.sim.run(until=120)
        assert first.result is not None and second.result is not None
        assert service.requests_handled == 2

    def test_on_result_callback(self):
        stack = make_stack()
        install_service(stack)
        seen = []
        stack.driver.request(stack.device.name, on_result=seen.append)
        stack.sim.run(until=60)
        assert len(seen) == 1
        assert seen[0].result.verdict is Verdict.HEALTHY

    def test_compromised_device_detected(self):
        stack = make_stack()
        install_service(stack)
        stack.device.memory.write(1, b"\x66" * 32, "malware")
        exchange = stack.driver.request(stack.device.name)
        stack.sim.run(until=60)
        assert exchange.result.verdict is Verdict.COMPROMISED


class TestServiceGuards:
    def test_requires_nic(self):
        sim = Simulator()
        device = Device(sim, block_count=8, block_size=32)
        with pytest.raises(ConfigurationError):
            AttestationService(device, MeasurementConfig())

    def test_non_request_messages_ignored(self):
        stack = make_stack()
        service = install_service(stack)
        stack.driver.endpoint.send(stack.device.name, "chatter", None)
        stack.sim.run(until=10)
        assert service.requests_handled == 0


class TestListen:
    def test_listener_rearms_for_every_message(self):
        sim = Simulator()
        channel = Channel(sim, latency=0.01)
        a = channel.make_endpoint("a")
        b = channel.make_endpoint("b")
        got = []
        listen(b, lambda msg: got.append(msg.kind))
        for index in range(5):
            sim.schedule(index * 0.1, a.send, "b", f"m{index}", None)
        sim.run()
        assert got == [f"m{index}" for index in range(5)]
