"""Context-aware self-measurement scheduling policies."""

import pytest

from repro.core.scheduler_policy import (
    ContextAwareSchedule,
    FixedSchedule,
    SlackSchedule,
)
from repro.errors import ConfigurationError
from repro.sim.device import Device
from repro.sim.engine import Simulator
from repro.sim.task import PeriodicTask


def make_critical(period=1.0, wcet=0.1, offset=0.0):
    sim = Simulator()
    device = Device(sim, block_count=4, block_size=16)
    task = PeriodicTask(device.cpu, "crit", period=period, wcet=wcet,
                        offset=offset)
    return device, task


class TestFixed:
    def test_returns_nominal(self):
        device, _ = make_critical()
        policy = FixedSchedule()
        assert policy(device, 7.3, 2) == 7.3


class TestContextAware:
    def test_defers_when_release_imminent(self):
        device, task = make_critical(period=1.0, wcet=0.1)
        policy = ContextAwareSchedule(task, guard=0.1)
        # Nominal 0.95: next release at 1.0 is within the guard.
        start = policy(device, 0.95, 0)
        assert start == pytest.approx(1.0 + 0.1)
        assert policy.deferrals == 1

    def test_no_deferral_when_clear(self):
        device, task = make_critical(period=1.0, wcet=0.1)
        policy = ContextAwareSchedule(task, guard=0.05)
        assert policy(device, 0.5, 0) == 0.5
        assert policy.deferrals == 0

    def test_nominal_exactly_on_release(self):
        device, task = make_critical(period=1.0, wcet=0.1)
        policy = ContextAwareSchedule(task, guard=0.05)
        start = policy(device, 2.0, 0)
        assert start == pytest.approx(2.0 + 0.1)

    def test_offset_respected(self):
        device, task = make_critical(period=1.0, wcet=0.1, offset=0.4)
        policy = ContextAwareSchedule(task, guard=0.1)
        # Releases at 0.4, 1.4, ...; nominal 1.35 is within guard of 1.4.
        start = policy(device, 1.35, 0)
        assert start == pytest.approx(1.4 + 0.1)

    def test_negative_guard_rejected(self):
        _, task = make_critical()
        with pytest.raises(ConfigurationError):
            ContextAwareSchedule(task, guard=-0.1)


class TestSlack:
    def test_fits_in_current_gap(self):
        device, task = make_critical(period=1.0, wcet=0.1)
        policy = SlackSchedule(task, measurement_time=0.3)
        # Nominal 0.2: gap [0.1, 1.0] has 0.9s of slack; start at 0.2.
        assert policy(device, 0.2, 0) == pytest.approx(0.2)

    def test_slides_to_next_gap_when_tight(self):
        device, task = make_critical(period=1.0, wcet=0.1)
        policy = SlackSchedule(task, measurement_time=0.3)
        # Nominal 0.85: only 0.15 left before the next release; the
        # measurement starts after the next critical job instead.
        start = policy(device, 0.85, 0)
        assert start == pytest.approx(1.1)
        assert policy.deferrals == 1

    def test_oversized_measurement_degrades_gracefully(self):
        device, task = make_critical(period=1.0, wcet=0.1)
        policy = SlackSchedule(task, measurement_time=5.0)
        assert policy.never_fits
        start = policy(device, 0.5, 0)
        assert start >= 0.5

    def test_negative_measurement_rejected(self):
        _, task = make_critical()
        with pytest.raises(ConfigurationError):
            SlackSchedule(task, measurement_time=-1.0)


class TestEndToEndDeferral:
    def test_context_aware_erasmus_protects_critical_task(self):
        """With the context-aware policy, atomic self-measurements dodge
        the critical releases, eliminating deadline misses."""
        from repro.ra.erasmus import ErasmusService
        from repro.ra.measurement import MeasurementConfig
        from repro.units import MiB

        def run(policy_factory):
            sim = Simulator()
            device = Device(sim, block_count=8, block_size=32,
                            sim_block_size=4 * MiB)  # MP ~ 0.22 s
            device.standard_layout()
            critical = PeriodicTask(device.cpu, "crit", period=0.5,
                                    wcet=0.01, priority=100)
            policy = policy_factory(critical) if policy_factory else None
            config = MeasurementConfig(atomic=True, priority=50)
            service = ErasmusService(device, period=1.0, config=config,
                                     scheduler=policy)
            service.start()
            sim.run(until=10.0)
            return critical.stats(), service

        fixed_stats, _ = run(None)
        aware_stats, _ = run(
            lambda crit: SlackSchedule(crit, measurement_time=0.25)
        )
        assert aware_stats.worst_response < fixed_stats.worst_response
        assert aware_stats.deadline_misses == 0
