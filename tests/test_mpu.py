"""MPU lock bits, fault policies, accounting."""

import pytest

from repro.errors import LockStateError, MemoryFault
from repro.sim.engine import Simulator
from repro.sim.mpu import FaultPolicy, MemoryProtectionUnit


def make_mpu(policy=FaultPolicy.RAISE, count=8):
    sim = Simulator()
    return sim, MemoryProtectionUnit(sim, count, policy)


class TestLockState:
    def test_initially_unlocked(self):
        _, mpu = make_mpu()
        assert mpu.locked_blocks() == []
        assert mpu.locked_count() == 0

    def test_lock_unlock(self):
        _, mpu = make_mpu()
        mpu.lock(3)
        assert mpu.is_locked(3)
        mpu.unlock(3)
        assert not mpu.is_locked(3)

    def test_double_lock_rejected(self):
        _, mpu = make_mpu()
        mpu.lock(3)
        with pytest.raises(LockStateError):
            mpu.lock(3)

    def test_unlock_unlocked_rejected(self):
        _, mpu = make_mpu()
        with pytest.raises(LockStateError):
            mpu.unlock(3)

    def test_lock_all_unlock_all(self):
        _, mpu = make_mpu()
        mpu.lock_all()
        assert mpu.locked_count() == 8
        mpu.unlock_all()
        assert mpu.locked_count() == 0

    def test_lock_all_idempotent_with_partial_locks(self):
        _, mpu = make_mpu()
        mpu.lock(2)
        mpu.lock_all()  # must not double-lock block 2
        assert mpu.locked_count() == 8

    def test_lock_many(self):
        _, mpu = make_mpu()
        mpu.lock_many([1, 3, 5])
        assert mpu.locked_blocks() == [1, 3, 5]


class TestEnforcement:
    def test_unlocked_write_allowed(self):
        _, mpu = make_mpu()
        assert mpu.check_write(0, "actor") is True
        assert mpu.faults == []

    def test_raise_policy(self):
        _, mpu = make_mpu(FaultPolicy.RAISE)
        mpu.lock(0)
        with pytest.raises(MemoryFault) as err:
            mpu.check_write(0, "actor")
        assert err.value.block_index == 0

    def test_drop_policy_returns_false(self):
        _, mpu = make_mpu(FaultPolicy.DROP)
        mpu.lock(0)
        assert mpu.check_write(0, "actor") is False

    def test_faults_recorded_with_actor(self):
        sim, mpu = make_mpu(FaultPolicy.DROP)
        mpu.lock(0)
        mpu.check_write(0, "mallory")
        mpu.check_write(0, "mallory")
        mpu.check_write(0, "app")
        assert mpu.fault_count_by_actor() == {"mallory": 2, "app": 1}


class TestAccounting:
    def test_lock_history_durations(self):
        sim, mpu = make_mpu()
        sim.schedule(1.0, mpu.lock, 2)
        sim.schedule(4.0, mpu.unlock, 2)
        sim.run()
        assert len(mpu.lock_history) == 1
        interval = mpu.lock_history[0]
        assert interval.block == 2
        assert interval.duration == pytest.approx(3.0)
        assert mpu.total_locked_time() == pytest.approx(3.0)

    def test_mean_lock_duration(self):
        sim, mpu = make_mpu()
        sim.schedule(0.0, mpu.lock, 0)
        sim.schedule(2.0, mpu.unlock, 0)
        sim.schedule(2.0, mpu.lock, 1)
        sim.schedule(6.0, mpu.unlock, 1)
        sim.run()
        assert mpu.mean_lock_duration() == pytest.approx(3.0)

    def test_mean_lock_duration_empty(self):
        _, mpu = make_mpu()
        assert mpu.mean_lock_duration() == 0.0

    def test_op_counters(self):
        _, mpu = make_mpu()
        mpu.lock_all()
        mpu.unlock_all()
        assert mpu.lock_ops == 8
        assert mpu.unlock_ops == 8


class TestReleaseSignal:
    def test_unlock_fires_release_signal(self):
        sim, mpu = make_mpu()
        released = []
        mpu.release_signal.wait(released.append)
        mpu.lock(5)
        mpu.unlock(5)
        sim.run()
        assert released == [5]

    def test_waiting_writer_pattern(self):
        """A writer blocked on a lock retries after the release."""
        sim, mpu = make_mpu()
        mpu.lock(1)
        outcome = []

        def try_write(_value=None):
            if mpu.is_locked(1):
                mpu.release_signal.wait(try_write)
                return
            outcome.append(sim.now)

        sim.schedule(0.5, try_write)
        sim.schedule(3.0, mpu.unlock, 1)
        sim.run()
        assert outcome == [3.0]
