"""Whole-stack soak: every service on one device, plus determinism.

One prover runs the fire alarm, ERASMUS self-measurement, SeED pushes
and an on-demand SMART service simultaneously for minutes of simulated
time while malware comes and goes.  The suite then asserts global
invariants -- and that the entire run is bit-for-bit reproducible.
"""

import pytest

from repro.apps.firealarm import FireAlarmApp
from repro.malware.transient import TransientMalware
from repro.ra.erasmus import CollectorVerifier, ErasmusService
from repro.ra.measurement import MeasurementConfig
from repro.ra.seed import SeedMonitor, SeedService
from repro.ra.service import OnDemandVerifier
from repro.ra.smart import SmartAttestation
from repro.ra.verifier import Verifier
from repro.sim.device import Device
from repro.sim.engine import Simulator
from repro.sim.network import Channel
from repro.units import MiB


def run_soak(horizon=120.0):
    sim = Simulator()
    device = Device(sim, block_count=24, block_size=32,
                    sim_block_size=MiB)
    device.standard_layout()
    channel = Channel(sim, latency=0.003, trace=device.trace)
    device.attach_network(channel)
    verifier = Verifier(sim)
    verifier.enroll(device)

    app = FireAlarmApp(device, period=0.5, sample_wcet=0.002,
                       priority=100,
                       data_block=device.memory.regions["data"].end - 1)

    smart = SmartAttestation(device)
    smart.config.normalize_mutable = True
    smart.install()
    driver = OnDemandVerifier(verifier, channel, endpoint_name="vrf-od")

    erasmus = ErasmusService(
        device, period=4.0,
        config=MeasurementConfig(atomic=True, priority=50,
                                 normalize_mutable=True),
        history_size=64,
    )
    erasmus.start()
    collector = CollectorVerifier(verifier, channel,
                                  endpoint_name="vrf-collect")
    collector.collect_every(device.name, period=30.0,
                            count=int(horizon / 30.0))

    seed_service = SeedService(
        device, b"soak-seed", verifier_name="vrf-push",
        min_gap=10.0, max_gap=20.0, trigger_count=6,
        config=MeasurementConfig(atomic=True, priority=45,
                                 normalize_mutable=True),
    )
    monitor = SeedMonitor(
        verifier, channel, device.name, b"soak-seed",
        min_gap=10.0, max_gap=20.0, trigger_count=6, grace=3.0,
        endpoint_name="vrf-push",
    )
    seed_service.start()

    for at in (7.0, 37.0, 67.0, 97.0):
        sim.schedule_at(at, driver.request, device.name)

    # Two malware visits: one long dwell (caught by everything), one
    # short dwell between measurements.
    TransientMalware(device, target_block=2, infect_at=50.0,
                     leave_at=62.0, name="long")
    TransientMalware(device, target_block=3, infect_at=80.2,
                     leave_at=81.8, name="short")

    sim.run(until=horizon)
    return {
        "sim": sim,
        "device": device,
        "verifier": verifier,
        "app": app,
        "erasmus": erasmus,
        "collector": collector,
        "monitor": monitor,
        "driver": driver,
        "channel": channel,
    }


@pytest.fixture(scope="module")
def soak():
    return run_soak()


class TestGlobalInvariants:
    def test_all_protocols_progressed(self, soak):
        assert soak["erasmus"].measurements_done >= 28
        # The collection scheduled exactly at the horizon may not
        # complete its verify before the clock stops.
        assert len(soak["collector"].collections) >= 3
        assert soak["monitor"].missing_count() == 0
        assert len(soak["driver"].exchanges) == 4
        assert all(
            e.result is not None for e in soak["driver"].exchanges
        )

    def test_no_spurious_verdicts(self, soak):
        counts = soak["verifier"].verdict_counts()
        assert counts.get("invalid", 0) == 0
        assert counts.get("replay", 0) == 0
        assert counts.get("missing", 0) == 0

    def test_long_dwell_detected_everywhere(self, soak):
        # On-demand at t=37 (clean) vs t=... the long dwell spans
        # 50-62: ERASMUS measurements at 52/56/60 catch it, and SeED
        # pushes in that window too.
        dirty = []
        for collection in soak["collector"].collections:
            dirty.extend(collection.dirty_intervals)
        assert any(50.0 <= start <= 62.0 for start, _ in dirty)

    def test_short_dwell_missed_by_4s_grid(self, soak):
        # 1.6 s dwell strictly inside (80, 84): no measurement at 80.x
        # covers it (grid points 80 and 84 are outside the residency).
        dirty = []
        for collection in soak["collector"].collections:
            dirty.extend(collection.dirty_intervals)
        assert not any(80.1 <= start <= 81.9 for start, _ in dirty)

    def test_code_region_clean_at_end(self, soak):
        # The data region legitimately holds sensor readings; the code
        # region must be pristine after both malware visits ended.
        code = soak["device"].memory.regions["code"]
        dirty_code = [
            block for block in soak["device"].memory.dirty_blocks()
            if block in code
        ]
        assert dirty_code == []

    def test_fire_alarm_survived_the_circus(self, soak):
        stats = soak["app"].task.stats()
        assert stats.jobs_finished > 200
        # Misses only plausible while ~0.16s atomic measurements run;
        # the 0.5 s period absorbs them.
        assert stats.miss_rate < 0.02

    def test_cpu_accounting_consistent(self, soak):
        busy = sum(
            proc.cpu_time for proc in soak["device"].cpu.processes
        )
        assert busy <= soak["sim"].now + 1e-6
        assert busy > 0


class TestDeterminism:
    def test_identical_reruns(self):
        """The entire multi-protocol run is reproducible bit for bit:
        same verdict sequence, same traces, same message log."""
        first = run_soak(horizon=60.0)
        second = run_soak(horizon=60.0)

        verdicts_1 = [
            (r.verified_at, r.verdict.value, r.device)
            for r in first["verifier"].results
        ]
        verdicts_2 = [
            (r.verified_at, r.verdict.value, r.device)
            for r in second["verifier"].results
        ]
        assert verdicts_1 == verdicts_2

        log_1 = [
            (m.sent_at, m.src, m.dst, m.kind)
            for m in first["channel"].log
        ]
        log_2 = [
            (m.sent_at, m.src, m.dst, m.kind)
            for m in second["channel"].log
        ]
        assert log_1 == log_2

        trace_1 = [str(r) for r in first["device"].trace]
        trace_2 = [str(r) for r in second["device"].trace]
        assert trace_1 == trace_2
