#!/usr/bin/env python3
"""Software-only attestation of a legacy device (Section 2.1).

A legacy prover has no ROM key, no MPU, no secure timer -- "this is
the only RA option for legacy devices".  The verifier's only lever is
*time*: a challenge-derived checksum traversal whose honest duration it
knows.  This script plays the whole game:

1. an honest device: correct checksum, on time -> accepted;
2. naive malware: stays resident, checksum wrong -> caught;
3. redirecting malware: serves stashed clean bytes, checksum right but
   measurably late -> caught by the timing threshold (Pioneer's bet);
4. an optimized adversary 2x faster than the verifier assumed: correct
   *and* on time -> accepted while infected, reproducing why "security
   of this approach is uncertain" after [8].

Run:  python examples/legacy_device_swatt.py
"""

from repro.malware import TransientMalware
from repro.ra.software import SoftwareAttestation, SoftwareVerifier
from repro.sim import Channel, Device, Simulator
from repro.units import MiB


def play(label, redirect_penalty=0.0, forgery_speedup=1.0,
         infected=False):
    sim = Simulator()
    device = Device(sim, name="legacy", block_count=16, block_size=32,
                    sim_block_size=MiB)
    channel = Channel(sim, latency=0.005)
    device.attach_network(channel)
    service = SoftwareAttestation(
        device, redirect_penalty=redirect_penalty,
        forgery_speedup=forgery_speedup,
    )
    service.install()
    reads = device.block_count * service.iterations
    honest_time = device.timing.hash_time(
        "sha256", device.memory.sim_block_size * reads
    )
    verifier = SoftwareVerifier(
        channel,
        reference_blocks=list(device.memory.benign_image()),
        honest_time=honest_time,
    )
    if infected:
        TransientMalware(device, target_block=5, infect_at=0.0)
    sim.schedule_at(0.5, verifier.challenge, device.name)
    sim.run(until=60)
    verdict = verifier.verdicts[0]
    mark = "ACCEPTED" if verdict.accepted else "rejected"
    print(
        f"{label:<38} checksum={'ok ' if verdict.correct else 'BAD'} "
        f"elapsed={verdict.elapsed:7.4f}s "
        f"(limit {verdict.threshold:.4f}s) -> {mark}"
    )
    return verdict


def main() -> None:
    print("software-based RA of a legacy device (timing game)\n")
    honest = play("honest device")
    naive = play("naive resident malware", infected=True)
    redirect = play("redirecting malware (penalty 2ms/read)",
                    redirect_penalty=2e-3, infected=True)
    forger = play("optimized adversary (2x faster)",
                  redirect_penalty=2e-3, forgery_speedup=0.5,
                  infected=True)

    print(
        "\nthe timing defense works against the adversary it was "
        "designed for --\nand silently fails against a faster one: the "
        "paper's reason to prefer\nhybrid designs with minimal hardware "
        "support (SMART and successors)."
    )
    assert honest.accepted
    assert not naive.accepted
    assert not redirect.accepted
    assert forger.accepted  # the scheme's documented failure mode


if __name__ == "__main__":
    main()
