"""Fleet campaigns: sweep the whole experiment space in one shot.

A single `Simulator` answers one question about one prover.  The fleet
layer answers distribution-level questions -- "how does detection
probability scale with T_M?", "what does each locking policy cost a
writer workload?" -- by planning a deterministic grid of independent
runs, executing them (serially here; `workers=N` shards them over a
process pool), and aggregating the structured telemetry.

This walkthrough builds a small custom campaign from scratch; the
canned ones (`repro fleet run --campaign qoa`) are the same thing at
larger scale.
"""

from repro.fleet import (
    CampaignSpec,
    ExecutorConfig,
    execute_campaign,
    pending_specs,
    summarize,
)
from repro.units import MiB


def main() -> None:
    # 1. Declare the sweep: fixed base fields, swept axes, seeds.
    campaign = CampaignSpec(
        name="example-sweep",
        base={
            "block_count": 16,
            "sim_block_size": 2 * MiB,
            "horizon": 24.0,
            "dwell": 5.0,  # transient malware resident for 5 s
            "workload": "firealarm",
        },
        axes={
            "mechanism": ["smart", "erasmus"],
            "adversary": ["none", "transient"],
        },
        seeds=range(3),
    )
    specs = campaign.plan()
    print(f"campaign {campaign.name!r} (hash {campaign.spec_hash}) "
          f"expands to {len(specs)} runs:")
    for spec in specs[:4]:
        print(f"  {spec.run_id}")
    print(f"  ... and {len(specs) - 4} more")

    # Run IDs are pure functions of the spec: replanning yields the
    # same IDs, which is what makes campaigns resumable.
    assert [s.run_id for s in campaign.plan()] == [s.run_id for s in specs]

    # 2. Execute.  Serial here; ExecutorConfig(workers=4) uses a pool.
    report = execute_campaign(specs, ExecutorConfig(workers=0))
    print(f"\n{report.summary_line()}")
    assert all(result.ok for result in report.results)

    # 3. Every run folds into one structured RunResult.
    sample = report.results[0]
    print(f"\none result ({sample.run_id}):")
    print(f"  verdicts            : {sample.verdict_counts}")
    print(f"  measurements        : {sample.measurements} "
          f"(first took {sample.mp_duration:.3f}s simulated)")
    print(f"  hashed              : {sample.hash_bytes / MiB:.0f} MiB "
          f"in {sample.hash_ops} block ops")
    print(f"  deadline miss rate  : {sample.miss_rate:.1%}")

    # 4. Aggregate across the grid.
    summary = summarize(report.results)
    print(f"\n{summary.render()}")

    # The 5-second-resident malware spans at least one measurement of
    # every mechanism here, so each adversarial cell detects it...
    for mechanism in ("smart", "erasmus"):
        cell = summary.group(mechanism, "transient")
        assert cell.detection_rate == 1.0, (mechanism, cell.detection_rate)
        # ...and no clean run ever produces a false positive.
        assert summary.group(mechanism, "none").detected == 0

    # 5. Determinism: re-executing the same plan reproduces the same
    # telemetry byte for byte (this is also the serial/parallel parity
    # guarantee the executor tests enforce).
    again = execute_campaign(specs, ExecutorConfig(workers=0))
    assert [r.to_json_line() for r in again.results] == [
        r.to_json_line() for r in report.results
    ]

    # 6. Resume support: completed runs drop out of the pending set.
    assert pending_specs(specs, report.results) == []
    assert len(pending_specs(specs, report.results[:-2])) == 2
    print("\nparity + resume checks passed")


if __name__ == "__main__":
    main()
