#!/usr/bin/env python3
"""Quickstart: one on-demand attestation, start to finish.

``Scenario.build`` wires the smallest complete rig -- a simulated
prover device, a network channel, an enrolled verifier -- then we run
one SMART-style (atomic) attestation while the device is clean,
infect the device, run a second one, and print both verdicts with
their timelines.

Run:  python examples/quickstart.py
"""

from repro import Scenario
from repro.core.tradeoff import ScenarioConfig
from repro.malware import TransientMalware
from repro.units import MiB


def main() -> None:
    # --- build the world -------------------------------------------------
    # A prover with 64 blocks of attested memory.  Each real block
    # stands in for 1 MiB of simulated memory, so measurement latency
    # is realistic (64 MiB at ODROID-XU4 hashing speed).  The factory
    # wires simulator, device (+standard layout), channel, and verifier
    # enrollment in the canonical order, then installs SMART: atomic,
    # sequential, uninterruptible measurement.
    scenario = Scenario.build(
        mechanism="smart",
        config=ScenarioConfig(
            block_count=64,
            block_size=32,
            sim_block_size=MiB,
            algorithm="blake2s",
        ),
        latency=0.005,  # 5 ms network
    )
    sim, device, driver = scenario.sim, scenario.device, scenario.driver

    # --- attestation #1: clean device -------------------------------------
    first = driver.request(device.name)
    sim.run(until=30.0)
    print("attestation #1 (clean device)")
    print(f"  verdict    : {first.result.verdict.value}")
    record = first.report.records[0]
    print(f"  MP window  : t_s={record.t_start:.3f}s "
          f"t_e={record.t_end:.3f}s "
          f"(duration {record.duration:.3f}s)")
    print(f"  round trip : {first.round_trip:.3f}s")

    # --- infect, then attestation #2 ---------------------------------------
    # Malware lands in block 10 (inside the code region) at t=35.
    TransientMalware(device, target_block=10, infect_at=35.0)
    sim.run(until=40.0)

    second = driver.request(device.name)
    sim.run(until=70.0)
    print("\nattestation #2 (after infection)")
    print(f"  verdict    : {second.result.verdict.value}")
    print(f"  detail     : {second.result.detail}")

    assert first.result.healthy
    assert not second.result.healthy
    print("\nquickstart OK: clean device passed, infected device caught")


if __name__ == "__main__":
    main()
