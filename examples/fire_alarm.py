#!/usr/bin/env python3
"""The Section 2.5 fire alarm: safety vs atomic attestation.

A bare-metal sensor/actuator loop samples a temperature sensor every
second.  A fire breaks out moments after an attestation of 1 GiB of
memory begins.  This script runs the scenario four ways -- no
attestation, SMART (atomic), Inc-Lock (interruptible with locking),
SMARM (interruptible, shuffled) -- and prints how long the building
burned before the alarm sounded.

Run:  python examples/fire_alarm.py
"""

from repro.apps import FireAlarmApp
from repro.ra import SmarmAttestation, SmartAttestation, Verifier
from repro.ra.locking import make_policy
from repro.ra.measurement import MeasurementConfig
from repro.ra.service import AttestationService, OnDemandVerifier
from repro.sim import Channel, Device, Simulator
from repro.units import GiB


def run_scenario(mechanism: str) -> tuple:
    """Returns (mp_duration, alarm_latency, deadline_misses)."""
    sim = Simulator()
    # 128 real blocks standing in for 1 GiB of attested memory.
    device = Device(
        sim, block_count=128, block_size=32,
        sim_block_size=GiB // 128,
    )
    device.standard_layout()
    channel = Channel(sim, latency=0.005)
    device.attach_network(channel)
    verifier = Verifier(sim)
    verifier.enroll(device)
    driver = OnDemandVerifier(verifier, channel)

    app = FireAlarmApp(
        device,
        period=1.0,           # "checks ... every second"
        sample_wcet=0.002,
        priority=100,         # highest application priority...
        threshold=60.0,
    )

    service = None
    if mechanism == "smart":
        service = SmartAttestation(device)          # ...but atomic wins
    elif mechanism == "smarm":
        service = SmarmAttestation(device, rounds=1, priority=50)
    elif mechanism != "none":
        service = AttestationService(
            device,
            MeasurementConfig(
                locking=make_policy(mechanism),
                priority=50,
                normalize_mutable=True,
            ),
            mechanism=mechanism,
        )

    request_at = 2.0
    if service is not None:
        service.install()
        sim.schedule_at(request_at, driver.request, device.name)

    # The fire ignites 100 ms after the challenge arrives -- i.e. just
    # after MP starts, the paper's worst case.
    app.start_fire(request_at + 0.1)
    sim.run(until=60.0)

    mp_duration = 0.0
    if service is not None and service.reports_sent:
        mp_duration = service.reports_sent[0].records[0].duration
    outcome = app.outcome()
    return mp_duration, outcome.alarm_latency, outcome.deadline_misses


def main() -> None:
    print("fire alarm with 1 GiB attested memory, sensor period 1 s")
    print("fire ignites just after the measurement starts\n")
    print(f"{'mechanism':<12} {'MP [s]':>8} {'alarm latency [s]':>18} "
          f"{'deadline misses':>16}")
    print("-" * 58)
    results = {}
    for mechanism in ("none", "smart", "inc-lock", "smarm"):
        mp, latency, misses = run_scenario(mechanism)
        results[mechanism] = latency
        latency_text = f"{latency:18.3f}" if latency else f"{'n/a':>18}"
        print(f"{mechanism:<12} {mp:>8.3f} {latency_text} {misses:>16}")

    print(
        "\nthe paper's point, reproduced: the atomic baseline holds the "
        "alarm hostage for the whole ~7 s measurement, while the "
        "interruptible mechanisms answer within one sensor period."
    )
    assert results["smart"] > 5.0
    assert results["inc-lock"] < 1.1
    assert results["smarm"] < 1.1


if __name__ == "__main__":
    main()
