#!/usr/bin/env python3
"""Full incident response: detect, wipe, reflash, re-attest.

Section 1: "If Vrf detects malware presence, Prv's software can be
re-set or rolled back ... RA can also be used to construct other
security services, such as software updates [25] and secure deletion
[21]."  This script runs that whole loop:

1. routine attestation finds the device healthy;
2. malware lands; the next attestation says COMPROMISED;
3. the verifier orders a *proof of secure erasure* -- all memory is
   overwritten with a verifier-chosen stream, destroying the malware,
   and the device proves it;
4. the verifier then pushes fresh firmware via *secure update*, whose
   attestation receipt doubles as the installation proof;
5. a final routine attestation confirms the device is healthy again.

Run:  python examples/incident_response.py
"""

from repro.malware import TransientMalware
from repro.ra import SmartAttestation, UpdateCoordinator, UpdateService, Verifier
from repro.ra.service import OnDemandVerifier
from repro.sim import Channel, Device, Simulator


def attest(sim, driver, device_name, at):
    exchanges = []
    sim.schedule_at(
        at, lambda: exchanges.append(driver.request(device_name))
    )
    return exchanges


def main() -> None:
    sim = Simulator()
    device = Device(sim, name="plc-7", block_count=24, block_size=32)
    device.standard_layout()
    channel = Channel(sim, latency=0.005)
    device.attach_network(channel)

    verifier = Verifier(sim)
    verifier.enroll(device)
    SmartAttestation(device).install()
    UpdateService(device).install()

    driver = OnDemandVerifier(verifier, channel, endpoint_name="vrf-od")
    coordinator = UpdateCoordinator(verifier, channel)

    # 1. routine check -----------------------------------------------------
    first = attest(sim, driver, device.name, at=1.0)

    # 2. infection + detection ------------------------------------------------
    malware = TransientMalware(device, target_block=4, infect_at=5.0,
                               name="implant")
    second = attest(sim, driver, device.name, at=10.0)

    # 3. secure erasure (scheduled after the bad verdict) -----------------------
    erasure_holder = []
    sim.schedule_at(
        15.0,
        lambda: erasure_holder.append(
            coordinator.push_erasure(device.name, seed=b"wipe-2026")
        ),
    )

    # 4. reflash with fresh firmware ---------------------------------------------
    firmware = {
        index: bytes([0xC0 | index]) * device.memory.block_size
        for index in range(device.block_count)
    }
    update_holder = []
    sim.schedule_at(
        25.0,
        lambda: update_holder.append(
            coordinator.push_update(device.name, firmware)
        ),
    )

    # 5. final routine check ----------------------------------------------------
    final = attest(sim, driver, device.name, at=35.0)

    sim.run(until=60.0)

    erasure = erasure_holder[0]
    update = update_holder[0]
    print("incident response timeline for plc-7")
    print(f"  t= 1.0  routine attestation : "
          f"{first[0].result.verdict.value}")
    print(f"  t= 5.0  malware lands in block 4")
    print(f"  t=10.0  routine attestation : "
          f"{second[0].result.verdict.value}")
    print(f"  t=15.0  proof of secure erasure: "
          f"{'OK' if erasure.installed else 'FAILED'} "
          f"(confirmed t={erasure.confirmed_at:.2f})")
    print(f"          malware payload destroyed: "
          f"{device.memory.read_block(4) != malware.payload}")
    print(f"  t=25.0  secure update (full reflash): "
          f"{'OK' if update.installed else 'FAILED'} "
          f"(confirmed t={update.confirmed_at:.2f})")
    print(f"  t=35.0  routine attestation : "
          f"{final[0].result.verdict.value}")

    assert first[0].result.healthy
    assert not second[0].result.healthy
    assert erasure.installed
    assert update.installed
    assert final[0].result.healthy
    print("\ndevice recovered and re-trusted, end to end.")


if __name__ == "__main__":
    main()
