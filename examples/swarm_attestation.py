#!/usr/bin/env python3
"""Collective attestation of a device swarm (Section 2.1 extension).

Fifteen devices in a binary-tree mesh.  A verifier attests the whole
swarm through the root with one request: the request floods down the
spanning tree, every node measures itself, and authenticated
aggregates fold upward.  Three of the nodes are infected; the verifier
learns the healthy count and the identities of the dirty nodes, paying
per-hop network latency instead of fifteen round trips.

Run:  python examples/swarm_attestation.py
"""

from repro.malware import TransientMalware
from repro.ra import Verifier
from repro.sim import Simulator
from repro.swarm import SwarmAttestation, make_topology


def main() -> None:
    sim = Simulator()
    topology = make_topology(
        sim, count=15, shape="tree", per_hop_latency=0.004,
        block_count=16,
    )
    verifier = Verifier(sim)
    swarm = SwarmAttestation(topology, verifier)

    for index in (4, 9, 13):
        TransientMalware(
            topology.devices[index], target_block=3, infect_at=0.0,
            name=f"mal-{index}",
        )

    nonce = swarm.attest()
    sim.run(until=60.0)
    result = swarm.result_for(nonce)

    print(f"swarm of {len(topology.devices)} devices, binary tree, "
          f"{topology.per_hop_latency * 1e3:.0f} ms per hop")
    print(f"aggregate MAC valid : {result.valid}")
    print(f"healthy             : {result.healthy}/{result.total}")
    print(f"dirty nodes         : {', '.join(result.dirty_nodes)}")
    print(f"completed at        : t = {result.completed_at:.3f} s")

    depth = max(
        topology.hop_distance(0, node)
        for node in range(len(topology.devices))
    )
    print(f"tree depth          : {depth} hops "
          "(one flood down + one aggregation up)")

    assert result.valid
    assert result.healthy == 12
    assert result.dirty_nodes == ["node13", "node4", "node9"]

    # Second round after the infections left: all clean again.
    for device in topology.devices:
        for agent in device.malware_agents:
            if agent.resident:
                agent.erase()
    second = swarm.attest()
    sim.run(until=120.0)
    print(f"\nafter disinfection  : "
          f"{swarm.result_for(second).healthy}/{result.total} healthy")
    assert swarm.result_for(second).all_healthy


if __name__ == "__main__":
    main()
