#!/usr/bin/env python3
"""An unattended sensor: ERASMUS self-measurement + SeED push reports.

The on-demand model breaks down for devices a verifier visits rarely
(Section 3.3).  This script runs a sensor for ten simulated minutes
with a verifier that only collects every 100 seconds, while transient
malware sneaks in and out twice:

* a short residency that fits between two self-measurements -- missed
  (Figure 5's 'Infection 1');
* a longer residency spanning a measurement -- detected at the next
  collection, with the verifier localizing *when* the device was dirty.

The same device also runs SeED-style pushed attestation through its
secure timer, and a man-in-the-middle drops one pushed report to show
the verifier noticing the gap.

Run:  python examples/unattended_sensor.py
"""

from repro.malware import TransientMalware
from repro.ra import Verifier
from repro.ra.erasmus import CollectorVerifier, ErasmusService
from repro.ra.measurement import MeasurementConfig
from repro.ra.seed import SeedMonitor, SeedService
from repro.ra.report import Verdict
from repro.sim import Channel, Device, DropAdversary, Simulator


def main() -> None:
    t_m, t_c, horizon = 10.0, 100.0, 600.0

    sim = Simulator()
    device = Device(sim, name="river-gauge", block_count=32,
                    block_size=32)
    device.standard_layout()
    channel = Channel(sim, latency=0.01)

    # A communication adversary that eats exactly the pushed report in
    # flight around t=305 (see below).
    class OneShotDropper:
        def __init__(self):
            self.armed = True
            self.dropped_at = None

        def __call__(self, message):
            if (message.kind == "seed_report" and self.armed
                    and message.sent_at > 300.0):
                self.armed = False
                self.dropped_at = message.sent_at
                return None
            return 0.01

    dropper = OneShotDropper()
    channel.add_filter(dropper)
    device.attach_network(channel)

    verifier = Verifier(sim)
    verifier.enroll(device)

    # --- ERASMUS: measure every T_M, collect every T_C ------------------
    erasmus = ErasmusService(
        device, period=t_m,
        config=MeasurementConfig(atomic=True, priority=50,
                                 normalize_mutable=True),
        history_size=128,
    )
    erasmus.start()
    collector = CollectorVerifier(verifier, channel,
                                  endpoint_name="vrf-collect")
    collector.collect_every(device.name, period=t_c,
                            count=int(horizon / t_c))

    # --- SeED: secret-timer pushed reports -------------------------------
    shared_seed = b"installed-at-manufacture"
    seed_service = SeedService(
        device, shared_seed, verifier_name="vrf-push",
        min_gap=60.0, max_gap=90.0, trigger_count=7,
    )
    monitor = SeedMonitor(
        verifier, channel, device.name, shared_seed,
        min_gap=60.0, max_gap=90.0, trigger_count=7, grace=5.0,
        endpoint_name="vrf-push",
    )
    seed_service.start()

    # --- two infections ----------------------------------------------------
    TransientMalware(device, target_block=3, infect_at=123.0,
                     leave_at=127.0, name="quick-strike")  # fits in a gap
    TransientMalware(device, target_block=3, infect_at=345.0,
                     leave_at=372.0, name="long-dwell")    # spans 350, 360, 370

    sim.run(until=horizon)

    # --- report --------------------------------------------------------------
    print(f"unattended sensor, T_M={t_m:g}s, T_C={t_c:g}s, "
          f"{horizon:g}s horizon")
    print(f"self-measurements taken : {erasmus.measurements_done}")
    print(f"collections             : {len(collector.collections)}")

    dirty_windows = []
    for collection in collector.collections:
        dirty_windows.extend(collection.dirty_intervals)
    print(f"dirty measurement windows reported: "
          f"{[(round(a, 1), round(b, 1)) for a, b in dirty_windows]}")

    quick_caught = any(a <= 127.0 and 123.0 <= b for a, b in dirty_windows)
    long_caught = any(a <= 372.0 and 345.0 <= b for a, b in dirty_windows)
    print(f"quick-strike (4 s dwell)  detected: {quick_caught}")
    print(f"long-dwell  (27 s dwell)  detected: {long_caught}")

    print(f"\nSeED pushed reports: {len(seed_service.reports_sent)} sent, "
          f"{monitor.missing_count()} flagged missing "
          f"(adversary dropped one at t~{dropper.dropped_at:.0f}s)")
    print("SeED verdict series:", monitor.verdict_series())

    assert not quick_caught, "a 4s dwell cannot span a 10s grid"
    assert long_caught
    assert monitor.missing_count() == 1


if __name__ == "__main__":
    main()
